#!/usr/bin/env bash
# Regenerates every experiment table (console + CSV under target/experiments/).
# Set NP_QUICK=1 for a fast smoke pass.
# Set NP_SKIP_CI=1 to skip the pre-flight checks (ci.sh) and go straight to
# the experiment binaries.
set -euo pipefail
cd "$(dirname "$0")/.."
if [[ "${NP_SKIP_CI:-0}" != "1" ]]; then
    # Never publish tables from a tree that fails the workspace gate.
    scripts/ci.sh
fi
exps=(exp_fig1 exp_logtime exp_speedup_h exp_noise_sweep exp_bias_sweep
      exp_self_stab exp_lb_tightness exp_weak_opinion exp_boosting
      exp_reduction exp_baselines exp_conflict exp_push_pull
      exp_ablation_c1 exp_memory exp_sf_variant exp_trajectory exp_replacement
      exp_scale exp_topology)
for exp in "${exps[@]}"; do
    echo "### $exp"
    cargo run --release -q -p np-bench --bin "$exp"
    echo
done
