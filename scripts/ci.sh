#!/usr/bin/env bash
# The single CI entry point: formatting, clippy (warnings are errors), the
# workspace's own determinism/robustness lints, the full test suite, and a
# release-mode test pass with runtime invariant checks kept in
# (`--features strict-invariants`). Everything here runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "### cargo fmt --check"
cargo fmt --check

echo "### cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The determinism analyzer must come up clean against an empty baseline
# (i.e. zero findings), and its np-lint/v1 report must be byte-identical
# across two runs — the report is an interface CI diffs, so ordering
# instability is itself a bug.
echo "### cargo xtask lint (np-lint/v1, empty baseline, double-run diff)"
lint_dir="$(mktemp -d)"
: > "$lint_dir/empty-baseline.jsonl"
cargo xtask lint --format json --baseline "$lint_dir/empty-baseline.jsonl" \
  > "$lint_dir/lint1.jsonl"
cargo xtask lint --format json > "$lint_dir/lint2.jsonl"
diff "$lint_dir/lint1.jsonl" "$lint_dir/lint2.jsonl"
rm -rf "$lint_dir"

# Committed benchmark artifacts must parse against their np-* schemas:
# a malformed BENCH_*.json is a broken interface even when every test
# passes.
echo "### cargo xtask check-artifacts"
cargo xtask check-artifacts

echo "### cargo build --release (tier-1)"
cargo build --release

echo "### cargo build --examples"
cargo build --examples

# Tier-1 runs twice: single-threaded and at the ambient default. The
# engine's contract is that the thread count cannot change any outcome,
# so both passes must see identical results.
echo "### cargo test -q (tier-1, NOISY_PULL_THREADS=1)"
NOISY_PULL_THREADS=1 cargo test -q

echo "### cargo test -q (tier-1, default threads)"
cargo test -q

echo "### cargo test --workspace -q"
cargo test --workspace -q

echo "### cargo test -p np-engine --release --features strict-invariants -q"
cargo test -p np-engine --release --features strict-invariants -q

# The fault-injection integration suites re-run with runtime invariant
# checks kept in: mid-run corruption, noise ramps and sleep spans must
# not be able to smuggle an inconsistent state past the engine.
echo "### fault-injection tests under strict-invariants"
cargo test --release --features strict-invariants -q \
  --test self_stabilization --test observability

# Mean-field KS cross-validation gate: the counts backend must reproduce
# the per-agent convergence distributions (probe-round correct counts and
# settle rounds, two-sample KS p > 0.01 over 64 fixed seeds a side) for
# SF and SSF at n = 256 and n = 4096, and the exact-channel majority
# baseline. The n = 4096 suites are `#[ignore]`d in plain test runs
# (release-build scale); --include-ignored arms them here.
echo "### mean-field KS cross-validation (per-agent vs counts backend)"
cargo test --release -q -p noisy-pull --test mean_field_crossval -- --include-ignored
cargo test --release -q -p np-baselines --test mean_field_crossval

# Cross-thread-count digest check: the same fixed-seed run must print a
# byte-identical outcome digest at 1 and 4 worker threads.
echo "### thread-count digest diff (1 vs 4 threads)"
digest_run() {
  NOISY_PULL_THREADS="$1" cargo run -q --release -p np-cli -- \
    run sf --n 256 --seed 7 --digest | grep 'digest:'
}
d1="$(digest_run 1)"
d4="$(digest_run 4)"
if [ "$d1" != "$d4" ]; then
  echo "digest mismatch: 1 thread -> $d1, 4 threads -> $d4" >&2
  exit 1
fi
echo "digests agree: $d1"

# Same digest check on a graph-restricted world: the topology sampling
# path has its own per-neighborhood machinery (no shared round context),
# so it gets its own cross-thread-count gate.
echo "### ring-topology digest diff (1 vs 4 threads)"
ring_digest_run() {
  NOISY_PULL_THREADS="$1" cargo run -q --release -p np-cli -- \
    run sf --n 256 --seed 7 --topology ring:4 --digest | grep 'digest:'
}
r1="$(ring_digest_run 1)"
r4="$(ring_digest_run 4)"
if [ "$r1" != "$r4" ]; then
  echo "ring digest mismatch: 1 thread -> $r1, 4 threads -> $r4" >&2
  exit 1
fi
echo "ring digests agree: $r1"

# Cross-thread-count trace diff: the observability artifacts (per-round
# JSONL trace + end-of-run summary JSON) are pure trajectory data, so the
# same fixed-seed run must write byte-identical files at 1 and 4 worker
# threads. (Stage wall-clock timings go to stdout only, never into the
# files — that is what keeps this diff meaningful.)
echo "### thread-count trace diff (1 vs 4 threads)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
traced_run() {
  cargo run -q --release -p np-cli -- \
    run sf --n 256 --seed 7 --threads "$1" \
    --trace "$trace_dir/t$1.jsonl" --metrics-out "$trace_dir/s$1.json" \
    > /dev/null
}
traced_run 1
traced_run 4
diff "$trace_dir/t1.jsonl" "$trace_dir/t4.jsonl"
diff "$trace_dir/s1.json" "$trace_dir/s4.json"
echo "traces agree: $(wc -l < "$trace_dir/t1.jsonl") rounds"

# Same diff under a nontrivial fault plan: fault randomness is drawn from
# the per-agent streams, so mid-run corruption, a noise ramp and sleep
# spans must not break the byte-identity of the artifacts either.
echo "### thread-count faulted-trace diff (1 vs 4 threads)"
faulted_run() {
  cargo run -q --release -p np-cli -- \
    run ssf --n 128 --delta 0.1 --c1 8 --seed 7 --threads "$1" \
    --budget-intervals 20 \
    --fault 20:all-wrong:0.5 --fault 30:ramp:0.15:8 --fault 30:sleep:0.25:3 \
    --trace "$trace_dir/ft$1.jsonl" --metrics-out "$trace_dir/fs$1.json" \
    > /dev/null
}
faulted_run 1
faulted_run 4
diff "$trace_dir/ft1.jsonl" "$trace_dir/ft4.jsonl"
diff "$trace_dir/fs1.json" "$trace_dir/fs4.json"
grep -q '"faults"' "$trace_dir/fs1.json" \
  || { echo "faulted summary carries no recovery records" >&2; exit 1; }
echo "faulted traces agree: $(wc -l < "$trace_dir/ft1.jsonl") rounds"

# Snapshot continuation diff: a run checkpointed mid-flight and restored
# in a fresh process (at a different thread count) must write the same
# per-round trace as the uninterrupted run.
echo "### snapshot restore diff (straight @1 thread vs restored @4 threads)"
cargo run -q --release -p np-cli -- \
  run sf --n 256 --seed 7 --threads 1 \
  --trace "$trace_dir/straight.jsonl" \
  --checkpoint "$trace_dir/ckpt.snap" --checkpoint-every 8 > /dev/null
cargo run -q --release -p np-cli -- \
  run sf --n 256 --seed 7 --threads 4 \
  --restore "$trace_dir/ckpt.snap" \
  --trace "$trace_dir/restored.jsonl" > /dev/null
diff "$trace_dir/straight.jsonl" "$trace_dir/restored.jsonl"
echo "restored trace agrees: $(wc -l < "$trace_dir/straight.jsonl") rounds"

# Sweep interrupt/resume gate: a 3-job sweep killed after its first
# checkpoint write (--stop-after 1) and resumed must aggregate a report
# byte-identical to the uninterrupted sweep, across thread counts.
echo "### sweep resume diff (uninterrupted @1 thread vs killed+resumed @4 threads)"
sweep_dir="$trace_dir/sweep"
mkdir -p "$sweep_dir"
cat > "$sweep_dir/spec.txt" <<'SPEC'
protocol = sf
n = 64
delta = 0.1
runs = 3
seed = 11
SPEC
cargo run -q --release -p np-cli -- \
  sweep run "$sweep_dir/spec.txt" --out "$sweep_dir/straight" \
  --checkpoint-every 4 --threads 1 > /dev/null
cargo run -q --release -p np-cli -- \
  sweep run "$sweep_dir/spec.txt" --out "$sweep_dir/resumed" \
  --checkpoint-every 4 --threads 4 --stop-after 1 > /dev/null
cargo run -q --release -p np-cli -- \
  sweep run "$sweep_dir/spec.txt" --out "$sweep_dir/resumed" \
  --checkpoint-every 4 --threads 4 --resume > /dev/null
diff "$sweep_dir/straight/report.json" "$sweep_dir/resumed/report.json"
echo "sweep reports agree"

# Packed-vs-scalar artifact diff: the packed bit-plane kernels and the
# scalar per-agent path must write byte-identical trace/summary artifacts
# for the same seed, under both the aggregated (popcount) and exact
# (unpack-seam) channels. The example regenerates the scalar reference on
# every run and exits nonzero on any mismatch; the explicit diffs below
# make the failure readable in CI logs.
echo "### packed-vs-scalar artifact diff"
pvs_dir="$trace_dir/packed_vs_scalar"
cargo run -q --release --example packed_vs_scalar "$pvs_dir"
for tag in agg exact; do
  diff "$pvs_dir/scalar_${tag}_trace.jsonl" "$pvs_dir/packed_${tag}_trace.jsonl"
  diff "$pvs_dir/scalar_${tag}_summary.json" "$pvs_dir/packed_${tag}_summary.json"
done
echo "packed and scalar artifacts agree"

# Thread-scaling smoke gate: the packed hot path must keep threads=4 at
# least 2.0x faster than threads=1 at n=4096. Wall-clock scaling needs
# real cores, so the gate only arms on machines with >= 4; elsewhere the
# bench still runs (catching crashes) but the ratio is informational.
# BENCH_throughput.json is a committed artifact — the bench rewrites it,
# so stash and restore the committed bytes around the measurement.
echo "### thread-scaling smoke gate (threads 1 vs 4)"
cores="$(nproc 2>/dev/null || echo 1)"
cp BENCH_throughput.json "$trace_dir/BENCH_throughput.committed.json"
cargo run -q --release -p np-cli -- sweep throughput --rounds 100 --seeds 5 \
  | tee "$trace_dir/throughput.out"
mv "$trace_dir/BENCH_throughput.committed.json" BENCH_throughput.json
t1_ms="$(grep 'threads=1' "$trace_dir/throughput.out" | sed -n 's/.*mean \([0-9.]*\) ms.*/\1/p')"
t4_ms="$(grep 'threads=4' "$trace_dir/throughput.out" | sed -n 's/.*mean \([0-9.]*\) ms.*/\1/p')"
ratio="$(awk -v a="$t1_ms" -v b="$t4_ms" 'BEGIN { printf "%.2f", a / b }')"
if [ "$cores" -ge 4 ]; then
  awk -v r="$ratio" 'BEGIN { exit !(r >= 2.0) }' || {
    echo "thread-scaling regression: threads=4 is only ${ratio}x threads=1 (< 2.0x)" >&2
    exit 1
  }
  echo "thread scaling ok: threads=4 is ${ratio}x threads=1 (${cores} cores)"
else
  echo "thread scaling informational: ${ratio}x on ${cores} core(s); gate needs >= 4"
fi

# Simulated-time cluster determinism gate: the np_net event scheduler's
# contract is that a run is a pure function of the seed — same flags,
# same seed, byte-identical stdout (including the cluster digest). Any
# iteration-order or float nondeterminism in the scheduler shows up here.
echo "### sim-cluster determinism diff (double run, same seed)"
cluster_run() {
  cargo run -q --release -p np-cli -- \
    cluster --n 64 --delta 0.05 --c1 1 --seed 7
}
cluster_run > "$trace_dir/cluster1.out"
cluster_run > "$trace_dir/cluster2.out"
diff "$trace_dir/cluster1.out" "$trace_dir/cluster2.out"
grep -q 'cluster digest:' "$trace_dir/cluster1.out" \
  || { echo "sim cluster printed no digest" >&2; exit 1; }
echo "sim cluster runs agree: $(grep 'cluster digest:' "$trace_dir/cluster1.out")"

# Partition/heal smoke: sever half the cluster mid-run, heal, and require
# SSF to re-converge (Theorem 5's self-stabilization, exercised at the
# transport layer rather than by state corruption).
echo "### sim-cluster partition/heal smoke (SSF re-convergence)"
cargo run -q --release -p np-cli -- \
  cluster --n 64 --delta 0.05 --c1 1 --seed 11 \
  --partition-at 3 --heal-at 6 --budget-intervals 40 \
  | tee "$trace_dir/cluster_heal.out"
grep -q 're-converged' "$trace_dir/cluster_heal.out" \
  || { echo "cluster did not re-converge after heal" >&2; exit 1; }

echo "### ci.sh: all checks passed"
