#!/usr/bin/env bash
# The single CI entry point: formatting, clippy (warnings are errors), the
# workspace's own determinism/robustness lints, the full test suite, and a
# release-mode test pass with runtime invariant checks kept in
# (`--features strict-invariants`). Everything here runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "### cargo fmt --check"
cargo fmt --check

echo "### cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "### cargo xtask check"
cargo xtask check

echo "### cargo build --release (tier-1)"
cargo build --release

echo "### cargo test -q (tier-1)"
cargo test -q

echo "### cargo test --workspace -q"
cargo test --workspace -q

echo "### cargo test -p np-engine --release --features strict-invariants -q"
cargo test -p np-engine --release --features strict-invariants -q

echo "### ci.sh: all checks passed"
