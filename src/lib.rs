//! `noisy-pull-repro` — umbrella crate for the reproduction of
//! *Fast and Robust Information Spreading in the Noisy PULL Model*
//! (D'Archivio, Korman, Natale, Vacus; PODC 2025 / arXiv:2411.02560).
//!
//! This facade re-exports the workspace crates under stable paths and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). Library users can depend on the
//! individual crates directly:
//!
//! * [`core`] (`noisy-pull`) — the paper's protocols: Source Filter (SF),
//!   Self-stabilizing Source Filter (SSF), the artificial-noise reduction,
//!   parameter derivation, and the closed-form theory bounds.
//! * [`engine`] (`np-engine`) — the noisy PULL(h) simulation engine.
//! * [`linalg`] (`np-linalg`) — matrices, inversion, and the
//!   noise-matrix toolkit of the paper's Section 4.
//! * [`stats`] (`np-stats`) — samplers, concentration bounds, estimators.
//! * [`baselines`] (`np-baselines`) — voter/majority/trusting-copy/mean
//!   estimator comparison protocols.
//!
//! # Quickstart
//!
//! ```
//! use noisy_pull_repro::prelude::*;
//!
//! let n = 256;
//! let config = PopulationConfig::new(n, 0, 1, n)?; // one source, h = n
//! let params = SfParams::derive(&config, 0.2, 1.0)?;
//! let noise = NoiseMatrix::uniform(2, 0.2)?;
//! let mut world = World::new(
//!     &SourceFilter::new(params),
//!     config,
//!     &noise,
//!     ChannelKind::Aggregated,
//!     1,
//! )?;
//! world.run(params.total_rounds());
//! assert!(world.is_consensus());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use noisy_pull as core;
pub use np_baselines as baselines;
pub use np_engine as engine;
pub use np_linalg as linalg;
pub use np_stats as stats;

/// One-stop imports for examples and downstream quickstarts.
pub mod prelude {
    pub use noisy_pull::adversary::SsfAdversary;
    pub use noisy_pull::columnar::sf::ColumnarSourceFilter;
    pub use noisy_pull::columnar::sf_alt::ColumnarAltSf;
    pub use noisy_pull::columnar::ssf::ColumnarSsf;
    pub use noisy_pull::params::{SfParams, SsfParams};
    pub use noisy_pull::reduction::WithArtificialNoise;
    pub use noisy_pull::sf::SourceFilter;
    pub use noisy_pull::sf_alternating::AlternatingSourceFilter;
    pub use noisy_pull::ssf::SelfStabilizingSourceFilter;
    pub use noisy_pull::theory;
    pub use np_engine::channel::{Channel, ChannelKind, SamplingMode};
    pub use np_engine::faults::{recovery_times, FaultEvent, FaultPlan, FaultRecovery, StateFault};
    pub use np_engine::metrics::{
        RoundMetrics, RunObserver, RunOutcome, StageTimings, TraceRecorder,
    };
    pub use np_engine::opinion::Opinion;
    pub use np_engine::population::{PopulationConfig, Role};
    pub use np_engine::protocol::{
        AgentState, ColumnarProtocol, ColumnarState, Protocol, ScalarState,
    };
    pub use np_engine::streams::{RoundStreams, StreamStage};
    pub use np_engine::topology::{Topology, TopologySpec};
    pub use np_engine::world::World;
    pub use np_linalg::noise::NoiseMatrix;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_runs() {
        let config = PopulationConfig::new(64, 0, 1, 64).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            9,
        )
        .unwrap();
        world.run(params.total_rounds());
        assert!(world.is_consensus());
    }
}
