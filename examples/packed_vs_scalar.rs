//! Packed-vs-scalar artifact diff: the hand-written packed bit-plane
//! kernels (`ColumnarSourceFilter`) and the scalar per-agent path
//! (`SourceFilter`, through the `ScalarState` blanket adapter) must write
//! byte-identical trajectory artifacts for the same seed — per-round
//! JSONL trace and end-of-run summary, under both the aggregated
//! (popcount-histogram) and exact (unpack-seam) channels.
//!
//! The scalar run is the reference: it re-derives the "golden" bytes on
//! every invocation, so the diff can never go stale against trajectory
//! changes that move both paths together, while still failing the moment
//! the packed kernels drift from the scalar semantics.
//!
//! ```text
//! cargo run --release --example packed_vs_scalar [OUT_DIR]
//! ```
//!
//! Writes `{scalar,packed}_{agg,exact}_trace.jsonl` and the matching
//! `*_summary.json` files into `OUT_DIR` (default
//! `target/experiments/packed_vs_scalar`), then exits nonzero if any
//! scalar/packed pair differs.

use std::path::{Path, PathBuf};

use noisy_pull_repro::prelude::*;
use np_bench::report::{trace_jsonl, RunSummary};
use np_engine::protocol::ColumnarProtocol;

const N: usize = 256;
const SEED: u64 = 7;
const DELTA: f64 = 0.2;

/// Runs one protocol to its schedule budget and returns the rendered
/// `(trace_jsonl, summary_json)` pair.
fn run<P: ColumnarProtocol>(
    protocol: &P,
    kind: ChannelKind,
) -> Result<(String, String), Box<dyn std::error::Error>> {
    let config = PopulationConfig::new(N, 0, 1, N)?;
    let params = SfParams::derive(&config, DELTA, 1.0)?;
    let noise = NoiseMatrix::uniform(2, DELTA)?;
    let mut world = World::new(protocol, config, &noise, kind, SEED)?;
    world.record_trace();
    world.run(params.total_rounds());
    let trace = world.take_trace().expect("record_trace preceded the run");
    let last = trace.last().ok_or("schedule budget was zero rounds")?;
    let summary = RunSummary::from_final_metrics("sf", world.config(), world.seed(), last);
    Ok((trace_jsonl(trace.rounds()), summary.to_json()))
}

fn write(dir: &Path, name: &str, text: &str) -> std::io::Result<PathBuf> {
    let path = dir.join(name);
    std::fs::write(&path, text)?;
    Ok(path)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args().nth(1).map_or_else(
        || Path::new("target/experiments").join("packed_vs_scalar"),
        PathBuf::from,
    );
    std::fs::create_dir_all(&out)?;
    println!("packed-vs-scalar artifact diff: n={N} seed={SEED} δ={DELTA}");

    let mut mismatches = 0usize;
    for (kind, tag) in [
        (ChannelKind::Aggregated, "agg"),
        (ChannelKind::Exact, "exact"),
    ] {
        let config = PopulationConfig::new(N, 0, 1, N)?;
        let params = SfParams::derive(&config, DELTA, 1.0)?;
        let (scalar_trace, scalar_summary) = run(&SourceFilter::new(params), kind)?;
        let (packed_trace, packed_summary) = run(&ColumnarSourceFilter::new(params), kind)?;
        write(&out, &format!("scalar_{tag}_trace.jsonl"), &scalar_trace)?;
        write(&out, &format!("packed_{tag}_trace.jsonl"), &packed_trace)?;
        write(&out, &format!("scalar_{tag}_summary.json"), &scalar_summary)?;
        write(&out, &format!("packed_{tag}_summary.json"), &packed_summary)?;
        let trace_ok = scalar_trace == packed_trace;
        let summary_ok = scalar_summary == packed_summary;
        println!(
            "  {tag}: trace {} ({} rounds), summary {}",
            if trace_ok { "identical" } else { "DIFFERS" },
            scalar_trace.lines().count(),
            if summary_ok { "identical" } else { "DIFFERS" },
        );
        mismatches += usize::from(!trace_ok) + usize::from(!summary_ok);
    }
    println!("artifacts: {}", out.display());
    if mismatches > 0 {
        return Err(format!("{mismatches} artifact pair(s) differ").into());
    }
    Ok(())
}
