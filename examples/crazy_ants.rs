//! Cooperative transport by "crazy ants" (Paratrechina longicornis) —
//! the paper's motivating scenario (§1.1, §3).
//!
//! A group of ants carries a food item. Each carrier senses, through the
//! load itself, the *cumulative* force of all carriers — a noisy
//! observation of the whole group's directional tendency, i.e. the noisy
//! PULL(h) model with `h = n`. Occasionally one freshly arrived ant knows
//! the way to the nest: a single source. Gelblum et al. (2015) showed the
//! informed ant's direction *eventually* wins; the paper shows it can win
//! *fast* (logarithmic time) because the sample size is large.
//!
//! This example runs that story: one informed ant among `n` carriers at
//! three sample sizes — full load sensing (`h = n`), partial sensing
//! (`h = √n`), and pairwise antennation (`h = 1`) — and reports how long
//! the informed direction takes to dominate. The `h = 1` run is the
//! regime where Boczkowski et al.'s Ω(n) bound bites.
//!
//! ```text
//! cargo run --release --example crazy_ants
//! ```

use noisy_pull_repro::prelude::*;

fn run_with_sample_size(n: usize, h: usize, delta: f64, seed: u64) -> (u64, u64, bool) {
    let config = PopulationConfig::new(n, 0, 1, h).expect("valid scenario");
    let params = SfParams::derive(&config, delta, 1.0).expect("valid scenario");
    let noise = NoiseMatrix::uniform(2, delta).expect("valid scenario");
    let mut world = World::new(
        &SourceFilter::new(params),
        config,
        &noise,
        if h <= 8 {
            ChannelKind::Exact
        } else {
            ChannelKind::Aggregated
        },
        seed,
    )
    .expect("alphabets match");
    // Find the settle round: run the full schedule tracking the last
    // non-consensus round.
    let mut last_bad = 0;
    for r in 1..=params.total_rounds() {
        world.step();
        if !world.is_consensus() {
            last_bad = r;
        }
    }
    let converged = world.is_consensus();
    (last_bad + 1, params.total_rounds(), converged)
}

fn main() {
    let n = 512; // carrying ants
    let delta = 0.2; // mechanical noise in force sensing

    println!("cooperative transport: {n} carrier ants, 1 informed ant, δ = {delta}\n");
    println!("   sensing mode          h    settled at  schedule  converged");
    println!("   ------------------------------------------------------------");
    let sqrt_n = (n as f64).sqrt() as usize;
    for (label, h) in [
        ("load sensing (h = n)   ", n),
        ("partial load (h = √n)  ", sqrt_n),
        ("antennation  (h = 1)   ", 1),
    ] {
        let (settle, schedule, ok) = run_with_sample_size(n, h, delta, 7);
        println!("   {label} {h:>5} {settle:>11} {schedule:>9}  {ok}");
    }

    println!(
        "\nreading: with full load sensing the informed direction takes over in\n\
         O(log n) rounds; with pairwise antennation the schedule balloons to\n\
         Θ(n log n) — the exponential separation the paper proves. Sensing the\n\
         average tendency of the group is what makes a single informed ant\n\
         effective *quickly*."
    );
}
