//! Self-stabilization: SSF recovers from adversarially corrupted initial
//! states (Theorem 5, Definition 2).
//!
//! An adversary poisons every agent's memory with fake "source says 0"
//! messages and sets all opinions to 0; the single genuine source knows
//! the truth is 1. SSF must flush the poison within two update cycles and
//! converge — then *stay* converged.
//!
//! ```text
//! cargo run --release --example self_stabilizing
//! ```

use noisy_pull_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024;
    let delta = 0.1;
    let config = PopulationConfig::new(n, 0, 1, n)?;
    let params = SsfParams::derive(&config, delta, 16.0)?;
    let noise = NoiseMatrix::uniform(4, delta)?;

    println!(
        "{n} agents, 1 source, δ = {delta}, memory capacity m = {}",
        params.m()
    );
    println!(
        "update interval: every {} rounds\n",
        params.update_interval()
    );

    for adversary in SsfAdversary::ALL {
        let mut world = World::new(
            &SelfStabilizingSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            17,
        )?;
        let correct = config.correct_opinion();
        let m = params.m();
        world.corrupt_agents(|id, agent, rng| adversary.corrupt(agent, correct, m, id, rng));

        let before = world.correct_count();
        // Run until consensus has held for a full update interval.
        let budget = 10 * params.update_interval();
        let outcome = world.run_until_stable_consensus(budget, params.update_interval());
        match outcome {
            RunOutcome::Converged { rounds } => println!(
                "{adversary:>16}: start {before:>4}/{n} correct → stable consensus from round {rounds}"
            ),
            RunOutcome::TimedOut { correct_at_end, .. } => println!(
                "{adversary:>16}: start {before:>4}/{n} correct → FAILED ({correct_at_end}/{n} at budget)"
            ),
        }
        assert!(
            outcome.converged(),
            "SSF must self-stabilize under {adversary}"
        );

        // Persistence: spot-check another three update cycles.
        for _ in 0..3 * params.update_interval() {
            world.step();
            assert!(world.is_consensus(), "consensus lost under {adversary}");
        }
    }

    println!(
        "\nevery corruption strategy — poisoned memories, fake consensus,\n\
         desynchronized clocks, split-brain — is flushed within a few update\n\
         cycles, and the consensus then persists (Definition 2)."
    );
    Ok(())
}
