//! Zealot consensus with conflicting sources: the plurality wins, even at
//! bias 1 (paper §1.3, claim C3).
//!
//! Seventeen agents claim to know the truth — nine say "1", eight say
//! "0". The protocols must drive the *whole* population, including the
//! eight outvoted sources, to opinion 1. Note the contrast with the
//! population-protocols literature, where majority dynamics typically
//! need an Ω(√(n log n)) bias; here the bias is exactly 1.
//!
//! ```text
//! cargo run --release --example conflicting_sources
//! ```

use noisy_pull_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024;
    let (s0, s1) = (8, 9); // conflicting sources, bias s = 1
    let delta = 0.15;

    let config = PopulationConfig::new(n, s0, s1, n)?;
    println!(
        "{n} agents; {s1} sources prefer 1, {s0} prefer 0 (bias {}), δ = {delta}",
        config.bias()
    );
    println!(
        "correct opinion (plurality): {}\n",
        config.correct_opinion()
    );

    // --- SF ---
    let params = SfParams::derive(&config, delta, 1.0)?;
    let mut world = World::new(
        &SourceFilter::new(params),
        config,
        &noise(delta, 2)?,
        ChannelKind::Aggregated,
        11,
    )?;
    world.run(params.total_rounds());
    let minority_sources_converted = world
        .iter_agents()
        .take(s1 + s0)
        .skip(s1)
        .filter(|a| a.opinion() == Opinion::One)
        .count();
    println!(
        "SF : consensus = {} after {} rounds; {}/{} outvoted sources converted",
        world.is_consensus(),
        world.round(),
        minority_sources_converted,
        s0
    );
    assert!(world.is_consensus());

    // --- SSF (no synchronization needed) ---
    let ssf_params = SsfParams::derive(&config, 0.1, 8.0)?;
    let mut world = World::new(
        &SelfStabilizingSourceFilter::new(ssf_params),
        config,
        &noise(0.1, 4)?,
        ChannelKind::Aggregated,
        13,
    )?;
    world.run(ssf_params.expected_convergence_rounds() + 2);
    println!(
        "SSF: consensus = {} after {} rounds (δ = 0.1, 2-bit messages)",
        world.is_consensus(),
        world.round()
    );
    assert!(world.is_consensus());

    println!(
        "\nboth protocols converge on the plurality opinion with the minimal\n\
         possible bias — the eight dissenting sources end up adopting the\n\
         majority view themselves."
    );
    Ok(())
}

fn noise(delta: f64, d: usize) -> Result<NoiseMatrix, Box<dyn std::error::Error>> {
    Ok(NoiseMatrix::uniform(d, delta)?)
}
