//! Quickstart: spread one bit from a single source to the whole
//! population under heavy observation noise, in logarithmic time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noisy_pull_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024; // population size
    let delta = 0.2; // every observation is wrong with probability 20%
    let seed = 42;

    // One source knows the correct bit (1); everyone samples the whole
    // population each round (h = n) — the "sense the average tendency"
    // regime of the paper.
    let config = PopulationConfig::new(n, 0, 1, n)?;
    let params = SfParams::derive(&config, delta, 1.0)?;
    let noise = NoiseMatrix::uniform(2, delta)?;

    println!("population           : {n} agents, 1 source, h = n");
    println!("noise                : δ = {delta} (uniform binary)");
    println!("message budget m     : {}", params.m());
    println!(
        "schedule             : {} rounds total",
        params.total_rounds()
    );
    println!(
        "  = 2 listening phases of {} + {} boosting sub-phases of {} + final {}",
        params.phase_len(),
        params.num_short_subphases(),
        params.subphase_len(),
        params.final_subphase_len()
    );

    let mut world = World::new(
        &SourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        seed,
    )?;
    world.record_series();

    // Run phase by phase, narrating progress.
    world.run(2 * params.phase_len());
    let weak_correct = world
        .iter_agents()
        .filter(|a| a.weak_opinion() == Some(Opinion::One))
        .count();
    println!(
        "\nafter listening      : {weak_correct}/{n} weak opinions correct \
         ({:.1}% — a slim but real edge)",
        100.0 * weak_correct as f64 / n as f64
    );

    let remaining = params.total_rounds() - world.round();
    world.run(remaining);
    println!(
        "after boosting       : {}/{n} opinions correct",
        world.correct_count()
    );

    assert!(world.is_consensus(), "SF should reach consensus");
    println!(
        "\nconsensus in {} rounds — versus the Ω(n) = Ω({n}) bound for h = O(1); \
         ln n = {:.1}",
        world.round(),
        (n as f64).ln()
    );
    Ok(())
}
