//! Running the protocols under an arbitrary (non-uniform) noise matrix via
//! the Theorem 8 reduction.
//!
//! The analysis assumes δ-*uniform* noise, but real channels are lopsided.
//! Theorem 8 fixes this constructively: invert the channel, derive the
//! artificial noise `P = N⁻¹·T`, and have every agent re-randomize its
//! received messages through `P` — the end-to-end channel becomes exactly
//! `f(δ)`-uniform. This example walks through the derivation and then
//! runs SF under a skewed channel.
//!
//! ```text
//! cargo run --release --example custom_noise
//! ```

use noisy_pull_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A lopsided binary channel: displayed 0 flips with 5%, displayed 1
    // flips with 18%.
    let real = NoiseMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.18, 0.82]])?;
    let delta = real.upper_bound_level().expect("within class");
    println!("real channel N (δ-upper bounded with δ = {delta}):");
    println!("{:?}", real.as_matrix());

    let reduction = real.artificial_noise()?;
    println!(
        "\nartificial noise P = N⁻¹·T  (target uniform level δ' = f(δ) = {:.4}):",
        reduction.uniform_level()
    );
    println!("{:?}", reduction.artificial().as_matrix());

    let composed = real.compose(reduction.artificial())?;
    println!("\ncomposed channel N·P (should be exactly δ'-uniform):");
    println!("{:?}", composed.as_matrix());
    assert!(composed.is_uniform_with_level(reduction.uniform_level(), 1e-9));

    // Run SF through the wrapper: parameters must target δ', the level the
    // protocol actually experiences.
    let n = 1024;
    let config = PopulationConfig::new(n, 0, 1, n)?;
    let params = SfParams::derive(&config, reduction.uniform_level(), 1.0)?;
    let protocol =
        WithArtificialNoise::new(SourceFilter::new(params), reduction.artificial().clone())?;
    let mut world = World::new(&protocol, config, &real, ChannelKind::Aggregated, 23)?;
    world.run(params.total_rounds());
    println!(
        "\nSF under the skewed channel: consensus = {} after {} rounds",
        world.is_consensus(),
        world.round()
    );
    assert!(world.is_consensus());

    println!(
        "\nthe protocol never saw the asymmetry: adding the right noise\n\
         (never removing it — f(δ) ≥ δ) buys back the symmetry the\n\
         analysis needs."
    );
    Ok(())
}
