//! PUSH vs PULL under noise: why the paper's model is the hard one (§1.5).
//!
//! Same task — one source, pairwise communication (`h = 1`), 10% noise —
//! in the two models. In PUSH, reception is a reliable event ("someone
//! meant to talk to me") even though content is noisy; in PULL there is
//! no such signal, and Boczkowski et al. proved an Ω(n) lower bound. This
//! example measures both dissemination times side by side.
//!
//! ```text
//! cargo run --release --example push_vs_pull
//! ```

use noisy_pull_repro::baselines::push_spreading::{PushSpreading, PushSpreadingParams};
use noisy_pull_repro::engine::push::PushWorld;
use noisy_pull_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let delta = 0.1;
    println!("single source, h = 1, δ = {delta}: dissemination cost by model\n");
    println!("      n   PULL listening   PUSH spreading   ratio");
    println!("   ------------------------------------------------");
    for exp in [7usize, 8, 9, 10] {
        let n = 1 << exp;

        // PULL: SF's listening phases are the dissemination part.
        let config = PopulationConfig::new(n, 0, 1, 1)?;
        let sf_params = SfParams::derive(&config, delta, 1.0)?;
        let pull_dissem = 2 * sf_params.phase_len();

        // PUSH: the spreading stage.
        let push_params = PushSpreadingParams::derive(n, 1, delta);
        let push_dissem = push_params.spreading_rounds();

        println!(
            "   {n:>4}   {pull_dissem:>14}   {push_dissem:>14}   {:>5.1}",
            pull_dissem as f64 / push_dissem as f64
        );
    }

    // Run the PUSH protocol once end-to-end to show it actually works.
    let n = 512;
    let params = PushSpreadingParams::derive(n, 1, delta);
    let config = PopulationConfig::new(n, 0, 1, 1)?;
    let noise = NoiseMatrix::uniform(2, delta)?;
    let mut world = PushWorld::new(&PushSpreading::new(params), config, &noise, 3)?;
    world.run(params.spreading_rounds());
    let informed = world.iter_agents().filter(|a| a.is_informed()).count();
    println!(
        "\nPUSH at n = {n}: {informed}/{n} agents informed after the \
         {}-round spreading stage",
        params.spreading_rounds()
    );
    world.run(params.total_rounds() - params.spreading_rounds());
    println!(
        "after correction: consensus = {} ({} rounds total)",
        world.is_consensus(),
        params.total_rounds()
    );
    assert!(world.is_consensus());

    println!(
        "\nreading: PULL's listening cost grows linearly in n (the Ω(n)\n\
         bound), PUSH's spreading stage stays logarithmic. One reliable\n\
         bit — 'this message was intended' — changes the complexity class.\n\
         The paper's result: in PULL, a large sample size h buys back what\n\
         that missing bit costs."
    );
    Ok(())
}
