//! Integration: the event-driven node runtime (`np_net`) against the
//! round engine (`World`).
//!
//! The two executions are *not* byte-comparable — the runtime has no
//! global barrier, nodes skip rounds, and replies race simulated
//! latency — so the gate is distributional: over a fixed seed panel,
//! the fraction of runs that converge within the same round budget must
//! agree between the round engine and the simulated-time cluster, per
//! population size. A second gate exercises Theorem 5 at the transport
//! layer: a mid-run partition, once healed, must cost SSF at most a few
//! update intervals to re-converge.

use noisy_pull::params::SsfParams;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_engine::channel::ChannelKind;
use np_engine::population::PopulationConfig;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;
use np_net::cluster::ClusterConfig;
use np_net::faults::{NetFault, NetFaultPlan};
use np_net::sim::SimCluster;

const DELTA: f64 = 0.05;
const C1: f64 = 1.0;
const BUDGET_INTERVALS: u64 = 30;
const SEEDS: [u64; 8] = [3, 7, 11, 19, 42, 101, 257, 9001];
/// Convergence-rate tolerance between the two executions: with 8 seeds
/// a side, allow the rates to differ by at most two runs' worth.
const TOLERANCE: f64 = 0.25;

fn h_of(n: usize) -> usize {
    (n as f64).ln().ceil() as usize
}

/// One round-engine SSF run; `true` if it converges within the budget.
fn world_converges(n: usize, seed: u64) -> bool {
    let config = PopulationConfig::new(n, 0, 1, h_of(n)).unwrap();
    let params = SsfParams::derive(&config, DELTA, C1).unwrap();
    let noise = NoiseMatrix::uniform(4, DELTA).unwrap();
    let mut world = World::new(
        &SelfStabilizingSourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Exact,
        seed,
    )
    .unwrap();
    let budget = BUDGET_INTERVALS * params.update_interval();
    world
        .run_until_stable_consensus(budget, params.update_interval())
        .converged()
}

/// One simulated-time cluster run on the same population; `true` if
/// every node holds the planted opinion within the same round budget.
fn cluster_converges(n: usize, seed: u64) -> bool {
    let cfg = ClusterConfig::new(n, 0, 1, h_of(n), DELTA, seed);
    let params = SsfParams::derive(&cfg.population().unwrap(), DELTA, C1).unwrap();
    let protocol = SelfStabilizingSourceFilter::new(params);
    let budget = BUDGET_INTERVALS * params.update_interval();
    let mut cluster = SimCluster::new(&cfg, &protocol, &NetFaultPlan::new()).unwrap();
    cluster.run_until_correct(budget).unwrap().is_some()
}

fn rates_agree(n: usize) {
    let world_rate =
        SEEDS.iter().filter(|&&s| world_converges(n, s)).count() as f64 / SEEDS.len() as f64;
    let cluster_rate =
        SEEDS.iter().filter(|&&s| cluster_converges(n, s)).count() as f64 / SEEDS.len() as f64;
    assert!(
        (world_rate - cluster_rate).abs() <= TOLERANCE,
        "n={n}: round-engine rate {world_rate} vs sim-cluster rate {cluster_rate} \
         differ by more than {TOLERANCE}"
    );
    // Below the δ < 1/4 threshold with this budget both executions are
    // expected to succeed outright, not merely to agree on failing.
    assert!(
        world_rate >= 0.75 && cluster_rate >= 0.75,
        "n={n}: rates {world_rate}/{cluster_rate} are too low for δ = {DELTA}"
    );
}

#[test]
fn convergence_rates_agree_at_n_64() {
    rates_agree(64);
}

#[test]
fn convergence_rates_agree_at_n_256() {
    rates_agree(256);
}

#[test]
fn ssf_reconverges_within_four_intervals_of_heal() {
    for seed in [11u64, 42, 257] {
        let n = 64;
        let cfg = ClusterConfig::new(n, 0, 1, h_of(n), DELTA, seed);
        let params = SsfParams::derive(&cfg.population().unwrap(), DELTA, C1).unwrap();
        let protocol = SelfStabilizingSourceFilter::new(params);
        let interval = params.update_interval();
        // Let the cluster converge first (the slowest of these seeds
        // settles fault-free at round 85 ≈ 5 intervals), then sever it
        // across an update boundary: the sourceless half runs one memory
        // update on noise-only samples, so its weak opinions degrade and
        // healing has real damage to repair — mirroring the
        // BENCH_fault_recovery setup, where recovery is measured against
        // a converged population, not a cold start.
        let partition_round = 6 * interval;
        let heal_round = partition_round + interval + 3;
        let plan = NetFaultPlan::new()
            .at_ns(
                partition_round * cfg.tick_ns,
                NetFault::Partition {
                    split: (n / 2) as u64,
                },
            )
            .at_ns(heal_round * cfg.tick_ns, NetFault::Heal);
        let mut cluster = SimCluster::new(&cfg, &protocol, &plan).unwrap();
        // Drive past the heal point regardless of interim opinion state,
        // then measure re-convergence from there.
        cluster.run_until_round(heal_round).unwrap();
        let budget = heal_round + BUDGET_INTERVALS * interval;
        let at = cluster
            .run_until_correct(budget)
            .unwrap()
            .unwrap_or_else(|| panic!("seed {seed}: no re-convergence within {budget} rounds"));
        let cost = at.saturating_sub(heal_round);
        assert!(
            cost <= 4 * interval,
            "seed {seed}: re-convergence took {cost} rounds after heal \
             (> 4 intervals = {})",
            4 * interval
        );
    }
}
