//! Integration: Theorem 5's self-stabilization — every adversarial
//! corruption strategy is flushed, and the consensus persists.

use noisy_pull_repro::prelude::*;

fn corrupted_world(
    adversary: SsfAdversary,
    n: usize,
    seed: u64,
) -> (World<SelfStabilizingSourceFilter>, SsfParams) {
    let config = PopulationConfig::new(n, 0, 1, n).unwrap();
    let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
    let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
    let mut world = World::new(
        &SelfStabilizingSourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        seed,
    )
    .unwrap();
    let correct = config.correct_opinion();
    let m = params.m();
    world.corrupt_agents(|id, agent, rng| adversary.corrupt(agent, correct, m, id, rng));
    (world, params)
}

#[test]
fn recovers_from_every_adversary() {
    for adversary in SsfAdversary::ALL {
        let (mut world, params) = corrupted_world(adversary, 256, 0xAD);
        let budget = 8 * params.update_interval();
        let outcome = world.run_until_stable_consensus(budget, params.update_interval());
        assert!(
            outcome.converged(),
            "{adversary}: {}/256 at budget",
            world.correct_count()
        );
    }
}

#[test]
fn poisoned_memory_is_flushed_within_two_updates() {
    // Lemma 36(i)'s mechanism: after the first honest update the fake
    // samples are gone; after the second, weak opinions rest entirely on
    // genuinely sampled messages.
    let (mut world, params) = corrupted_world(SsfAdversary::PoisonedMemory, 256, 0xAE);
    // Immediately after corruption, memories are full of tagged-wrong
    // messages.
    let all_poisoned = world
        .iter_agents()
        .all(|a| a.memory()[noisy_pull::ssf::encode(true, Opinion::Zero)] == params.m());
    assert!(all_poisoned);
    world.run(2 * params.update_interval() + 1);
    // Weak opinions must have recovered a correct majority.
    let weak_correct = world
        .iter_agents()
        .filter(|a| a.weak_opinion() == Opinion::One)
        .count();
    assert!(
        weak_correct > 128,
        "weak majority not recovered: {weak_correct}/256"
    );
}

#[test]
fn consensus_persists_for_many_update_cycles() {
    let (mut world, params) = corrupted_world(SsfAdversary::AllWrong, 256, 0xAF);
    world.run(params.expected_convergence_rounds() + 2);
    assert!(world.is_consensus());
    // Definition 2 requires persistence for poly(n) rounds; we spot-check
    // 10 full update cycles (every opinion is re-derived from scratch ~10
    // times).
    for _ in 0..10 * params.update_interval() {
        world.step();
        assert!(
            world.is_consensus(),
            "lost consensus at round {}",
            world.round()
        );
    }
}

#[test]
fn desynchronized_updates_still_converge() {
    // RandomDesync staggers every agent's update round; convergence must
    // not depend on synchronized update cycles (the whole point of SSF).
    let (mut world, params) = corrupted_world(SsfAdversary::RandomDesync, 256, 0xB0);
    // Verify the desync actually happened: memory sizes differ.
    let sizes: std::collections::HashSet<u64> =
        world.iter_agents().map(|a| a.memory_size()).collect();
    assert!(sizes.len() > 10, "adversary failed to desynchronize");
    let budget = 8 * params.update_interval();
    let outcome = world.run_until_stable_consensus(budget, params.update_interval());
    assert!(outcome.converged());
}

/// Builds a mid-run corruption event that re-applies `adversary` to every
/// agent (frac = 1) from the per-agent fault streams.
fn mid_run_corruption(
    adversary: SsfAdversary,
    correct: Opinion,
    m: u64,
) -> FaultEvent<ScalarState<noisy_pull::ssf::SsfAgent>> {
    use np_engine::streams::StreamRng;
    use std::sync::Arc;
    FaultEvent::Corrupt {
        frac: 1.0,
        label: adversary.name().to_string(),
        fault: Arc::new(
            move |state: &mut ScalarState<noisy_pull::ssf::SsfAgent>,
                  id: usize,
                  rng: &mut StreamRng| {
                adversary.corrupt(&mut state.agents_mut()[id], correct, m, id, rng);
            },
        ),
    }
}

#[test]
fn recovers_from_every_adversary_injected_mid_run() {
    // Theorem 5 again, but with the corruption striking a *settled*
    // system instead of the initial configuration: every strategy must
    // re-converge within a few update intervals of the injection.
    for adversary in SsfAdversary::ALL {
        let (mut world, params) = corrupted_world(SsfAdversary::None, 256, 0xB2);
        let interval = params.update_interval();
        let inject = 4 * interval;
        let correct = world.correct_opinion();
        world
            .set_fault_plan(
                FaultPlan::new().at(inject, mid_run_corruption(adversary, correct, params.m())),
            )
            .unwrap();
        world.record_trace();
        // A fixed budget (not an early-exit runner): the run must pass
        // through the injection round for the fault to fire at all.
        world.run(12 * interval);
        assert!(
            world.is_consensus(),
            "{adversary}: {}/256 at budget",
            world.correct_count()
        );
        let trace = world.take_trace().unwrap();
        let recoveries = recovery_times(trace.rounds());
        assert_eq!(recoveries.len(), 1, "{adversary}: one event, one window");
        assert_eq!(recoveries[0].round, inject);
        let recovery = recoveries[0]
            .recovery_rounds()
            .unwrap_or_else(|| panic!("{adversary}: no recovery in trace window"));
        assert!(
            recovery <= 4 * interval,
            "{adversary}: recovery took {recovery} rounds (> 4 intervals of {interval})"
        );
    }
}

#[test]
fn trend_change_flips_the_target_and_ssf_follows() {
    // The "trend change" scenario: mid-run, the environment inverts every
    // source's preference. SSF must abandon the old consensus and settle
    // on the new trend — self-stabilization against a moving target.
    let (mut world, params) = corrupted_world(SsfAdversary::None, 256, 0xB3);
    let interval = params.update_interval();
    assert!(world
        .run_until_stable_consensus(8 * interval, interval)
        .converged());
    assert_eq!(world.correct_opinion(), Opinion::One);
    let flip_round = world.round() + 1;
    world
        .set_fault_plan(FaultPlan::new().at(flip_round, FaultEvent::FlipSources))
        .unwrap();
    // One explicit step: the stable-consensus runner would otherwise
    // return before executing the flip round (it checks consensus first).
    world.step();
    assert_eq!(world.correct_opinion(), Opinion::Zero, "trend flipped");
    let outcome = world.run_until_stable_consensus(12 * interval, interval);
    assert!(
        outcome.converged(),
        "never adopted the new trend: {}/256 agree",
        world.correct_count()
    );
}

#[test]
fn sf_is_not_self_stabilizing_motivating_ssf() {
    // Contrast test: corrupt SF's *clock* analog by scrambling opinions
    // after its schedule completed — SF never recovers (it is Done), while
    // SSF would. This documents the gap SSF closes.
    let config = PopulationConfig::new(128, 0, 1, 128).unwrap();
    let params = SfParams::derive(&config, 0.1, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
    let mut world = World::new(
        &SourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        0xB1,
    )
    .unwrap();
    world.run(params.total_rounds());
    assert!(world.is_consensus());
    // Adversary strikes after convergence.
    world.corrupt_agents(|_, agent, _| agent.force_boost_stage(Opinion::Zero));
    // force_boost_stage restarts boosting from an all-wrong configuration:
    // majority dynamics now amplify the wrong opinion forever.
    world.run(params.total_rounds());
    assert!(
        !world.is_consensus(),
        "SF recovered from adversarial corruption — unexpected"
    );
}
