//! Snapshot continuation at the artifact level: checkpoint a run
//! mid-flight, restore it in a fresh `World`, finish it there, and the
//! serialized np-bench artifacts (per-round JSONL trace + run summary)
//! must be byte-identical to the uninterrupted run — for SF, SSF and
//! SF-ALT, with and without an active fault plan, at every worker
//! thread count.
//!
//! The engine-level continuation tests pin opinions and digests; these
//! pin the *bytes users keep*: `trace_jsonl` output and
//! `RunSummary::to_json`, produced through the same np-bench code paths
//! the CLI uses.

use noisy_pull_repro::engine::snapshot::SnapshotState;
use noisy_pull_repro::prelude::*;
use np_bench::report::{trace_jsonl, RunSummary};

const THREADS: [usize; 3] = [1, 2, 7];

/// Renders the two artifacts a finished run leaves behind.
fn artifacts<P: ColumnarProtocol>(
    label: &str,
    world: &mut World<P>,
    faulted: bool,
) -> (String, String) {
    let trace = world.take_trace().unwrap();
    let jsonl = trace_jsonl(trace.rounds());
    let mut summary =
        RunSummary::from_final_metrics(label, world.config(), world.seed(), trace.last().unwrap());
    if faulted {
        summary = summary.with_faults(recovery_times(trace.rounds()));
    }
    (jsonl, summary.to_json())
}

/// Runs the continuation matrix for one protocol: an uninterrupted
/// reference run, then snapshot-at-`snap_at` → restore → finish at each
/// thread count, byte-comparing both artifacts every time.
fn check_continuation<P>(
    label: &str,
    protocol: &P,
    make: &dyn Fn() -> World<P>,
    plan: Option<&dyn Fn() -> FaultPlan<P::State>>,
    snap_at: u64,
    total: u64,
) where
    P: ColumnarProtocol,
    P::State: SnapshotState,
{
    assert!(snap_at > 0 && snap_at < total, "snapshot must fall mid-run");
    let mut reference = make();
    if let Some(plan) = plan {
        reference.set_fault_plan(plan()).unwrap();
    }
    reference.record_trace();
    reference.run(total);
    let (want_trace, want_summary) = artifacts(label, &mut reference, plan.is_some());

    for threads in THREADS {
        let mut first = make();
        if let Some(plan) = plan {
            first.set_fault_plan(plan()).unwrap();
        }
        first.record_trace();
        first.run(snap_at);
        let bytes = first.snapshot();
        drop(first);

        let mut resumed = World::restore(protocol, &bytes).unwrap();
        assert_eq!(resumed.round(), snap_at);
        resumed.set_threads(threads);
        if let Some(plan) = plan {
            // The plan itself is not serialized; re-attaching validates it
            // against the cursor saved in the snapshot.
            resumed.reattach_fault_plan(plan()).unwrap();
        }
        // Idempotent: the snapshot already carries rounds 1..=snap_at.
        resumed.record_trace();
        resumed.run(total - snap_at);
        let (got_trace, got_summary) = artifacts(label, &mut resumed, plan.is_some());
        assert_eq!(
            want_trace, got_trace,
            "{label}: restored trace differs at {threads} threads"
        );
        assert_eq!(
            want_summary, got_summary,
            "{label}: restored summary differs at {threads} threads"
        );
    }
}

/// A state-agnostic fault plan whose first event lands before the
/// snapshot round and whose last is still pending when it is taken.
fn plan<S>(base_delta: f64, pending_at: u64) -> FaultPlan<S> {
    FaultPlan::new()
        .at(3, FaultEvent::FlipSources)
        .at(
            5,
            FaultEvent::RampNoise {
                from: base_delta,
                to: base_delta + 0.1,
                over: 4,
            },
        )
        .at(
            pending_at,
            FaultEvent::Sleep {
                frac: 0.25,
                rounds: 3,
            },
        )
}

fn sf_setup() -> (SourceFilter, PopulationConfig, NoiseMatrix, SfParams) {
    let config = PopulationConfig::new(192, 1, 2, 192).unwrap();
    let params = SfParams::derive(&config, 0.15, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
    (SourceFilter::new(params), config, noise, params)
}

fn ssf_setup() -> (
    SelfStabilizingSourceFilter,
    PopulationConfig,
    NoiseMatrix,
    SsfParams,
) {
    let config = PopulationConfig::new(128, 0, 1, 128).unwrap();
    let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
    let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
    (
        SelfStabilizingSourceFilter::new(params),
        config,
        noise,
        params,
    )
}

fn alt_setup() -> (
    AlternatingSourceFilter,
    PopulationConfig,
    NoiseMatrix,
    SfParams,
) {
    let config = PopulationConfig::new(96, 0, 1, 96).unwrap();
    let params = SfParams::derive(&config, 0.2, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
    (AlternatingSourceFilter::new(params), config, noise, params)
}

#[test]
fn sf_artifacts_survive_restore() {
    let (protocol, config, noise, params) = sf_setup();
    let make = || World::new(&protocol, config, &noise, ChannelKind::Aggregated, 101).unwrap();
    check_continuation("sf", &protocol, &make, None, 7, params.total_rounds());
}

#[test]
fn sf_artifacts_survive_restore_mid_fault_plan() {
    let (protocol, config, noise, params) = sf_setup();
    let total = params.total_rounds();
    let make = || World::new(&protocol, config, &noise, ChannelKind::Aggregated, 101).unwrap();
    let faults = || plan(0.15, 10);
    check_continuation("sf", &protocol, &make, Some(&faults), 7, total);
}

#[test]
fn ssf_artifacts_survive_restore() {
    let (protocol, config, noise, params) = ssf_setup();
    let total = 2 * params.update_interval();
    let make = || World::new(&protocol, config, &noise, ChannelKind::Aggregated, 55).unwrap();
    check_continuation(
        "ssf",
        &protocol,
        &make,
        None,
        params.update_interval(),
        total,
    );
}

#[test]
fn ssf_artifacts_survive_restore_mid_fault_plan() {
    let (protocol, config, noise, params) = ssf_setup();
    let total = 2 * params.update_interval();
    let snap_at = params.update_interval();
    let make = || World::new(&protocol, config, &noise, ChannelKind::Aggregated, 55).unwrap();
    let faults = || plan(0.1, snap_at + 3);
    check_continuation("ssf", &protocol, &make, Some(&faults), snap_at, total);
}

#[test]
fn columnar_ssf_packed_artifacts_survive_restore_mid_fault_plan() {
    // The packed hot path under snapshotting, with a ragged population
    // (n % 64 ≠ 0, so the bit planes carry a partial final word): the
    // np-snap/v1 encoding never sees the planes — they are rebuilt empty
    // on restore and refilled on the next display pass — so a restored
    // columnar-SSF world must continue byte-identically through a
    // pending fault plan at every thread count.
    let config = PopulationConfig::new(157, 0, 1, 157).unwrap();
    let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
    let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
    let protocol = ColumnarSsf::new(params);
    let total = 2 * params.update_interval();
    let snap_at = params.update_interval();
    let make = || World::new(&protocol, config, &noise, ChannelKind::Aggregated, 55).unwrap();
    let faults = || plan(0.1, snap_at + 3);
    check_continuation(
        "ssf-columnar",
        &protocol,
        &make,
        Some(&faults),
        snap_at,
        total,
    );
}

#[test]
fn sf_alt_artifacts_survive_restore() {
    let (protocol, config, noise, params) = alt_setup();
    let make = || World::new(&protocol, config, &noise, ChannelKind::Aggregated, 77).unwrap();
    check_continuation("sf-alt", &protocol, &make, None, 7, params.total_rounds());
}

#[test]
fn sf_alt_artifacts_survive_restore_mid_fault_plan() {
    let (protocol, config, noise, params) = alt_setup();
    let total = params.total_rounds();
    let make = || World::new(&protocol, config, &noise, ChannelKind::Aggregated, 77).unwrap();
    let faults = || plan(0.2, 10);
    check_continuation("sf-alt", &protocol, &make, Some(&faults), 7, total);
}
