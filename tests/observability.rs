//! Run-observability contract: fixed-seed golden traces and thread-count
//! invariance of the serialized artifacts.
//!
//! The trace is pure trajectory data — stage timings are deliberately
//! excluded from the JSONL/summary artifacts — so the *serialized bytes*
//! must be identical across worker thread counts, not just the parsed
//! values. These tests pin that end to end: engine trace → bench
//! serialization.

use noisy_pull_repro::prelude::*;
use np_bench::report::{round_json, trace_jsonl, RunSummary};

const THREADS: [usize; 3] = [1, 2, 7];

fn sf_world() -> (World<SourceFilter>, SfParams) {
    let config = PopulationConfig::new(192, 1, 2, 192).unwrap();
    let params = SfParams::derive(&config, 0.15, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
    let world = World::new(
        &SourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        101,
    )
    .unwrap();
    (world, params)
}

fn ssf_world(seed: u64) -> (World<SelfStabilizingSourceFilter>, SsfParams) {
    let config = PopulationConfig::new(128, 0, 1, 128).unwrap();
    let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
    let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
    let world = World::new(
        &SelfStabilizingSourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        seed,
    )
    .unwrap();
    (world, params)
}

/// The smallest stage id present among live agents, per round: the
/// front of the protocol's schedule.
fn min_stage(metrics: &np_engine::metrics::RoundMetrics) -> u32 {
    metrics
        .stages
        .iter()
        .map(|&(id, _)| id)
        .min()
        .expect("every round has at least one occupied stage")
}

#[test]
fn sf_golden_trace_has_full_schedule_and_monotone_stages() {
    let (mut world, params) = sf_world();
    world.record_trace();
    world.run(params.total_rounds());
    let trace = world.take_trace().unwrap();
    // One record per executed round, covering the whole schedule.
    assert_eq!(trace.len() as u64, params.total_rounds());
    let rounds: Vec<u64> = trace.rounds().iter().map(|m| m.round).collect();
    let expected: Vec<u64> = (1..=params.total_rounds()).collect();
    assert_eq!(rounds, expected);
    for metrics in trace.rounds() {
        assert_eq!(metrics.n, 192);
        // Stage occupancy always accounts for every agent.
        assert_eq!(metrics.stages.iter().map(|&(_, c)| c).sum::<usize>(), 192);
        assert!(metrics.weak_correct <= metrics.weak_formed);
        assert!(metrics.weak_formed <= metrics.n);
    }
    // SF's schedule only moves forward: the slowest agent's stage is
    // monotone non-decreasing over rounds.
    for pair in trace.rounds().windows(2) {
        assert!(
            min_stage(&pair[0]) <= min_stage(&pair[1]),
            "schedule regressed between rounds {} and {}",
            pair[0].round,
            pair[1].round
        );
    }
    // Everyone ends Done (stage u32::MAX), with a formed weak opinion.
    let last = trace.last().unwrap();
    assert_eq!(last.stages, vec![(u32::MAX, 192)]);
    assert_eq!(last.weak_formed, 192);
    // The final margin is consistent with the final correct count.
    assert_eq!(last.margin(), last.correct as f64 - 96.0);
    assert_eq!(world.correct_count(), last.correct);
}

#[test]
fn ssf_trace_stage_counts_updates() {
    let (mut world, params) = ssf_world(55);
    world.record_trace();
    // Run exactly two update intervals: every agent flushes its memory
    // the round after it fills, so by the end each has ≥ 1 update.
    world.run(2 * params.update_interval());
    let trace = world.take_trace().unwrap();
    let first = trace.rounds().first().unwrap();
    assert_eq!(first.stages, vec![(0, 128)], "no flush before round 1 ends");
    let last = trace.last().unwrap();
    assert!(
        min_stage(last) >= 1,
        "after two intervals every agent has flushed at least once: {:?}",
        last.stages
    );
    // SSF always displays a weak opinion, so it is formed from round 1.
    assert_eq!(first.weak_formed, 128);
}

/// The serialized artifacts — not just the parsed metrics — must be
/// byte-identical across worker thread counts.
#[test]
fn trace_and_summary_bytes_are_thread_count_invariant() {
    let mut reference: Option<(String, String)> = None;
    for threads in THREADS {
        let (mut world, params) = sf_world();
        world.set_threads(threads);
        world.record_trace();
        world.run(params.total_rounds());
        let trace = world.take_trace().unwrap();
        let jsonl = trace_jsonl(trace.rounds());
        let summary =
            RunSummary::from_final_metrics("sf", world.config(), 101, trace.last().unwrap())
                .to_json();
        match &reference {
            None => reference = Some((jsonl, summary)),
            Some((want_jsonl, want_summary)) => {
                assert_eq!(
                    want_jsonl, &jsonl,
                    "trace JSONL differs at {threads} threads"
                );
                assert_eq!(
                    want_summary, &summary,
                    "summary JSON differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn ssf_trace_jsonl_is_thread_count_invariant() {
    let mut reference: Option<String> = None;
    for threads in THREADS {
        let (mut world, params) = ssf_world(55);
        world.set_threads(threads);
        world.record_trace();
        world.run(params.expected_convergence_rounds() + 2);
        let jsonl = trace_jsonl(world.take_trace().unwrap().rounds());
        match &reference {
            None => reference = Some(jsonl),
            Some(want) => assert_eq!(want, &jsonl, "SSF trace differs at {threads} threads"),
        }
    }
}

/// Scalar and columnar SF must serialize the same trace: `stage_id` and
/// `weak_opinion` are part of the equivalence contract, not just opinions.
#[test]
fn columnar_sf_trace_matches_scalar() {
    let (mut scalar, params) = sf_world();
    let config = PopulationConfig::new(192, 1, 2, 192).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
    let mut columnar = World::new(
        &ColumnarSourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        101,
    )
    .unwrap();
    scalar.record_trace();
    columnar.record_trace();
    scalar.run(params.total_rounds());
    columnar.run(params.total_rounds());
    let scalar_trace = trace_jsonl(scalar.take_trace().unwrap().rounds());
    let columnar_trace = trace_jsonl(columnar.take_trace().unwrap().rounds());
    assert_eq!(scalar_trace, columnar_trace);
}

/// A nontrivial fault plan — corruption, a noise ramp, sleepers and a
/// trend change — must leave the serialized artifacts byte-identical
/// across worker thread counts: fault randomness comes from the
/// per-agent streams, never from the split of work across threads.
#[test]
fn faulted_trace_bytes_are_thread_count_invariant() {
    use np_engine::streams::StreamRng;
    use rand::Rng;
    use std::sync::Arc;

    let plan = || {
        FaultPlan::new()
            .at(
                3,
                FaultEvent::Corrupt {
                    frac: 0.5,
                    label: "scramble".to_string(),
                    fault: Arc::new(
                        |state: &mut ScalarState<noisy_pull::ssf::SsfAgent>,
                         id: usize,
                         rng: &mut StreamRng| {
                            let opinion = Opinion::from_bool(rng.gen());
                            state.agents_mut()[id].corrupt_state(opinion, opinion, [0; 4]);
                        },
                    ),
                },
            )
            .at(
                5,
                FaultEvent::RampNoise {
                    from: 0.1,
                    to: 0.2,
                    over: 4,
                },
            )
            .at(
                5,
                FaultEvent::Sleep {
                    frac: 0.25,
                    rounds: 3,
                },
            )
            .at(8, FaultEvent::FlipSources)
    };
    let mut reference: Option<(String, String)> = None;
    for threads in THREADS {
        let (mut world, params) = ssf_world(55);
        world.set_threads(threads);
        world.set_fault_plan(plan()).unwrap();
        world.record_trace();
        world.run(2 * params.update_interval());
        let trace = world.take_trace().unwrap();
        let jsonl = trace_jsonl(trace.rounds());
        let summary =
            RunSummary::from_final_metrics("ssf", world.config(), 55, trace.last().unwrap())
                .with_faults(np_engine::faults::recovery_times(trace.rounds()))
                .to_json();
        match &reference {
            None => reference = Some((jsonl, summary)),
            Some((want_jsonl, want_summary)) => {
                assert_eq!(
                    want_jsonl, &jsonl,
                    "faulted trace JSONL differs at {threads} threads"
                );
                assert_eq!(
                    want_summary, &summary,
                    "faulted summary differs at {threads} threads"
                );
            }
        }
    }
    let (jsonl, summary) = reference.unwrap();
    // Fault markers appear on exactly the injection rounds…
    let marked: Vec<bool> = jsonl.lines().map(|l| l.contains("\"faults\":")).collect();
    for (i, has_marker) in marked.iter().enumerate() {
        let expected = matches!(i + 1, 3 | 5 | 8);
        assert_eq!(
            *has_marker,
            expected,
            "round {}: fault marker mismatch",
            i + 1
        );
    }
    // …with labels carrying the deterministic per-event counts.
    assert!(jsonl.contains("\"scramble:"), "{jsonl}");
    assert!(jsonl.contains("\"ramp-noise:0.1->0.2/4\""), "{jsonl}");
    assert!(jsonl.contains("\"sleep:"), "{jsonl}");
    assert!(jsonl.contains("\"flip-sources:1\""), "{jsonl}");
    // …and the summary reports one recovery record per event.
    assert_eq!(summary.matches("\"label\":").count(), 4, "{summary}");
}

#[test]
fn round_json_stays_stable_for_golden_round() {
    let (mut world, _) = sf_world();
    world.record_trace();
    world.step();
    let trace = world.take_trace().unwrap();
    let json = round_json(&trace.rounds()[0]);
    // Golden shape: all 192 agents still in Listen₀ after one round.
    assert!(json.starts_with("{\"round\":1,"), "{json}");
    assert!(json.contains("\"stages\":[[0,192]]"), "{json}");
    assert!(json.contains("\"weak_formed\":0"), "{json}");
}
