//! Integration: measured behaviour against the paper's closed forms —
//! small-scale versions of EXP-T4-*, EXP-LB and EXP-WEAK that run in CI.

use noisy_pull_repro::core::theory;
use noisy_pull_repro::prelude::*;
use np_bench::harness::{summarize, SfSetup};

#[test]
fn doubling_h_roughly_halves_time_in_the_h_bound_regime() {
    // n modest, h ≪ n: the 1/h term dominates the schedule.
    let base = SfSetup {
        n: 256,
        s0: 0,
        s1: 1,
        h: 4,
        delta: 0.1,
        c1: 1.0,
    };
    let faster = SfSetup { h: 8, ..base };
    let t_base = summarize(&base.run_many(1, 6)).1.expect("converges").mean();
    let t_fast = summarize(&faster.run_many(2, 6))
        .1
        .expect("converges")
        .mean();
    let ratio = t_base / t_fast;
    assert!(
        (1.5..=2.6).contains(&ratio),
        "halving ratio {ratio} outside [1.5, 2.6]"
    );
}

#[test]
fn settle_time_at_h_equals_n_is_logarithmic_not_linear() {
    // Quadrupling n must NOT quadruple the time (it should grow ~ln n).
    let small = SfSetup::single_source_full_sample(128, 0.2, 1.0);
    let large = SfSetup::single_source_full_sample(512, 0.2, 1.0);
    let t_small = summarize(&small.run_many(3, 6))
        .1
        .expect("converges")
        .mean();
    let t_large = summarize(&large.run_many(4, 6))
        .1
        .expect("converges")
        .mean();
    let growth = t_large / t_small;
    let linear_growth = 4.0;
    assert!(
        growth < linear_growth / 1.5,
        "time grew {growth}× for 4× population — not logarithmic"
    );
}

#[test]
fn measured_time_within_log_factor_of_lower_bound() {
    let setup = SfSetup::single_source_full_sample(512, 0.2, 1.0);
    let measured = summarize(&setup.run_many(5, 6))
        .1
        .expect("converges")
        .mean();
    let lb = theory::lower_bound_rounds(512, 512, 1, 0.2, 2).unwrap();
    let ratio = measured / lb.max(1.0);
    let log_n = (512f64).ln();
    assert!(
        ratio < 60.0 * log_n,
        "measured/lower = {ratio}, far beyond O(log n) = {log_n}"
    );
}

#[test]
fn sf_weak_opinions_have_the_advertised_advantage() {
    // Lemma 28 shape: advantage ≥ ~c·√(ln n / n) for some constant c > 0.
    let n = 256;
    let config = PopulationConfig::new(n, 0, 1, n).unwrap();
    let params = SfParams::derive(&config, 0.2, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
    let mut correct = 0u64;
    let mut total = 0u64;
    for seed in 0..30 {
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            0x3A + seed,
        )
        .unwrap();
        world.run(2 * params.phase_len());
        for agent in world.iter_agents() {
            correct += u64::from(agent.weak_opinion() == Some(Opinion::One));
            total += 1;
        }
    }
    let measured = correct as f64 / total as f64;
    let advantage = measured - 0.5;
    let yardstick = ((n as f64).ln() / n as f64).sqrt();
    assert!(
        advantage > 0.2 * yardstick,
        "advantage {advantage} below 0.2×√(ln n/n) = {}",
        0.2 * yardstick
    );
    // And the Claim 29 evidence model predicts the measured accuracy
    // within sampling error (~7.7k weak-opinion samples → 3σ ≈ 0.017).
    let model = theory::sf_weak_opinion_model(n, 0, 1, 0.2, params.m()).unwrap();
    assert!(
        (measured - model).abs() < 0.02,
        "measured {measured} vs Claim-29 model {model}"
    );
}

#[test]
fn theorem_formulas_bound_schedules_consistently() {
    // The derived schedule length must scale with the Theorem 4 formula
    // across a parameter sweep (fixed constant ratio band).
    let mut ratios = Vec::new();
    for &(n, h, delta) in &[
        (512usize, 512usize, 0.1f64),
        (512, 512, 0.3),
        (1024, 1024, 0.2),
        (1024, 64, 0.2),
        (2048, 2048, 0.2),
    ] {
        let setup = SfSetup {
            n,
            s0: 0,
            s1: 1,
            h,
            delta,
            c1: 1.0,
        };
        let schedule = setup.params().total_rounds() as f64;
        let formula = theory::sf_upper_bound_rounds(n, h, 0, 1, delta).unwrap();
        ratios.push(schedule / formula);
    }
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 30.0,
        "schedule/formula ratios vary too widely: {ratios:?}"
    );
}
