//! Complete-topology seam regression matrix.
//!
//! The topology subsystem threads a graph through `World::step`, with the
//! complete graph as a zero-cost seam: a world that never names a
//! topology and a world explicitly pinned to [`TopologySpec::Complete`]
//! must produce **byte-identical** trajectories — same opinions, same
//! per-round series — for every protocol (SF, SSF, SF-ALT) at every
//! thread count (1, 2, 7). Restricted graphs then get the same
//! thread-count-invariance guarantee the complete graph has always had,
//! and graph generation itself must be a pure function of
//! `(spec, n, seed)`.

use noisy_pull_repro::prelude::*;

const THREADS: [usize; 3] = [1, 2, 7];

/// Trajectory fingerprint: final opinions plus the per-round ones-count
/// series.
fn trajectory<P: ColumnarProtocol>(mut world: World<P>, rounds: u64) -> (Vec<Opinion>, Vec<usize>) {
    world.record_series();
    world.run(rounds);
    let counts = world
        .series()
        .expect("series was enabled")
        .counts(Opinion::One);
    (world.opinions(), counts)
}

/// Asserts the explicit-Complete world reproduces the topology-naive
/// world byte for byte, at every thread count.
fn assert_complete_is_a_noop<P, F>(label: &str, rounds: u64, make_world: F)
where
    P: ColumnarProtocol,
    F: Fn() -> World<P>,
{
    for threads in THREADS {
        let mut plain = make_world();
        plain.set_threads(threads);
        let mut pinned = make_world();
        pinned.set_threads(threads);
        pinned
            .set_topology(TopologySpec::Complete)
            .expect("complete is always realizable");
        assert_eq!(
            trajectory(plain, rounds),
            trajectory(pinned, rounds),
            "{label}: explicit Complete changed the trajectory at {threads} threads"
        );
    }
}

fn sf_config() -> (PopulationConfig, SfParams, NoiseMatrix) {
    let config = PopulationConfig::new(192, 1, 2, 192).unwrap();
    let params = SfParams::derive(&config, 0.15, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
    (config, params, noise)
}

fn ssf_config() -> (PopulationConfig, SsfParams, NoiseMatrix) {
    let config = PopulationConfig::new(128, 0, 1, 128).unwrap();
    let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
    let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
    (config, params, noise)
}

#[test]
fn sf_complete_topology_is_a_noop() {
    let (config, params, noise) = sf_config();
    assert_complete_is_a_noop("SF", params.total_rounds(), || {
        World::new(
            &ColumnarSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            101,
        )
        .unwrap()
    });
}

#[test]
fn ssf_complete_topology_is_a_noop() {
    let (config, params, noise) = ssf_config();
    let rounds = params.expected_convergence_rounds() + 2;
    assert_complete_is_a_noop("SSF", rounds, || {
        World::new(
            &ColumnarSsf::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            55,
        )
        .unwrap()
    });
}

#[test]
fn sf_alt_complete_topology_is_a_noop() {
    let (config, params, noise) = sf_config();
    assert_complete_is_a_noop("SF-ALT", params.total_rounds(), || {
        World::new(
            &ColumnarAltSf::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            77,
        )
        .unwrap()
    });
}

/// The exact channel exercises the unpack seam instead of the popcount
/// path; the Complete pin must be a no-op there too.
#[test]
fn sf_exact_channel_complete_topology_is_a_noop() {
    let (config, params, noise) = sf_config();
    assert_complete_is_a_noop("SF (exact)", params.total_rounds(), || {
        World::new(
            &ColumnarSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Exact,
            101,
        )
        .unwrap()
    });
}

/// Restricted graphs inherit the thread-count-invariance contract: the
/// per-neighborhood sampling path draws from the same per-agent streams,
/// so chunking must not change a single observation.
#[test]
fn ring_trajectories_are_thread_count_invariant() {
    let (config, params, noise) = sf_config();
    let (ssf_cfg, ssf_params, ssf_noise) = ssf_config();
    let cases: [(&str, TopologySpec); 2] = [
        ("ring:4", TopologySpec::Ring { k: 4 }),
        ("regular:12", TopologySpec::RandomRegular { d: 12 }),
    ];
    for (label, spec) in cases {
        let mut reference: Option<(Vec<Opinion>, Vec<usize>)> = None;
        for threads in THREADS {
            let mut world = World::new(
                &ColumnarSourceFilter::new(params),
                config,
                &noise,
                ChannelKind::Aggregated,
                101,
            )
            .unwrap();
            world.set_threads(threads);
            world.set_topology(spec).unwrap();
            let got = trajectory(world, params.total_rounds());
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    want, &got,
                    "SF on {label}: trajectory differs at {threads} threads"
                ),
            }
        }
        let mut ssf_reference: Option<(Vec<Opinion>, Vec<usize>)> = None;
        for threads in THREADS {
            let mut world = World::new(
                &ColumnarSsf::new(ssf_params),
                ssf_cfg,
                &ssf_noise,
                ChannelKind::Aggregated,
                55,
            )
            .unwrap();
            world.set_threads(threads);
            world.set_topology(spec).unwrap();
            let got = trajectory(world, ssf_params.expected_convergence_rounds() + 2);
            match &ssf_reference {
                None => ssf_reference = Some(got),
                Some(want) => assert_eq!(
                    want, &got,
                    "SSF on {label}: trajectory differs at {threads} threads"
                ),
            }
        }
    }
}

/// Graph generation is a pure function of `(spec, n, seed)` — two builds
/// agree byte for byte, and a different seed moves the random graphs.
#[test]
fn topology_generation_is_deterministic() {
    for spec in [
        TopologySpec::Ring { k: 3 },
        TopologySpec::RandomRegular { d: 6 },
        TopologySpec::PowerLaw { alpha: 2.5 },
    ] {
        let a = Topology::build(spec, 96, 17).unwrap();
        let b = Topology::build(spec, 96, 17).unwrap();
        assert_eq!(
            a.csr_bytes(),
            b.csr_bytes(),
            "{}: rebuild differs",
            spec.label()
        );
    }
    let a = Topology::build(TopologySpec::RandomRegular { d: 6 }, 96, 17).unwrap();
    let b = Topology::build(TopologySpec::RandomRegular { d: 6 }, 96, 18).unwrap();
    assert_ne!(
        a.csr_bytes(),
        b.csr_bytes(),
        "random-regular graph ignored its seed"
    );
}
