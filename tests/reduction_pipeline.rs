//! Integration: the full Theorem 8 pipeline — derive artificial noise from
//! a non-uniform channel, wrap a protocol, and converge — plus an
//! empirical distributional check of the two-stage channel.

use noisy_pull_repro::prelude::*;
use np_stats::alias::RowSamplers;
use np_stats::hist::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sf_under_asymmetric_binary_noise() {
    let real = NoiseMatrix::from_rows(vec![vec![0.93, 0.07], vec![0.15, 0.85]]).unwrap();
    let reduction = real.artificial_noise().unwrap();
    assert!(reduction.uniform_level() < 0.5);

    let config = PopulationConfig::new(256, 0, 1, 256).unwrap();
    let params = SfParams::derive(&config, reduction.uniform_level(), 1.5).unwrap();
    let protocol =
        WithArtificialNoise::new(SourceFilter::new(params), reduction.artificial().clone())
            .unwrap();
    let mut world = World::new(&protocol, config, &real, ChannelKind::Aggregated, 31).unwrap();
    world.run(params.total_rounds());
    assert!(world.is_consensus(), "{}/256", world.correct_count());
}

#[test]
fn ssf_under_asymmetric_four_symbol_noise() {
    // A lopsided 4-symbol channel within the δ-upper-bounded class.
    let real = NoiseMatrix::from_rows(vec![
        vec![0.91, 0.04, 0.03, 0.02],
        vec![0.01, 0.93, 0.02, 0.04],
        vec![0.03, 0.03, 0.92, 0.02],
        vec![0.02, 0.02, 0.04, 0.92],
    ])
    .unwrap();
    let reduction = real.artificial_noise().unwrap();
    assert!(
        reduction.uniform_level() < 0.25,
        "δ' = {} must stay below 1/4 for SSF",
        reduction.uniform_level()
    );

    let config = PopulationConfig::new(256, 0, 1, 256).unwrap();
    let params = SsfParams::derive(&config, reduction.uniform_level(), 8.0).unwrap();
    let protocol = WithArtificialNoise::new(
        SelfStabilizingSourceFilter::new(params),
        reduction.artificial().clone(),
    )
    .unwrap();
    let mut world = World::new(&protocol, config, &real, ChannelKind::Aggregated, 33).unwrap();
    world.run(params.expected_convergence_rounds() + 2);
    assert!(world.is_consensus(), "{}/256", world.correct_count());
}

#[test]
fn two_stage_channel_matches_uniform_target_empirically() {
    let real = NoiseMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.22, 0.78]]).unwrap();
    let reduction = real.artificial_noise().unwrap();
    let target = NoiseMatrix::uniform(2, reduction.uniform_level()).unwrap();

    let n_rows: Vec<Vec<f64>> = (0..2)
        .map(|s| real.observation_distribution(s).to_vec())
        .collect();
    let p_rows: Vec<Vec<f64>> = (0..2)
        .map(|s| reduction.artificial().observation_distribution(s).to_vec())
        .collect();
    let n_sampler = RowSamplers::new(&n_rows).unwrap();
    let p_sampler = RowSamplers::new(&p_rows).unwrap();

    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let uses = 200_000u64;
    for displayed in 0..2 {
        let mut hist = Histogram::new(2);
        for _ in 0..uses {
            let mid = n_sampler.observe(&mut rng, displayed);
            hist.record(p_sampler.observe(&mut rng, mid));
        }
        let tv = hist
            .tv_distance_to(target.observation_distribution(displayed))
            .unwrap();
        let bound = 4.0 * (1.0 / (2.0 * uses as f64)).sqrt();
        assert!(tv < bound, "displayed {displayed}: TV {tv} ≥ {bound}");
    }
}

#[test]
fn reduction_rejects_hopeless_channels() {
    // A channel that flips more often than chance has no δ ≤ 1/d class.
    let hopeless = NoiseMatrix::from_rows(vec![vec![0.3, 0.7], vec![0.7, 0.3]]).unwrap();
    assert!(hopeless.artificial_noise().is_err());
}

#[test]
fn reduction_preserves_weak_opinion_access_through_wrapper() {
    let real = NoiseMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.1, 0.9]]).unwrap();
    let reduction = real.artificial_noise().unwrap();
    let config = PopulationConfig::new(64, 0, 1, 64).unwrap();
    let params = SfParams::derive(&config, reduction.uniform_level(), 1.0).unwrap();
    let protocol =
        WithArtificialNoise::new(SourceFilter::new(params), reduction.artificial().clone())
            .unwrap();
    let mut world = World::new(&protocol, config, &real, ChannelKind::Aggregated, 35).unwrap();
    world.run(2 * params.phase_len());
    // The wrapped agent's weak opinion is reachable for analysis.
    let have_weak = world
        .iter_agents()
        .filter(|a| a.inner().weak_opinion().is_some())
        .count();
    assert_eq!(have_weak, 64);
}
