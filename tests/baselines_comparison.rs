//! Integration: SF succeeds where the baselines fail, under identical
//! budgets — the qualitative content of experiment EXP-BASE.

use noisy_pull_repro::baselines::majority::HMajority;
use noisy_pull_repro::baselines::mean_estimator::MeanEstimator;
use noisy_pull_repro::baselines::trusting_copy::TrustingCopy;
use noisy_pull_repro::baselines::voter::ZealotVoter;
use noisy_pull_repro::prelude::*;
use np_bench::harness::run_settled;

const N: usize = 256;
const DELTA: f64 = 0.15;
const SEEDS: u64 = 6;

fn budget() -> u64 {
    let config = PopulationConfig::new(N, 0, 1, N).unwrap();
    let params = SfParams::derive(&config, DELTA, 1.0).unwrap();
    2 * params.total_rounds()
}

fn successes<P: Protocol>(proto: &P, delta: f64) -> u32 {
    let config = PopulationConfig::new(N, 0, 1, N).unwrap();
    let noise = NoiseMatrix::uniform(proto.alphabet_size(), delta).unwrap();
    let mut wins = 0;
    for seed in 0..SEEDS {
        let mut world = World::new(
            proto,
            config,
            &noise,
            ChannelKind::Aggregated,
            0xBEEF + seed,
        )
        .unwrap();
        if run_settled(&mut world, budget()).converged() {
            wins += 1;
        }
    }
    wins
}

#[test]
fn sf_wins_every_seed() {
    let config = PopulationConfig::new(N, 0, 1, N).unwrap();
    let params = SfParams::derive(&config, DELTA, 1.0).unwrap();
    assert_eq!(successes(&SourceFilter::new(params), DELTA), SEEDS as u32);
}

#[test]
fn zealot_voter_never_settles_under_noise() {
    // Noisy observations keep flipping voters: full correct consensus is
    // never *held*.
    assert_eq!(successes(&ZealotVoter, DELTA), 0);
}

#[test]
fn h_majority_is_a_coin_flip_at_best() {
    // Majority locks into the initial random split; a single source can't
    // tip it. Expect well below SF's 100% (allow a lucky seed or three).
    let wins = successes(&HMajority, DELTA);
    assert!(wins < SEEDS as u32, "h-majority won all {SEEDS} seeds");
}

#[test]
fn trusting_copy_is_poisoned_by_noise() {
    let wins = successes(&TrustingCopy, 0.1);
    assert!(wins < SEEDS as u32, "trusting-copy won all {SEEDS} seeds");
}

#[test]
fn mean_estimator_tracks_itself_not_the_source() {
    let wins = successes(&MeanEstimator::new(DELTA), DELTA);
    assert!(wins < SEEDS as u32, "mean-estimator won all {SEEDS} seeds");
}

#[test]
fn trusting_copy_works_without_noise() {
    // Completing the contrast: the same protocol is excellent noiselessly.
    assert_eq!(successes(&TrustingCopy, 0.0), SEEDS as u32);
}
