//! Integration: behaviour at the edges of the noise range — the
//! information-theoretic sanity checks.

use noisy_pull_repro::prelude::*;

#[test]
fn sf_under_fully_mixing_noise_cannot_learn() {
    // δ = ½ on the binary alphabet: observations are fair coins carrying
    // zero information. No protocol can do better than chance; check SF's
    // machinery doesn't somehow "succeed" reliably. (SfParams rejects
    // δ ≥ ½, so we drive the world with a δ = 0.5 channel while the
    // protocol believes δ = 0.4 — the belief only sets the schedule.)
    let n = 128;
    let config = PopulationConfig::new(n, 0, 1, n).unwrap();
    let params = SfParams::derive(&config, 0.4, 0.25).unwrap();
    let channel_noise = NoiseMatrix::uniform(2, 0.5).unwrap();
    let mut successes = 0;
    for seed in 0..6 {
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &channel_noise,
            ChannelKind::Aggregated,
            seed,
        )
        .unwrap();
        world.run(params.total_rounds());
        if world.is_consensus() {
            successes += 1;
        }
    }
    // Boosting converges to *some* unanimous value; it is correct only by
    // coin flip. All six correct would be a 1/64 event.
    assert!(successes < 6, "learned from a zero-information channel?");
}

#[test]
fn sf_noiseless_converges_fast_and_surely() {
    let n = 128;
    let config = PopulationConfig::new(n, 0, 1, n).unwrap();
    let params = SfParams::derive(&config, 0.0, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.0).unwrap();
    for seed in 0..4 {
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .unwrap();
        world.run(params.total_rounds());
        assert!(world.is_consensus(), "seed {seed}");
    }
}

#[test]
fn ssf_rejects_noise_at_and_beyond_quarter() {
    let config = PopulationConfig::new(64, 0, 1, 64).unwrap();
    assert!(SsfParams::derive(&config, 0.25, 1.0).is_err());
    assert!(SsfParams::derive(&config, 0.3, 1.0).is_err());
    assert!(SsfParams::derive(&config, 0.2499, 1.0).is_ok());
}

#[test]
fn sf_tolerates_noise_arbitrarily_close_to_half() {
    // δ = 0.42 is brutal but information still flows; with the derived
    // (large) budget SF must still converge.
    let n = 256;
    let config = PopulationConfig::new(n, 0, 1, n).unwrap();
    let params = SfParams::derive(&config, 0.42, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.42).unwrap();
    let mut world = World::new(
        &SourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        11,
    )
    .unwrap();
    world.run(params.total_rounds());
    assert!(world.is_consensus(), "{}/{n}", world.correct_count());
}

#[test]
fn reduction_handles_nearly_singular_channel() {
    // δ close to 1/d: N is nearly fully mixing; the inverse norm explodes
    // (Corollary 14's bound diverges) but the construction must still
    // produce a valid stochastic P with δ' < 1/d.
    let n = NoiseMatrix::uniform(2, 0.49).unwrap();
    let red = n.artificial_noise().unwrap();
    assert!(red.uniform_level() < 0.5);
    let composed = n.compose(red.artificial()).unwrap();
    assert!(composed.is_uniform_with_level(red.uniform_level(), 1e-7));
}

#[test]
fn lower_bound_formula_degenerates_gracefully() {
    use noisy_pull_repro::core::theory;
    // δ|Σ| = 1 has no informative bound.
    assert!(theory::lower_bound_rounds(100, 1, 1, 0.5, 2).is_err());
    // δ = 0: bound is 0 rounds (no noise — spreading is easy).
    assert_eq!(theory::lower_bound_rounds(100, 1, 1, 0.0, 2).unwrap(), 0.0);
}
