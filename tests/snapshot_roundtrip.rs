//! Property tests for `np-snap/v1`: snapshot → restore → snapshot must
//! reproduce the exact bytes, for arbitrary populations and seeds, at
//! any point in a run — including a snapshot taken mid fault plan, with
//! some events already applied and others still pending.

use noisy_pull_repro::prelude::*;
use proptest::prelude::*;

proptest! {
    // Each case builds and runs a world; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sf_snapshot_bytes_roundtrip(
        n in 8usize..96,
        s1 in 1usize..3,
        delta in 0.0f64..0.3,
        seed in any::<u64>(),
        ran in 0u64..12,
    ) {
        let config = PopulationConfig::new(n, 0, s1, n).unwrap();
        let params = SfParams::derive(&config, delta, 1.0).unwrap();
        let noise = NoiseMatrix::uniform(2, delta).unwrap();
        let protocol = SourceFilter::new(params);
        let mut world =
            World::new(&protocol, config, &noise, ChannelKind::Aggregated, seed).unwrap();
        world.record_trace();
        world.run(ran);
        let bytes = world.snapshot();
        let restored = World::restore(&protocol, &bytes).unwrap();
        prop_assert_eq!(restored.round(), ran);
        prop_assert_eq!(restored.snapshot(), bytes);
    }

    #[test]
    fn ssf_snapshot_bytes_roundtrip(
        seed in any::<u64>(),
        ran in 0u64..20,
    ) {
        let config = PopulationConfig::new(32, 0, 1, 32).unwrap();
        let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
        let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
        let protocol = SelfStabilizingSourceFilter::new(params);
        let mut world =
            World::new(&protocol, config, &noise, ChannelKind::Aggregated, seed).unwrap();
        world.run(ran);
        let bytes = world.snapshot();
        let restored = World::restore(&protocol, &bytes).unwrap();
        prop_assert_eq!(restored.round(), ran);
        prop_assert_eq!(restored.snapshot(), bytes);
    }

    #[test]
    fn snapshot_mid_fault_plan_roundtrips_with_pending_events(
        seed in any::<u64>(),
        delta in 0.05f64..0.25,
    ) {
        let config = PopulationConfig::new(48, 0, 1, 48).unwrap();
        let params = SfParams::derive(&config, delta, 1.0).unwrap();
        let noise = NoiseMatrix::uniform(2, delta).unwrap();
        let protocol = SourceFilter::new(params);
        let mut world =
            World::new(&protocol, config, &noise, ChannelKind::Aggregated, seed).unwrap();
        let plan = || {
            FaultPlan::new()
                .at(2, FaultEvent::FlipSources)
                .at(100, FaultEvent::Sleep { frac: 0.5, rounds: 3 })
        };
        world.set_fault_plan(plan()).unwrap();
        // Round 5: the flip has fired, the sleep is still pending — the
        // snapshot must carry the fault cursor, not the plan itself.
        world.run(5);
        let bytes = world.snapshot();
        let mut restored = World::restore(&protocol, &bytes).unwrap();
        prop_assert_eq!(restored.round(), 5);
        prop_assert_eq!(restored.snapshot(), bytes);
        // Re-attaching the same plan validates against the saved cursor
        // (the already-applied round-2 event must not be rejected as
        // being in the past) and the run continues.
        restored.reattach_fault_plan(plan()).unwrap();
        restored.run(3);
        prop_assert_eq!(restored.round(), 8);
    }
}
