//! Thread-count invariance: the refactor's headline contract.
//!
//! Randomness is derived per `(seed, round, agent, stage)`, never from a
//! shared sequential stream, so chunking a round over 1, 2 or 7 worker
//! threads must produce **byte-identical** trajectories — same opinions,
//! same per-round series, same batch outputs. These tests pin that
//! contract across the protocol zoo (SF, SSF — including an
//! adversarially corrupted start — and the h-majority baseline) and
//! across both entry points (`World::step` and `runner::run_batch`).

use noisy_pull_repro::baselines::majority::HMajority;
use noisy_pull_repro::engine::runner::run_batch;
use noisy_pull_repro::prelude::*;
use noisy_pull_repro::stats::seeds::SeedSequence;

const THREADS: [usize; 3] = [1, 2, 7];

/// Runs `make_world()` for `rounds` under each thread count and asserts
/// the final opinions and the full per-round series all match the
/// single-threaded reference.
fn assert_thread_invariant<P, F>(label: &str, rounds: u64, make_world: F)
where
    P: ColumnarProtocol,
    F: Fn() -> World<P>,
{
    let mut reference: Option<(Vec<Opinion>, Vec<usize>)> = None;
    for threads in THREADS {
        let mut world = make_world();
        world.set_threads(threads);
        world.record_series();
        world.run(rounds);
        let counts: Vec<usize> = world
            .series()
            .expect("series was enabled")
            .counts(Opinion::One);
        let got = (world.opinions(), counts);
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                assert_eq!(
                    want.0, got.0,
                    "{label}: opinions differ at {threads} threads"
                );
                assert_eq!(
                    want.1, got.1,
                    "{label}: series differs at {threads} threads"
                );
            }
        }
    }
}

fn sf_world() -> (World<SourceFilter>, SfParams) {
    let config = PopulationConfig::new(192, 1, 2, 192).unwrap();
    let params = SfParams::derive(&config, 0.15, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
    let world = World::new(
        &SourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        101,
    )
    .unwrap();
    (world, params)
}

fn ssf_world(seed: u64) -> (World<SelfStabilizingSourceFilter>, SsfParams) {
    let config = PopulationConfig::new(128, 0, 1, 128).unwrap();
    let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
    let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
    let world = World::new(
        &SelfStabilizingSourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        seed,
    )
    .unwrap();
    (world, params)
}

#[test]
fn sf_trajectory_is_thread_count_invariant() {
    let (_, params) = sf_world();
    assert_thread_invariant("SF", params.total_rounds(), || sf_world().0);
}

#[test]
fn sf_columnar_trajectory_is_thread_count_invariant() {
    let config = PopulationConfig::new(192, 1, 2, 192).unwrap();
    let params = SfParams::derive(&config, 0.15, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
    assert_thread_invariant("columnar SF", params.total_rounds(), || {
        World::new(
            &ColumnarSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            101,
        )
        .unwrap()
    });
}

#[test]
fn ssf_trajectory_is_thread_count_invariant() {
    let (_, params) = ssf_world(55);
    let rounds = params.expected_convergence_rounds() + 2;
    assert_thread_invariant("SSF", rounds, || ssf_world(55).0);
}

#[test]
fn ssf_corrupted_start_is_thread_count_invariant() {
    let (_, params) = ssf_world(56);
    let rounds = 2 * params.expected_convergence_rounds() + 4;
    let m = params.m();
    assert_thread_invariant("SSF (poisoned memory)", rounds, || {
        let (mut world, _) = ssf_world(56);
        let correct = world.config().correct_opinion();
        world.corrupt_agents(|id, agent, rng| {
            SsfAdversary::PoisonedMemory.corrupt(agent, correct, m, id, rng);
        });
        world
    });
}

#[test]
fn majority_trajectory_is_thread_count_invariant() {
    let config = PopulationConfig::new(160, 2, 5, 8).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
    assert_thread_invariant("h-majority", 60, || {
        World::new(&HMajority, config, &noise, ChannelKind::Aggregated, 7).unwrap()
    });
}

/// `run_batch` outputs must not depend on the batch-level thread count
/// either — each job is seeded independently and runs its own world, so
/// varying *both* thread knobs at once must leave every output in place.
#[test]
fn run_batch_outputs_are_thread_count_invariant() {
    let config = PopulationConfig::new(96, 0, 1, 96).unwrap();
    let params = SfParams::derive(&config, 0.2, 1.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
    let mut reference: Option<Vec<(u64, usize, Vec<Opinion>)>> = None;
    for threads in THREADS {
        let out = run_batch(SeedSequence::new(13), 6, threads, |seed| {
            let mut world = World::new(
                &SourceFilter::new(params),
                config,
                &noise,
                ChannelKind::Aggregated,
                seed,
            )
            .unwrap();
            world.set_threads(threads);
            world.run(params.total_rounds());
            (seed, world.correct_count(), world.opinions())
        });
        match &reference {
            None => reference = Some(out),
            Some(want) => assert_eq!(want, &out, "batch outputs differ at {threads} threads"),
        }
    }
}
