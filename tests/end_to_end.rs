//! End-to-end integration: both protocols, both channels, a spread of
//! configurations — the cross-crate contract of the whole workspace.

use noisy_pull_repro::prelude::*;

#[allow(clippy::too_many_arguments)] // a test fixture mirroring the full parameter space
fn sf_world(
    n: usize,
    s0: usize,
    s1: usize,
    h: usize,
    delta: f64,
    c1: f64,
    kind: ChannelKind,
    seed: u64,
) -> (World<SourceFilter>, SfParams) {
    let config = PopulationConfig::new(n, s0, s1, h).unwrap();
    let params = SfParams::derive(&config, delta, c1).unwrap();
    let noise = NoiseMatrix::uniform(2, delta).unwrap();
    (
        World::new(&SourceFilter::new(params), config, &noise, kind, seed).unwrap(),
        params,
    )
}

#[test]
fn sf_converges_across_population_sizes() {
    for (i, n) in [64usize, 128, 256, 512].into_iter().enumerate() {
        let (mut world, params) =
            sf_world(n, 0, 1, n, 0.2, 2.0, ChannelKind::Aggregated, 40 + i as u64);
        world.run(params.total_rounds());
        assert!(
            world.is_consensus(),
            "n = {n}: {}/{n}",
            world.correct_count()
        );
    }
}

#[test]
fn sf_converges_with_small_h() {
    // h = 4 pushes the schedule into the Θ(m) regime; keep n small.
    let (mut world, params) = sf_world(64, 0, 1, 4, 0.1, 1.0, ChannelKind::Exact, 1);
    world.run(params.total_rounds());
    assert!(world.is_consensus());
}

#[test]
fn sf_exact_and_aggregated_channels_both_converge() {
    for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
        let (mut world, params) = sf_world(128, 0, 1, 32, 0.15, 1.5, kind, 7);
        world.run(params.total_rounds());
        assert!(world.is_consensus(), "channel {kind:?}");
    }
}

#[test]
fn sf_spreads_opinion_zero_too() {
    let (mut world, params) = sf_world(256, 1, 0, 256, 0.2, 1.0, ChannelKind::Aggregated, 3);
    world.run(params.total_rounds());
    assert!(world.is_consensus());
    assert!(world.iter_agents().all(|a| a.opinion() == Opinion::Zero));
}

#[test]
fn sf_handles_minimal_population() {
    // Degenerate but legal: n = 2, one source. Mostly a no-panic test; at
    // this size the w.h.p. guarantee is meaningless, so only invariants
    // are checked.
    let (mut world, params) = sf_world(2, 0, 1, 2, 0.1, 1.0, ChannelKind::Exact, 5);
    world.run(params.total_rounds());
    assert_eq!(world.round(), params.total_rounds());
}

#[test]
fn ssf_converges_and_persists_across_sizes() {
    for (i, n) in [128usize, 256, 512].into_iter().enumerate() {
        let config = PopulationConfig::new(n, 0, 1, n).unwrap();
        let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
        let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
        let mut world = World::new(
            &SelfStabilizingSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            60 + i as u64,
        )
        .unwrap();
        world.run(params.expected_convergence_rounds() + 2);
        assert!(
            world.is_consensus(),
            "n = {n}: {}/{n}",
            world.correct_count()
        );
        // Persistence over two more full update cycles.
        for _ in 0..2 * params.update_interval() {
            world.step();
            assert!(world.is_consensus(), "n = {n}: consensus lost");
        }
    }
}

#[test]
fn both_protocols_resolve_conflicting_sources_to_plurality() {
    // 3 vs 2 sources.
    let (mut world, params) = sf_world(256, 2, 3, 256, 0.15, 1.0, ChannelKind::Aggregated, 9);
    world.run(params.total_rounds());
    assert!(world.is_consensus());
    assert!(world.iter_agents().all(|a| a.opinion() == Opinion::One));

    let config = PopulationConfig::new(256, 2, 3, 256).unwrap();
    let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
    let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
    let mut world = World::new(
        &SelfStabilizingSourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        11,
    )
    .unwrap();
    world.run(params.expected_convergence_rounds() + 2);
    assert!(world.is_consensus());
}

#[test]
fn sf_alternating_variant_converges_end_to_end() {
    use noisy_pull_repro::core::sf_alternating::AlternatingSourceFilter;
    let config = PopulationConfig::new(256, 0, 1, 256).unwrap();
    let params = SfParams::derive(&config, 0.2, 2.0).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
    let mut world = World::new(
        &AlternatingSourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        21,
    )
    .unwrap();
    world.run(params.total_rounds());
    assert!(world.is_consensus(), "{}/256", world.correct_count());
}

#[test]
fn push_model_spreads_end_to_end() {
    use noisy_pull_repro::baselines::push_spreading::{PushSpreading, PushSpreadingParams};
    use noisy_pull_repro::engine::push::PushWorld;
    let n = 256;
    let params = PushSpreadingParams::derive(n, 1, 0.1);
    let config = PopulationConfig::new(n, 0, 1, 1).unwrap();
    let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
    let mut world = PushWorld::new(&PushSpreading::new(params), config, &noise, 23).unwrap();
    world.run(params.total_rounds());
    assert!(world.is_consensus(), "{}/{n}", world.correct_count());
}

#[test]
fn sf_run_is_reproducible_across_worlds() {
    let (mut a, params) = sf_world(128, 0, 1, 128, 0.2, 1.0, ChannelKind::Aggregated, 77);
    let (mut b, _) = sf_world(128, 0, 1, 128, 0.2, 1.0, ChannelKind::Aggregated, 77);
    a.run(params.total_rounds());
    b.run(params.total_rounds());
    let ops_a: Vec<Opinion> = a.iter_agents().map(|x| x.opinion()).collect();
    let ops_b: Vec<Opinion> = b.iter_agents().map(|x| x.opinion()).collect();
    assert_eq!(ops_a, ops_b);
}

#[test]
fn opinion_series_tracks_takeover() {
    let (mut world, params) = sf_world(256, 0, 1, 256, 0.2, 1.0, ChannelKind::Aggregated, 13);
    world.record_series();
    world.run(params.total_rounds());
    let series = world.series().unwrap();
    assert_eq!(series.len() as u64, params.total_rounds());
    // The last recorded round must show full adoption of opinion One.
    assert_eq!(series.count(series.len() - 1, Opinion::One), 256);
    // Early rounds (during listening) must NOT be in consensus: non-source
    // opinions start as coin flips.
    assert!(series.count(0, Opinion::One) < 256);
}
