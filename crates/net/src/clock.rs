//! The crate's one sanctioned wall-clock site.
//!
//! Simulated time ([`crate::sim`]) never touches this module — its clock
//! is the event-scheduler counter, which is what makes sim runs a pure
//! function of the seed. The TCP transport *must* read real time (socket
//! timeouts, tick deadlines, wall-clock convergence measurement), and all
//! of those reads funnel through here so the rest of the crate never
//! names `Instant`: the `protocol-clock` lint scope excludes exactly this
//! file, mirroring how `np_engine::metrics::StageClock` is the engine's
//! sanctioned observer.

use std::time::{Duration, Instant};

/// A started stopwatch for wall-clock measurements (TCP transport only).
#[derive(Debug, Clone, Copy)]
pub struct WallClock(Instant);

impl WallClock {
    /// Starts the stopwatch now.
    pub fn start() -> Self {
        WallClock(Instant::now()) // xtask-allow: wall-clock (the sanctioned TCP-transport clock site)
    }

    /// Milliseconds elapsed since [`WallClock::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }

    /// Nanoseconds elapsed since [`WallClock::start`], saturated to
    /// `u64`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A point in the future against which socket timeouts are computed.
#[derive(Debug, Clone, Copy)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline `ns` nanoseconds from now.
    pub fn after_ns(ns: u64) -> Self {
        // xtask-allow: wall-clock (the sanctioned TCP-transport clock site)
        Deadline(Instant::now() + Duration::from_nanos(ns))
    }

    /// Time left until the deadline, or `None` if it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        // xtask-allow: wall-clock (the sanctioned TCP-transport clock site)
        self.0.checked_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_in_the_future_has_remaining_time() {
        let d = Deadline::after_ns(5_000_000_000);
        assert!(d.remaining().is_some());
    }

    #[test]
    fn elapsed_is_nonnegative() {
        let w = WallClock::start();
        assert!(w.elapsed_ms() >= 0.0);
    }
}
