//! `np_net` — the message-passing execution substrate for the noisy PULL
//! protocols.
//!
//! The round-based engine ([`np_engine::world::World`]) advances every
//! agent in lockstep: a global barrier separates the display, observe and
//! update steps of a round. That is faithful to the *synchronous* model of
//! the paper, but the headline robustness claim — SSF self-stabilizes
//! under noisy, asynchronous arrival of observations (Theorem 5) — is
//! about a system with **no global round barrier**. This crate runs each
//! agent as an event-driven *node*:
//!
//! * a node keeps a local round counter and a timer; on each timer tick it
//!   closes the current local round (feeding whatever replies arrived into
//!   the protocol update — "breathe before speaking": an empty round is
//!   simply skipped) and opens the next one by sending `h`
//!   [`msg::NetMsg::PullRequest`]s to uniformly chosen peers;
//! * a peer answers a request with a [`msg::NetMsg::PullReply`] carrying
//!   its *currently displayed* symbol — which may belong to a different
//!   local round than the requester's;
//! * the requester applies its noisy channel **on receipt**
//!   ([`np_engine::channel::Channel::observe_one`]) and counts the
//!   observation toward its current local round; stale replies are
//!   dropped.
//!
//! The protocol logic itself is untouched: nodes are generic over the
//! scalar [`np_engine::protocol::AgentState`] seam, so the exact `SfAgent`
//! / `SsfAgent` state machines that the round engine executes are the ones
//! running behind the transport.
//!
//! # The `Transport` seam
//!
//! A node never performs I/O. [`node::Node`] consumes
//! [`node::NodeEvent`]s and emits [`node::NodeAction`]s into a
//! [`node::Transport`] — a per-node action sink. Two transports ship:
//!
//! * [`sim::SimCluster`] — deterministic simulated time. A single-threaded
//!   event scheduler (binary heap keyed by `(virtual_ns, seq)`) delivers
//!   messages with latency, jitter and drops drawn from the engine's
//!   stream machinery ([`np_engine::streams::StreamStage::NetDelay`] and
//!   friends), so an entire cluster run is a pure function of the seed and
//!   byte-identical across re-runs.
//! * [`tcp::run_tcp_cluster`] — a length-prefixed TCP transport: every
//!   node is a real thread with a socket, timers are wall-clock deadlines,
//!   and a hub router forwards frames. Real asynchrony; determinism is
//!   deliberately given up (see DESIGN.md §16).
//!
//! Transport-level faults ([`faults::NetFaultPlan`]) mirror the engine's
//! `FaultPlan` vocabulary: extra delay spans, message drop rates, and link
//! partitions with heal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod clock;
pub mod cluster;
pub mod faults;
pub mod msg;
pub mod node;
pub mod sim;
pub mod tcp;

mod error;

pub use error::NetError;

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, NetError>;
