//! The event-driven protocol node and its sans-io `Transport` seam.
//!
//! A [`Node`] wraps one scalar protocol agent
//! ([`np_engine::protocol::AgentState`]) and turns the round-based
//! display/observe/update cycle into a timer-driven local loop with **no
//! global barrier**:
//!
//! 1. On a [`NodeEvent::Tick`] the node *closes* its current local round
//!    — if at least one reply arrived it feeds the observation counts to
//!    `AgentState::update`, otherwise the round is skipped entirely
//!    ("breathe before speaking": silence is not evidence) — and *opens*
//!    the next: draws its displayed symbol, sends `h`
//!    [`NetMsg::PullRequest`]s to uniformly chosen peers (self included,
//!    matching the engine's with-replacement sampling), and re-arms the
//!    timer.
//! 2. A [`NetMsg::PullRequest`] from a peer is answered immediately with
//!    the node's currently displayed symbol, whatever local round the
//!    node happens to be in.
//! 3. A [`NetMsg::PullReply`] tagged with the node's *current* local
//!    round passes through the noisy channel
//!    ([`np_engine::channel::Channel::observe_one`]) and is counted;
//!    replies for past rounds are dropped as stale.
//!
//! All randomness is drawn from `(seed, local_round, node, stage)`
//! streams ([`np_engine::streams::RoundStreams`]), so a node's behavior
//! is a pure function of its coordinate and the sequence of events it is
//! fed — the transports own *when* events happen, the node owns *what*
//! they mean. The node performs no I/O: every outward effect is a
//! [`NodeAction`] applied to a [`Transport`].

use std::sync::Arc;

use np_engine::channel::Channel;
use np_engine::protocol::AgentState;
use np_engine::streams::{RoundStreams, StreamRng, StreamStage};
use rand::Rng;

use crate::msg::{Envelope, NetMsg, WEAK_NONE};

/// The destination id nodes use for driver-bound bookkeeping messages
/// ([`NetMsg::Status`]); never a valid peer id.
pub const DRIVER: u64 = u64::MAX;

/// An input to the node state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEvent {
    /// A message arrived on the node's link.
    Deliver(Envelope),
    /// The node's round timer fired.
    Tick,
}

/// An outward effect requested by the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeAction {
    /// Put this envelope on the wire.
    Send(Envelope),
    /// Arm the round timer to fire once, this many nanoseconds from now
    /// (virtual or real, per transport). Replaces any armed timer.
    SetTick(u64),
}

/// The per-node action sink implemented by each transport: the simulated
/// scheduler pushes into its event heap, the TCP port writes frames and
/// moves its socket deadline. This is the entire surface between protocol
/// execution and I/O.
pub trait Transport {
    /// Carries out one action on behalf of the node.
    fn apply(&mut self, action: NodeAction);
}

/// Counters a node accumulates about its own message handling; read by
/// the cluster drivers for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Local rounds closed with zero arrived replies (skipped updates).
    pub rounds_skipped: u64,
    /// Replies that arrived after their round had already closed.
    pub stale_replies: u64,
    /// Replies counted into an observation vector.
    pub replies_counted: u64,
}

/// One protocol agent behind a transport. Generic over the scalar agent
/// seam, so the exact `SfAgent`/`SsfAgent` state machines of the round
/// engine run here unchanged.
#[derive(Debug)]
pub struct Node<A: AgentState> {
    id: u64,
    n: u64,
    h: usize,
    seed: u64,
    tick_ns: u64,
    agent: A,
    channel: Arc<Channel>,
    local_round: u64,
    displayed: u8,
    obs: Vec<u64>,
    replies_seen: u64,
    obs_rng: StreamRng,
    done: bool,
    stats: NodeStats,
}

impl<A: AgentState> Node<A> {
    /// Wraps `agent` as node `id` of `n`, sampling `h` peers per local
    /// round of `tick_ns` nanoseconds. The display is valid immediately
    /// (round-0 streams), so requests arriving before the node's first
    /// tick are answered correctly.
    pub fn new(
        id: u64,
        n: u64,
        h: usize,
        seed: u64,
        tick_ns: u64,
        agent: A,
        channel: Arc<Channel>,
    ) -> Self {
        let d = channel.alphabet_size();
        let boot = RoundStreams::new(seed, 0);
        let idx = usize::try_from(id).unwrap_or(usize::MAX);
        let displayed = symbol_byte(agent.display(&mut boot.rng(idx, StreamStage::Display)));
        let obs_rng = boot.rng(idx, StreamStage::Observe);
        Node {
            id,
            n,
            h,
            seed,
            tick_ns,
            agent,
            channel,
            local_round: 0,
            displayed,
            obs: vec![0; d],
            replies_seen: 0,
            obs_rng,
            done: false,
            stats: NodeStats::default(),
        }
    }

    /// Feeds one event through the state machine, applying any resulting
    /// actions to `t`.
    pub fn handle(&mut self, event: NodeEvent, t: &mut impl Transport) {
        match event {
            NodeEvent::Tick => self.on_tick(t),
            NodeEvent::Deliver(env) => self.on_deliver(env, t),
        }
    }

    fn on_tick(&mut self, t: &mut impl Transport) {
        if self.done {
            return;
        }
        if self.local_round > 0 {
            self.close_round(t);
        }
        self.open_round(t);
    }

    fn close_round(&mut self, t: &mut impl Transport) {
        if self.replies_seen > 0 {
            let streams = RoundStreams::new(self.seed, self.local_round);
            let mut rng = streams.rng(self.idx(), StreamStage::Update);
            self.agent.update(&self.obs, &mut rng);
        } else {
            self.stats.rounds_skipped += 1;
        }
        let weak = self.agent.weak_opinion().map_or(WEAK_NONE, |w| w.as_byte());
        t.apply(NodeAction::Send(Envelope {
            from: self.id,
            to: DRIVER,
            msg: NetMsg::Status {
                round: self.local_round,
                opinion: self.agent.opinion().as_byte(),
                weak,
            },
        }));
    }

    fn open_round(&mut self, t: &mut impl Transport) {
        self.local_round += 1;
        let streams = RoundStreams::new(self.seed, self.local_round);
        let idx = self.idx();
        self.displayed = symbol_byte(
            self.agent
                .display(&mut streams.rng(idx, StreamStage::Display)),
        );
        self.obs_rng = streams.rng(idx, StreamStage::Observe);
        self.obs.fill(0);
        self.replies_seen = 0;
        let mut peers = streams.rng(idx, StreamStage::NetPeer);
        for _ in 0..self.h {
            let peer = peers.gen_range(0..self.n);
            t.apply(NodeAction::Send(Envelope {
                from: self.id,
                to: peer,
                msg: NetMsg::PullRequest {
                    round: self.local_round,
                },
            }));
        }
        t.apply(NodeAction::SetTick(self.tick_ns));
    }

    fn on_deliver(&mut self, env: Envelope, t: &mut impl Transport) {
        match env.msg {
            NetMsg::PullRequest { round } => {
                if !self.done {
                    t.apply(NodeAction::Send(Envelope {
                        from: self.id,
                        to: env.from,
                        msg: NetMsg::PullReply {
                            round,
                            symbol: self.displayed,
                        },
                    }));
                }
            }
            NetMsg::PullReply { round, symbol } => {
                if round != self.local_round || self.local_round == 0 {
                    self.stats.stale_replies += 1;
                    return;
                }
                let sym = usize::from(symbol);
                if sym >= self.obs.len() {
                    // A peer running a different alphabet is a config
                    // error; drop rather than corrupt the counts.
                    self.stats.stale_replies += 1;
                    return;
                }
                let observed = self.channel.observe_one(&mut self.obs_rng, sym);
                self.obs[observed] += 1;
                self.replies_seen += 1;
                self.stats.replies_counted += 1;
            }
            NetMsg::Shutdown => self.done = true,
            NetMsg::Hello | NetMsg::Status { .. } => {}
        }
    }

    fn idx(&self) -> usize {
        usize::try_from(self.id).unwrap_or(usize::MAX)
    }

    /// The node's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The node's current local round (0 before the first tick).
    pub fn local_round(&self) -> u64 {
        self.local_round
    }

    /// Whether a [`NetMsg::Shutdown`] has been received.
    pub fn done(&self) -> bool {
        self.done
    }

    /// The wrapped agent (for state inspection by drivers and tests).
    pub fn agent(&self) -> &A {
        &self.agent
    }

    /// The node's message-handling counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }
}

fn symbol_byte(symbol: usize) -> u8 {
    u8::try_from(symbol).unwrap_or(u8::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_pull::params::SsfParams;
    use noisy_pull::ssf::SelfStabilizingSourceFilter;
    use np_engine::channel::{Channel, ChannelKind};
    use np_engine::population::{PopulationConfig, Role};
    use np_engine::protocol::Protocol;
    use np_linalg::noise::NoiseMatrix;

    struct Sink(Vec<NodeAction>);
    impl Transport for Sink {
        fn apply(&mut self, action: NodeAction) {
            self.0.push(action);
        }
    }

    fn test_node(id: u64) -> Node<noisy_pull::ssf::SsfAgent> {
        let noise = NoiseMatrix::uniform(4, 0.1).expect("noise");
        let channel = Arc::new(Channel::new(&noise, ChannelKind::Exact));
        let config = PopulationConfig::new(8, 0, 1, 3).expect("population");
        let params = SsfParams::derive(&config, 0.1, 4.0).expect("params");
        let proto = SelfStabilizingSourceFilter::new(params);
        let streams = RoundStreams::new(1, 0);
        let idx = usize::try_from(id).expect("id");
        let agent = proto.init_agent(Role::NonSource, &mut streams.rng(idx, StreamStage::Init));
        Node::new(id, 8, 3, 1, 1_000_000, agent, channel)
    }

    #[test]
    fn first_tick_sends_h_requests_and_rearms() {
        let mut node = test_node(0);
        let mut sink = Sink(Vec::new());
        node.handle(NodeEvent::Tick, &mut sink);
        let sends = sink
            .0
            .iter()
            .filter(
                |a| matches!(a, NodeAction::Send(e) if matches!(e.msg, NetMsg::PullRequest { .. })),
            )
            .count();
        assert_eq!(sends, 3);
        assert!(matches!(
            sink.0.last(),
            Some(NodeAction::SetTick(1_000_000))
        ));
        assert_eq!(node.local_round(), 1);
    }

    #[test]
    fn requests_are_answered_with_current_display() {
        let mut node = test_node(1);
        let mut sink = Sink(Vec::new());
        node.handle(
            NodeEvent::Deliver(Envelope {
                from: 5,
                to: 1,
                msg: NetMsg::PullRequest { round: 9 },
            }),
            &mut sink,
        );
        match sink.0.as_slice() {
            [NodeAction::Send(e)] => {
                assert_eq!(e.to, 5);
                assert!(matches!(e.msg, NetMsg::PullReply { round: 9, .. }));
            }
            other => panic!("expected one reply, got {other:?}"),
        }
    }

    #[test]
    fn stale_replies_are_dropped() {
        let mut node = test_node(2);
        let mut sink = Sink(Vec::new());
        node.handle(NodeEvent::Tick, &mut sink); // opens round 1
        node.handle(
            NodeEvent::Deliver(Envelope {
                from: 3,
                to: 2,
                msg: NetMsg::PullReply {
                    round: 7,
                    symbol: 0,
                },
            }),
            &mut sink,
        );
        assert_eq!(node.stats().stale_replies, 1);
        assert_eq!(node.stats().replies_counted, 0);
    }

    #[test]
    fn empty_round_skips_update_and_reports_status() {
        let mut node = test_node(3);
        let mut sink = Sink(Vec::new());
        node.handle(NodeEvent::Tick, &mut sink); // opens round 1
        sink.0.clear();
        node.handle(NodeEvent::Tick, &mut sink); // closes round 1 (empty), opens 2
        assert_eq!(node.stats().rounds_skipped, 1);
        let status = sink
            .0
            .iter()
            .any(|a| matches!(a, NodeAction::Send(e) if e.to == DRIVER));
        assert!(status, "expected a driver-bound Status");
        assert_eq!(node.local_round(), 2);
    }

    #[test]
    fn shutdown_stops_the_node() {
        let mut node = test_node(4);
        let mut sink = Sink(Vec::new());
        node.handle(
            NodeEvent::Deliver(Envelope {
                from: DRIVER,
                to: 4,
                msg: NetMsg::Shutdown,
            }),
            &mut sink,
        );
        node.handle(NodeEvent::Tick, &mut sink);
        assert!(node.done());
        assert!(sink.0.is_empty(), "a done node is silent");
    }
}
