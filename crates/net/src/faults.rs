//! Transport-level fault injection, mirroring the engine's
//! [`np_engine::faults::FaultPlan`] vocabulary one layer down.
//!
//! Where the engine's plan corrupts *state* (memory, sources, noise), a
//! [`NetFaultPlan`] degrades the *links*: extra delivery delay, message
//! drop rates, and a full link partition with heal. Events are scheduled
//! in virtual nanoseconds and applied by the simulated-time transport
//! ([`crate::sim::SimCluster`]); the TCP router applies `Drop` and
//! `Partition`/`Heal` (delay spans would need a real-time timer wheel and
//! are rejected there).
//!
//! The self-stabilization story (Theorem 5) is exercised by
//! `Partition`/`Heal`: while partitioned, the side without sources drifts
//! on its own recycled displays; after heal, SSF must pull the whole
//! population back to the planted opinion within O(1) update intervals —
//! the bound asserted by `tests/cluster_equivalence.rs`.

use crate::{NetError, Result};

/// One transport fault taking effect at its scheduled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetFault {
    /// Add this many nanoseconds to every subsequent delivery (on top of
    /// the configured base latency and jitter).
    Delay {
        /// Extra one-way latency in nanoseconds.
        extra_ns: u64,
    },
    /// Drop each subsequent message independently with this probability
    /// (combined with the configured base drop rate; coins come from the
    /// [`np_engine::streams::StreamStage::NetDrop`] streams).
    Drop {
        /// Additional drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Partition the cluster into `{0, …, split-1}` and `{split, …, n-1}`:
    /// messages crossing the cut are dropped. Driver-bound bookkeeping is
    /// unaffected — the partition severs links, not observability.
    Partition {
        /// First node id of the second group.
        split: u64,
    },
    /// Remove the active partition; cross-cut delivery resumes.
    Heal,
    /// Reset extra delay and extra drop to zero (partitions persist until
    /// [`NetFault::Heal`]).
    Clear,
}

/// A schedule of transport faults in virtual time. Built like the
/// engine's `FaultPlan`: chain [`NetFaultPlan::at_ns`], then validate
/// against the cluster that will run it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaultPlan {
    events: Vec<(u64, NetFault)>,
}

impl NetFaultPlan {
    /// An empty plan (no transport faults).
    pub fn new() -> Self {
        NetFaultPlan::default()
    }

    /// Schedules `fault` to take effect at virtual time `at_ns`.
    #[must_use]
    pub fn at_ns(mut self, at_ns: u64, fault: NetFault) -> Self {
        self.events.push((at_ns, fault));
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, sorted by effect time (stable for ties).
    pub fn sorted_events(&self) -> Vec<(u64, NetFault)> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|&(t, _)| t);
        evs
    }

    /// Checks the plan against a cluster of `n` nodes: rates must lie in
    /// `[0, 1]`, partition splits in `1..n`, and every `Heal` must close
    /// an open partition.
    pub fn validate(&self, n: u64) -> Result<()> {
        let mut open_partition = false;
        for &(at_ns, fault) in &self.sorted_events() {
            match fault {
                NetFault::Drop { rate } => {
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(NetError::BadFaultPlan {
                            detail: format!("drop rate {rate} at t={at_ns}ns outside [0, 1]"),
                        });
                    }
                }
                NetFault::Partition { split } => {
                    if split == 0 || split >= n {
                        return Err(NetError::BadFaultPlan {
                            detail: format!(
                                "partition split {split} at t={at_ns}ns outside 1..{n}"
                            ),
                        });
                    }
                    open_partition = true;
                }
                NetFault::Heal => {
                    if !open_partition {
                        return Err(NetError::BadFaultPlan {
                            detail: format!("heal at t={at_ns}ns with no open partition"),
                        });
                    }
                    open_partition = false;
                }
                NetFault::Delay { .. } | NetFault::Clear => {}
            }
        }
        Ok(())
    }
}

/// The live link condition a transport maintains while applying a plan:
/// fold events in with [`LinkCondition::apply`], query it per message.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkCondition {
    /// Extra one-way delivery latency, nanoseconds.
    pub extra_delay_ns: u64,
    /// Extra independent drop probability.
    pub extra_drop: f64,
    /// Active partition split, if any.
    pub partition: Option<u64>,
}

impl LinkCondition {
    /// Folds one fault event into the condition.
    pub fn apply(&mut self, fault: NetFault) {
        match fault {
            NetFault::Delay { extra_ns } => self.extra_delay_ns = extra_ns,
            NetFault::Drop { rate } => self.extra_drop = rate,
            NetFault::Partition { split } => self.partition = Some(split),
            NetFault::Heal => self.partition = None,
            NetFault::Clear => {
                self.extra_delay_ns = 0;
                self.extra_drop = 0.0;
            }
        }
    }

    /// Whether a message from `from` to `to` crosses an active partition
    /// cut.
    pub fn severed(&self, from: u64, to: u64) -> bool {
        match self.partition {
            Some(split) => (from < split) != (to < split),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_plan_passes() {
        let plan = NetFaultPlan::new()
            .at_ns(1_000, NetFault::Drop { rate: 0.2 })
            .at_ns(2_000, NetFault::Partition { split: 4 })
            .at_ns(3_000, NetFault::Heal)
            .at_ns(4_000, NetFault::Clear);
        assert!(plan.validate(8).is_ok());
    }

    #[test]
    fn out_of_range_rate_is_rejected() {
        let plan = NetFaultPlan::new().at_ns(0, NetFault::Drop { rate: 1.5 });
        assert!(plan.validate(8).is_err());
    }

    #[test]
    fn bad_split_is_rejected() {
        for split in [0, 8, 9] {
            let plan = NetFaultPlan::new().at_ns(0, NetFault::Partition { split });
            assert!(plan.validate(8).is_err(), "split {split} should fail");
        }
    }

    #[test]
    fn heal_without_partition_is_rejected() {
        let plan = NetFaultPlan::new().at_ns(0, NetFault::Heal);
        assert!(plan.validate(8).is_err());
    }

    #[test]
    fn heal_ordering_uses_effect_time_not_insertion_order() {
        // Inserted out of order; sorted by time the partition opens first.
        let plan = NetFaultPlan::new()
            .at_ns(5_000, NetFault::Heal)
            .at_ns(1_000, NetFault::Partition { split: 2 });
        assert!(plan.validate(8).is_ok());
    }

    #[test]
    fn link_condition_tracks_partition() {
        let mut cond = LinkCondition::default();
        cond.apply(NetFault::Partition { split: 3 });
        assert!(cond.severed(1, 5));
        assert!(!cond.severed(0, 2));
        assert!(!cond.severed(4, 5));
        cond.apply(NetFault::Heal);
        assert!(!cond.severed(1, 5));
    }

    #[test]
    fn clear_resets_delay_and_drop_only() {
        let mut cond = LinkCondition::default();
        cond.apply(NetFault::Delay { extra_ns: 500 });
        cond.apply(NetFault::Drop { rate: 0.5 });
        cond.apply(NetFault::Partition { split: 1 });
        cond.apply(NetFault::Clear);
        assert_eq!(cond.extra_delay_ns, 0);
        assert!(cond.extra_drop.abs() < f64::EPSILON);
        assert!(cond.partition.is_some());
    }
}
