//! Cluster-level configuration and reporting, shared by both transports.

use np_engine::population::PopulationConfig;

use crate::{NetError, Result};

/// Everything a cluster run needs besides the protocol itself: the
/// population shape, the noise level, the seed, and the timing of the
/// transport. Timing fields are in nanoseconds — virtual for the
/// simulated transport, real for TCP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub n: usize,
    /// Sources preferring opinion 0.
    pub s0: usize,
    /// Sources preferring opinion 1.
    pub s1: usize,
    /// Pull requests per node per local round.
    pub h: usize,
    /// Uniform channel noise level δ.
    pub delta: f64,
    /// Master seed; in simulated time the whole run is a pure function
    /// of it.
    pub seed: u64,
    /// Local round length: the timer interval between a node's ticks.
    pub tick_ns: u64,
    /// Minimum one-way message latency.
    pub min_latency_ns: u64,
    /// Uniform jitter added on top of the minimum latency.
    pub jitter_ns: u64,
    /// Baseline independent message drop probability.
    pub drop_rate: f64,
    /// Upper bound for each node's uniformly drawn first-tick offset —
    /// this is what desynchronizes local rounds (no global barrier).
    pub stagger_ns: u64,
}

impl ClusterConfig {
    /// A config with the default timing profile: 1 ms local rounds,
    /// 50 µs base latency with 100 µs jitter, no drops, and first ticks
    /// staggered across a full round.
    pub fn new(n: usize, s0: usize, s1: usize, h: usize, delta: f64, seed: u64) -> Self {
        ClusterConfig {
            n,
            s0,
            s1,
            h,
            delta,
            seed,
            tick_ns: 1_000_000,
            min_latency_ns: 50_000,
            jitter_ns: 100_000,
            drop_rate: 0.0,
            stagger_ns: 1_000_000,
        }
    }

    /// The population this cluster instantiates (also validates `n`,
    /// `s0`, `s1`, `h`).
    pub fn population(&self) -> Result<PopulationConfig> {
        Ok(PopulationConfig::new(self.n, self.s0, self.s1, self.h)?)
    }

    /// Validates the transport timing: a round must be long enough that a
    /// fault-free request/reply pair lands before the requester's next
    /// tick, otherwise every observation would arrive stale and the
    /// protocol would never gather evidence.
    pub fn validate(&self) -> Result<()> {
        if self.tick_ns == 0 {
            return Err(NetError::BadConfig {
                detail: "tick_ns must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.drop_rate) {
            return Err(NetError::BadConfig {
                detail: format!("drop rate {} outside [0, 1]", self.drop_rate),
            });
        }
        let round_trip = 2 * (self.min_latency_ns + self.jitter_ns);
        if round_trip > self.tick_ns {
            return Err(NetError::BadConfig {
                detail: format!(
                    "worst-case round trip {round_trip}ns exceeds tick {}ns: every reply \
                     would arrive stale; lengthen tick_ns or tighten latency/jitter",
                    self.tick_ns
                ),
            });
        }
        Ok(())
    }
}

/// The outcome of a cluster run, transport-independent. `elapsed_ms` is
/// virtual time for the simulated transport and wall-clock time for TCP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterReport {
    /// Number of nodes.
    pub n: usize,
    /// Pull requests per node per local round.
    pub h: usize,
    /// Master seed.
    pub seed: u64,
    /// The highest local round any node completed.
    pub rounds: u64,
    /// Whether every node held the planted opinion when the run stopped.
    pub converged: bool,
    /// The local round at which the population first became all-correct.
    pub convergence_round: Option<u64>,
    /// Elapsed time in milliseconds (virtual or wall-clock).
    pub elapsed_ms: f64,
    /// Peer-to-peer messages put on the wire (requests + replies;
    /// driver-bound bookkeeping excluded).
    pub messages_total: u64,
    /// Messages dropped by the transport (faults, partitions, drop rate).
    pub drops_total: u64,
    /// Replies that arrived after their round closed, across all nodes.
    pub stale_total: u64,
    /// Local rounds closed with zero replies, across all nodes.
    pub skipped_total: u64,
    /// Nodes holding the planted opinion at stop time.
    pub final_correct: usize,
    /// Nodes with a formed weak opinion at stop time.
    pub weak_formed: usize,
    /// Nodes whose weak opinion matches the planted one at stop time.
    pub weak_correct: usize,
    /// FNV-1a digest of the final cluster state (rounds, opinions,
    /// message counters); byte-identical runs have equal digests.
    pub digest: u64,
}

/// FNV-1a folding used for run digests — same constants as the CLI's
/// outcome digest, so two equal digests mean equal byte streams.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timing_is_valid() {
        let cfg = ClusterConfig::new(64, 0, 1, 4, 0.1, 7);
        assert!(cfg.validate().is_ok());
        assert!(cfg.population().is_ok());
    }

    #[test]
    fn stale_guaranteeing_timing_is_rejected() {
        let mut cfg = ClusterConfig::new(64, 0, 1, 4, 0.1, 7);
        cfg.min_latency_ns = cfg.tick_ns;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_drop_rate_is_rejected() {
        let mut cfg = ClusterConfig::new(64, 0, 1, 4, 0.1, 7);
        cfg.drop_rate = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.update_u64(1);
        a.update_u64(2);
        let mut b = Digest::new();
        b.update_u64(2);
        b.update_u64(1);
        assert_ne!(a.value(), b.value());
    }
}
