//! Wire messages and the length-prefixed frame codec.
//!
//! A frame is `u32` little-endian body length followed by the body; the
//! body is a one-byte message tag followed by little-endian integer
//! fields. The format is byte-exact and dependency-free so both
//! transports (and the tests) share one codec:
//!
//! | tag | message       | body fields after the tag                     |
//! |-----|---------------|-----------------------------------------------|
//! | 0   | `Hello`       | `from:u64`                                    |
//! | 1   | `PullRequest` | `from:u64 to:u64 round:u64`                   |
//! | 2   | `PullReply`   | `from:u64 to:u64 round:u64 symbol:u8`         |
//! | 3   | `Status`      | `from:u64 round:u64 opinion:u8 weak:u8`       |
//! | 4   | `Shutdown`    | —                                             |
//!
//! `PullReply::symbol` is the *displayed* symbol of the replier; channel
//! noise is applied by the receiving node, never on the wire — the wire
//! is lossless, the model's noise lives in [`crate::node`].

use crate::{NetError, Result};

/// A protocol-level message exchanged between nodes (or between a node
/// and the cluster driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMsg {
    /// A node announcing itself to the router (TCP transport only).
    Hello,
    /// "Send me what you display": one of the `h` pull samples of the
    /// sender's local round `round`.
    PullRequest {
        /// The requester's local round, echoed back in the reply so the
        /// requester can drop replies that arrive too late.
        round: u64,
    },
    /// The answer to a [`NetMsg::PullRequest`]: the replier's currently
    /// displayed symbol, *before* channel noise.
    PullReply {
        /// The requester's local round, echoed from the request.
        round: u64,
        /// The displayed symbol (alphabet index, fits in a byte).
        symbol: u8,
    },
    /// A node reporting its state to the driver after closing a local
    /// round (used for convergence detection; never routed to peers).
    Status {
        /// The local round just closed.
        round: u64,
        /// The node's output opinion (0 or 1).
        opinion: u8,
        /// The node's weak opinion: 0, 1, or [`WEAK_NONE`] if unformed.
        weak: u8,
    },
    /// Driver-initiated shutdown; a node exits its event loop on receipt.
    Shutdown,
}

/// The `weak` byte of [`NetMsg::Status`] when no weak opinion exists yet.
pub const WEAK_NONE: u8 = 0xff;

/// An addressed message: who sent it and who should receive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node id.
    pub from: u64,
    /// Destination node id (ignored for `Hello`/`Status`, which always go
    /// to the driver).
    pub to: u64,
    /// The message payload.
    pub msg: NetMsg,
}

const TAG_HELLO: u8 = 0;
const TAG_PULL_REQUEST: u8 = 1;
const TAG_PULL_REPLY: u8 = 2;
const TAG_STATUS: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn take_u64(body: &[u8], at: &mut usize) -> Result<u64> {
    let end = *at + 8;
    let bytes = body.get(*at..end).ok_or_else(|| NetError::BadFrame {
        detail: format!("truncated u64 at offset {at}"),
    })?;
    *at = end;
    let mut le = [0u8; 8];
    le.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(le))
}

fn take_u8(body: &[u8], at: &mut usize) -> Result<u8> {
    let b = *body.get(*at).ok_or_else(|| NetError::BadFrame {
        detail: format!("truncated u8 at offset {at}"),
    })?;
    *at += 1;
    Ok(b)
}

impl Envelope {
    /// Appends this envelope to `buf` as one length-prefixed frame.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let len_at = buf.len();
        buf.extend_from_slice(&[0; 4]);
        match self.msg {
            NetMsg::Hello => {
                buf.push(TAG_HELLO);
                put_u64(buf, self.from);
            }
            NetMsg::PullRequest { round } => {
                buf.push(TAG_PULL_REQUEST);
                put_u64(buf, self.from);
                put_u64(buf, self.to);
                put_u64(buf, round);
            }
            NetMsg::PullReply { round, symbol } => {
                buf.push(TAG_PULL_REPLY);
                put_u64(buf, self.from);
                put_u64(buf, self.to);
                put_u64(buf, round);
                buf.push(symbol);
            }
            NetMsg::Status {
                round,
                opinion,
                weak,
            } => {
                buf.push(TAG_STATUS);
                put_u64(buf, self.from);
                put_u64(buf, round);
                buf.push(opinion);
                buf.push(weak);
            }
            NetMsg::Shutdown => {
                buf.push(TAG_SHUTDOWN);
            }
        }
        let body_len = buf.len() - len_at - 4;
        let body_len = u32::try_from(body_len).unwrap_or(u32::MAX);
        buf[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Decodes one frame *body* (the bytes after the length prefix).
    pub fn decode_body(body: &[u8]) -> Result<Envelope> {
        let mut at = 0;
        let tag = take_u8(body, &mut at)?;
        let env = match tag {
            TAG_HELLO => Envelope {
                from: take_u64(body, &mut at)?,
                to: 0,
                msg: NetMsg::Hello,
            },
            TAG_PULL_REQUEST => {
                let from = take_u64(body, &mut at)?;
                let to = take_u64(body, &mut at)?;
                let round = take_u64(body, &mut at)?;
                Envelope {
                    from,
                    to,
                    msg: NetMsg::PullRequest { round },
                }
            }
            TAG_PULL_REPLY => {
                let from = take_u64(body, &mut at)?;
                let to = take_u64(body, &mut at)?;
                let round = take_u64(body, &mut at)?;
                let symbol = take_u8(body, &mut at)?;
                Envelope {
                    from,
                    to,
                    msg: NetMsg::PullReply { round, symbol },
                }
            }
            TAG_STATUS => {
                let from = take_u64(body, &mut at)?;
                let round = take_u64(body, &mut at)?;
                let opinion = take_u8(body, &mut at)?;
                let weak = take_u8(body, &mut at)?;
                Envelope {
                    from,
                    to: 0,
                    msg: NetMsg::Status {
                        round,
                        opinion,
                        weak,
                    },
                }
            }
            TAG_SHUTDOWN => Envelope {
                from: 0,
                to: 0,
                msg: NetMsg::Shutdown,
            },
            other => {
                return Err(NetError::BadFrame {
                    detail: format!("unknown message tag {other}"),
                })
            }
        };
        if at != body.len() {
            return Err(NetError::BadFrame {
                detail: format!("{} trailing bytes after tag {tag}", body.len() - at),
            });
        }
        Ok(env)
    }
}

/// Incremental frame extractor for a TCP byte stream: feed it arbitrary
/// chunks, pull out complete envelopes as they become available. Partial
/// frames are buffered across reads.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    at: usize,
}

/// Frames larger than this are rejected as corrupt — the largest real
/// message body is a `PullReply` at 26 bytes, so any length prefix beyond
/// this indicates a desynchronized or hostile stream.
pub const MAX_FRAME_BODY: usize = 256;

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes received from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: drop the bytes of already-consumed
        // frames so the buffer stays bounded by one partial frame.
        if self.at > 0 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete envelope, or `None` if more bytes are
    /// needed. Errors are sticky in the sense that a bad frame leaves the
    /// stream position undefined; callers drop the connection.
    pub fn next_envelope(&mut self) -> Result<Option<Envelope>> {
        let avail = self.buf.len() - self.at;
        if avail < 4 {
            return Ok(None);
        }
        let mut le = [0u8; 4];
        le.copy_from_slice(&self.buf[self.at..self.at + 4]);
        let body_len = u32::from_le_bytes(le) as usize;
        if body_len > MAX_FRAME_BODY {
            return Err(NetError::BadFrame {
                detail: format!("frame body of {body_len} bytes exceeds {MAX_FRAME_BODY}"),
            });
        }
        if avail < 4 + body_len {
            return Ok(None);
        }
        let body_start = self.at + 4;
        let env = Envelope::decode_body(&self.buf[body_start..body_start + body_len])?;
        self.at = body_start + body_len;
        Ok(Some(env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(env: Envelope) {
        let mut buf = Vec::new();
        env.encode(&mut buf);
        let mut reader = FrameReader::new();
        reader.push(&buf);
        let got = reader
            .next_envelope()
            .expect("decode")
            .expect("complete frame");
        assert_eq!(got, env);
        assert!(reader.next_envelope().expect("decode").is_none());
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Envelope {
            from: 7,
            to: 0,
            msg: NetMsg::Hello,
        });
        roundtrip(Envelope {
            from: 3,
            to: 11,
            msg: NetMsg::PullRequest { round: 42 },
        });
        roundtrip(Envelope {
            from: 11,
            to: 3,
            msg: NetMsg::PullReply {
                round: 42,
                symbol: 2,
            },
        });
        roundtrip(Envelope {
            from: 5,
            to: 0,
            msg: NetMsg::Status {
                round: 9,
                opinion: 1,
                weak: WEAK_NONE,
            },
        });
        roundtrip(Envelope {
            from: 0,
            to: 0,
            msg: NetMsg::Shutdown,
        });
    }

    #[test]
    fn partial_frames_buffer_across_reads() {
        let env = Envelope {
            from: 1,
            to: 2,
            msg: NetMsg::PullReply {
                round: 100,
                symbol: 3,
            },
        };
        let mut buf = Vec::new();
        env.encode(&mut buf);
        env.encode(&mut buf); // two frames back to back

        let mut reader = FrameReader::new();
        for chunk in buf.chunks(3) {
            reader.push(chunk);
        }
        assert_eq!(reader.next_envelope().expect("decode"), Some(env));
        assert_eq!(reader.next_envelope().expect("decode"), Some(env));
        assert_eq!(reader.next_envelope().expect("decode"), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut reader = FrameReader::new();
        reader.push(&u32::MAX.to_le_bytes());
        assert!(reader.next_envelope().is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(Envelope::decode_body(&[200]).is_err());
    }

    #[test]
    fn truncated_body_is_rejected() {
        assert!(Envelope::decode_body(&[TAG_PULL_REQUEST, 1, 2, 3]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        Envelope {
            from: 0,
            to: 0,
            msg: NetMsg::Shutdown,
        }
        .encode(&mut buf);
        // Graft a junk byte into the body and fix the length prefix.
        buf.push(9);
        let body_len = (buf.len() - 4) as u32;
        buf[0..4].copy_from_slice(&body_len.to_le_bytes());
        assert!(Envelope::decode_body(&buf[4..]).is_err());
    }
}
