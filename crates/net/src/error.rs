use std::fmt;

/// Errors produced by the message-passing runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A cluster configuration is inconsistent (zero nodes, `h` of zero,
    /// timing that cannot deliver a reply within a tick, …).
    BadConfig {
        /// Description of the violation.
        detail: String,
    },
    /// A [`crate::faults::NetFaultPlan`] is malformed: out-of-range rate,
    /// partition split outside `1..n`, or a heal with no open partition.
    BadFaultPlan {
        /// Description of the violation.
        detail: String,
    },
    /// A wire frame could not be decoded: truncated body, unknown message
    /// tag, or an out-of-range field.
    BadFrame {
        /// Description of the violation.
        detail: String,
    },
    /// An error bubbled up from the engine layer (population or noise
    /// matrix construction).
    Engine(np_engine::EngineError),
    /// An error bubbled up from noise-matrix construction.
    Linalg(np_linalg::LinalgError),
    /// A socket operation of the TCP transport failed.
    Io(std::io::Error),
    /// A node or router thread of the TCP transport panicked or exited
    /// without reporting a result.
    Thread {
        /// Which thread failed.
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadConfig { detail } => write!(f, "bad cluster configuration: {detail}"),
            NetError::BadFaultPlan { detail } => write!(f, "bad net fault plan: {detail}"),
            NetError::BadFrame { detail } => write!(f, "bad wire frame: {detail}"),
            NetError::Engine(e) => write!(f, "engine error: {e}"),
            NetError::Linalg(e) => write!(f, "noise-matrix error: {e}"),
            NetError::Io(e) => write!(f, "transport i/o error: {e}"),
            NetError::Thread { detail } => write!(f, "cluster thread failure: {detail}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Engine(e) => Some(e),
            NetError::Linalg(e) => Some(e),
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<np_engine::EngineError> for NetError {
    fn from(e: np_engine::EngineError) -> Self {
        NetError::Engine(e)
    }
}

impl From<np_linalg::LinalgError> for NetError {
    fn from(e: np_linalg::LinalgError) -> Self {
        NetError::Linalg(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}
