//! The deterministic simulated-time transport.
//!
//! A [`SimCluster`] runs every node in one thread under a virtual clock:
//! a binary heap of `(virtual_ns, seq)`-ordered events delivers messages
//! and timer ticks in a total order that is a pure function of the
//! configuration and seed. All transport randomness — latency jitter,
//! drop coins, first-tick stagger — comes from the engine's stream
//! machinery addressed by `(seed, sender_round, sender, stage)` with the
//! net stages ([`StreamStage::NetDelay`], [`StreamStage::NetDrop`]), so
//! repeated runs are **byte-identical**: equal digests, equal reports.
//! This is the transport CI gates on and the one cross-validated
//! distributionally against the round engine in
//! `tests/cluster_equivalence.rs`.
//!
//! Asynchrony is real despite the determinism: nodes' first ticks are
//! staggered across a round, so local rounds interleave arbitrarily and
//! a reply may carry a display from the replier's previous or next local
//! round — exactly the regime Theorem 5's self-stabilization argument
//! covers, with none of the engine's global barrier.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use np_engine::channel::{Channel, ChannelKind};
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::{RoundStreams, StreamRng, StreamStage};
use np_linalg::noise::NoiseMatrix;
use rand::Rng;

use crate::cluster::{ClusterConfig, ClusterReport, Digest};
use crate::faults::{LinkCondition, NetFault, NetFaultPlan};
use crate::msg::{Envelope, NetMsg, WEAK_NONE};
use crate::node::{Node, NodeAction, NodeEvent, Transport, DRIVER};
use crate::{NetError, Result};

#[derive(Debug, Clone, Copy)]
enum SimEventKind {
    Deliver(Envelope),
    Tick(usize),
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at_ns: u64,
    seq: u64,
    kind: SimEventKind,
}

// Ordering is by (time, insertion sequence) only; the heap is a
// min-heap via `Reverse`-free manual reversal below.
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the std max-heap pops the *earliest* event.
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

#[derive(Debug, Default)]
struct ActionBuf(Vec<NodeAction>);

impl Transport for ActionBuf {
    fn apply(&mut self, action: NodeAction) {
        self.0.push(action);
    }
}

/// A full cluster under simulated time. Construct with
/// [`SimCluster::new`], drive with [`SimCluster::run_until_round`] /
/// [`SimCluster::run_until_correct`], then read [`SimCluster::report`].
#[derive(Debug)]
pub struct SimCluster<A: AgentState> {
    nodes: Vec<Node<A>>,
    heap: BinaryHeap<Scheduled>,
    now_ns: u64,
    seq: u64,
    cfg: ClusterConfig,
    correct_byte: u8,
    opinions: Vec<u8>,
    weaks: Vec<u8>,
    num_correct: usize,
    max_closed_round: u64,
    first_all_correct: Option<u64>,
    messages_total: u64,
    drops_total: u64,
    cond: LinkCondition,
    fault_events: Vec<(u64, NetFault)>,
    next_fault: usize,
    delay_rngs: Vec<StreamRng>,
    drop_rngs: Vec<StreamRng>,
}

impl<A: AgentState> SimCluster<A> {
    /// Builds the cluster: validates config and fault plan, instantiates
    /// one node per population member (roles and initial states drawn
    /// from the same round-0 streams the engine uses), and staggers each
    /// node's first tick uniformly over `cfg.stagger_ns`.
    pub fn new<P: Protocol<Agent = A>>(
        cfg: &ClusterConfig,
        protocol: &P,
        faults: &NetFaultPlan,
    ) -> Result<Self> {
        cfg.validate()?;
        let pop = cfg.population()?;
        let n64 = u64::try_from(cfg.n).unwrap_or(u64::MAX);
        faults.validate(n64)?;
        let noise = NoiseMatrix::uniform(protocol.alphabet_size(), cfg.delta)?;
        let channel = Arc::new(Channel::new(&noise, ChannelKind::Exact));
        let correct_byte = pop.correct_opinion().as_byte();

        let boot = RoundStreams::new(cfg.seed, 0);
        let mut nodes = Vec::with_capacity(cfg.n);
        let mut opinions = Vec::with_capacity(cfg.n);
        let mut weaks = Vec::with_capacity(cfg.n);
        let mut delay_rngs = Vec::with_capacity(cfg.n);
        let mut drop_rngs = Vec::with_capacity(cfg.n);
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for i in 0..cfg.n {
            let agent = protocol.init_agent(pop.role_of(i), &mut boot.rng(i, StreamStage::Init));
            opinions.push(agent.opinion().as_byte());
            weaks.push(agent.weak_opinion().map_or(WEAK_NONE, |w| w.as_byte()));
            let id = u64::try_from(i).unwrap_or(u64::MAX);
            nodes.push(Node::new(
                id,
                n64,
                cfg.h,
                cfg.seed,
                cfg.tick_ns,
                agent,
                Arc::clone(&channel),
            ));
            let mut delay = boot.rng(i, StreamStage::NetDelay);
            let offset = if cfg.stagger_ns > 0 {
                delay.gen_range(0..=cfg.stagger_ns)
            } else {
                0
            };
            heap.push(Scheduled {
                at_ns: offset,
                seq,
                kind: SimEventKind::Tick(i),
            });
            seq += 1;
            delay_rngs.push(delay);
            drop_rngs.push(boot.rng(i, StreamStage::NetDrop));
        }
        let num_correct = opinions.iter().filter(|&&o| o == correct_byte).count();
        Ok(SimCluster {
            nodes,
            heap,
            now_ns: 0,
            seq,
            cfg: *cfg,
            correct_byte,
            opinions,
            weaks,
            num_correct,
            max_closed_round: 0,
            first_all_correct: None,
            messages_total: 0,
            drops_total: 0,
            cond: LinkCondition::default(),
            fault_events: faults.sorted_events(),
            next_fault: 0,
            delay_rngs,
            drop_rngs,
        })
    }

    fn schedule(&mut self, at_ns: u64, kind: SimEventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at_ns, seq, kind });
    }

    fn apply_due_faults(&mut self) {
        while self.next_fault < self.fault_events.len()
            && self.fault_events[self.next_fault].0 <= self.now_ns
        {
            let (_, fault) = self.fault_events[self.next_fault];
            self.cond.apply(fault);
            self.next_fault += 1;
        }
    }

    /// Processes the earliest pending event. Returns the node index if
    /// the event was that node's tick, `Ok(None)` for a delivery.
    fn process_one(&mut self) -> Result<Option<usize>> {
        let Some(ev) = self.heap.pop() else {
            return Err(NetError::BadConfig {
                detail: "event heap drained: every node stopped re-arming its timer".into(),
            });
        };
        self.now_ns = ev.at_ns;
        self.apply_due_faults();
        match ev.kind {
            SimEventKind::Deliver(env) => {
                let to = usize::try_from(env.to).unwrap_or(usize::MAX);
                let Some(node) = self.nodes.get_mut(to) else {
                    return Err(NetError::BadConfig {
                        detail: format!("delivery to unknown node {to}"),
                    });
                };
                let mut buf = ActionBuf::default();
                node.handle(NodeEvent::Deliver(env), &mut buf);
                self.route(to, buf);
                Ok(None)
            }
            SimEventKind::Tick(i) => {
                let mut buf = ActionBuf::default();
                self.nodes[i].handle(NodeEvent::Tick, &mut buf);
                // The node just opened a new local round: move its
                // transport streams to the new round coordinate.
                let round = self.nodes[i].local_round();
                let streams = RoundStreams::new(self.cfg.seed, round);
                self.delay_rngs[i] = streams.rng(i, StreamStage::NetDelay);
                self.drop_rngs[i] = streams.rng(i, StreamStage::NetDrop);
                self.route(i, buf);
                Ok(Some(i))
            }
        }
    }

    fn route(&mut self, from: usize, buf: ActionBuf) {
        for action in buf.0 {
            match action {
                NodeAction::SetTick(ns) => {
                    self.schedule(self.now_ns + ns, SimEventKind::Tick(from));
                }
                NodeAction::Send(env) if env.to == DRIVER => self.on_status(env),
                NodeAction::Send(env) => {
                    self.messages_total += 1;
                    if self.cond.severed(env.from, env.to) {
                        self.drops_total += 1;
                        continue;
                    }
                    let rate = (self.cfg.drop_rate + self.cond.extra_drop).min(1.0);
                    if rate > 0.0 && self.drop_rngs[from].gen_bool(rate) {
                        self.drops_total += 1;
                        continue;
                    }
                    let jitter = if self.cfg.jitter_ns > 0 {
                        self.delay_rngs[from].gen_range(0..=self.cfg.jitter_ns)
                    } else {
                        0
                    };
                    let at =
                        self.now_ns + self.cfg.min_latency_ns + jitter + self.cond.extra_delay_ns;
                    self.schedule(at, SimEventKind::Deliver(env));
                }
            }
        }
    }

    fn on_status(&mut self, env: Envelope) {
        let NetMsg::Status {
            round,
            opinion,
            weak,
        } = env.msg
        else {
            return;
        };
        let i = usize::try_from(env.from).unwrap_or(usize::MAX);
        if i >= self.opinions.len() {
            return;
        }
        let was = self.opinions[i] == self.correct_byte;
        self.opinions[i] = opinion;
        self.weaks[i] = weak;
        let is = opinion == self.correct_byte;
        match (was, is) {
            (false, true) => self.num_correct += 1,
            (true, false) => self.num_correct -= 1,
            _ => {}
        }
        self.max_closed_round = self.max_closed_round.max(round);
        if self.num_correct == self.cfg.n && self.first_all_correct.is_none() {
            self.first_all_correct = Some(round);
        }
    }

    /// Runs until every node has *closed* local round `round` (i.e. its
    /// open round exceeds it).
    pub fn run_until_round(&mut self, round: u64) -> Result<()> {
        let mut remaining = self
            .nodes
            .iter()
            .filter(|nd| nd.local_round() <= round)
            .count();
        while remaining > 0 {
            if let Some(i) = self.process_one()? {
                if self.nodes[i].local_round() == round + 1 {
                    remaining -= 1;
                }
            }
        }
        Ok(())
    }

    /// Runs until every node holds the planted opinion, or until every
    /// node has closed `max_round` local rounds. Returns the local round
    /// at which the population became all-correct, `None` on budget
    /// exhaustion.
    pub fn run_until_correct(&mut self, max_round: u64) -> Result<Option<u64>> {
        if self.num_correct == self.cfg.n {
            return Ok(Some(self.max_closed_round));
        }
        let mut remaining = self
            .nodes
            .iter()
            .filter(|nd| nd.local_round() <= max_round)
            .count();
        while remaining > 0 {
            if let Some(i) = self.process_one()? {
                if self.nodes[i].local_round() == max_round + 1 {
                    remaining -= 1;
                }
            }
            if self.num_correct == self.cfg.n {
                return Ok(Some(self.max_closed_round));
            }
        }
        Ok(None)
    }

    /// Whether every node currently holds the planted opinion.
    pub fn all_correct(&self) -> bool {
        self.num_correct == self.cfg.n
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Peer-to-peer messages put on the wire so far.
    pub fn messages_total(&self) -> u64 {
        self.messages_total
    }

    /// The highest local round any node has closed (per Status reports).
    pub fn max_closed_round(&self) -> u64 {
        self.max_closed_round
    }

    /// FNV-1a digest of the entire observable cluster state: per-node
    /// rounds, opinions, weak opinions and message counters, plus the
    /// virtual clock and transport totals. Two runs with equal configs
    /// and seeds produce equal digests — the CI determinism gate.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.update_u64(self.now_ns);
        d.update_u64(self.messages_total);
        d.update_u64(self.drops_total);
        for (i, node) in self.nodes.iter().enumerate() {
            d.update_u64(node.local_round());
            d.update(&[self.opinions[i], self.weaks[i]]);
            let st = node.stats();
            d.update_u64(st.rounds_skipped);
            d.update_u64(st.stale_replies);
            d.update_u64(st.replies_counted);
        }
        d.value()
    }

    /// Assembles the transport-independent run report.
    pub fn report(&self) -> ClusterReport {
        let (stale_total, skipped_total) = self.nodes.iter().fold((0, 0), |(st, sk), nd| {
            let s = nd.stats();
            (st + s.stale_replies, sk + s.rounds_skipped)
        });
        let weak_formed = self.weaks.iter().filter(|&&w| w != WEAK_NONE).count();
        let weak_correct = self
            .weaks
            .iter()
            .filter(|&&w| w == self.correct_byte)
            .count();
        ClusterReport {
            n: self.cfg.n,
            h: self.cfg.h,
            seed: self.cfg.seed,
            rounds: self.max_closed_round,
            converged: self.all_correct(),
            convergence_round: self.first_all_correct,
            elapsed_ms: self.now_ns as f64 / 1e6,
            messages_total: self.messages_total,
            drops_total: self.drops_total,
            stale_total,
            skipped_total,
            final_correct: self.num_correct,
            weak_formed,
            weak_correct,
            digest: self.digest(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_pull::params::SsfParams;
    use noisy_pull::ssf::{SelfStabilizingSourceFilter, SsfAgent};
    use np_engine::population::PopulationConfig;

    fn ssf_cluster(n: usize, seed: u64, faults: &NetFaultPlan) -> (SimCluster<SsfAgent>, u64) {
        let cfg = ClusterConfig::new(n, 0, 1, 8, 0.05, seed);
        let pop = PopulationConfig::new(n, 0, 1, 8).expect("population");
        let params = SsfParams::derive(&pop, 0.05, 1.0).expect("params");
        let interval = params.update_interval();
        let proto = SelfStabilizingSourceFilter::new(params);
        let cluster = SimCluster::new(&cfg, &proto, faults).expect("cluster");
        (cluster, interval)
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let none = NetFaultPlan::new();
        let (mut a, _) = ssf_cluster(32, 11, &none);
        let (mut b, _) = ssf_cluster(32, 11, &none);
        a.run_until_round(40).expect("run a");
        b.run_until_round(40).expect("run b");
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn different_seeds_diverge() {
        let none = NetFaultPlan::new();
        let (mut a, _) = ssf_cluster(32, 11, &none);
        let (mut b, _) = ssf_cluster(32, 12, &none);
        a.run_until_round(40).expect("run a");
        b.run_until_round(40).expect("run b");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn ssf_converges_under_simulated_asynchrony() {
        let none = NetFaultPlan::new();
        let (mut cluster, interval) = ssf_cluster(64, 3, &none);
        let budget = interval * 40;
        let round = cluster.run_until_correct(budget).expect("run");
        assert!(
            round.is_some(),
            "SSF failed to converge within {budget} local rounds"
        );
        let report = cluster.report();
        assert!(report.converged);
        assert!(report.messages_total > 0);
    }

    #[test]
    fn drops_are_counted_under_a_drop_fault() {
        let faults = NetFaultPlan::new().at_ns(0, NetFault::Drop { rate: 0.5 });
        let (mut cluster, _) = ssf_cluster(16, 5, &faults);
        cluster.run_until_round(10).expect("run");
        let report = cluster.report();
        assert!(report.drops_total > 0, "expected dropped messages");
        // Dropped requests starve some rounds entirely only at extreme
        // rates; at 0.5 we still expect most replies to arrive.
        assert!(report.messages_total > report.drops_total);
    }

    #[test]
    fn partition_severs_cross_cut_traffic_only() {
        let faults = NetFaultPlan::new().at_ns(0, NetFault::Partition { split: 8 });
        let (mut cluster, _) = ssf_cluster(16, 9, &faults);
        cluster.run_until_round(10).expect("run");
        let report = cluster.report();
        assert!(report.drops_total > 0, "cross-cut messages must be dropped");
        assert!(
            report.messages_total > report.drops_total,
            "intra-group messages must still flow"
        );
    }

    #[test]
    fn event_heap_never_drains_mid_run() {
        let none = NetFaultPlan::new();
        let (mut cluster, _) = ssf_cluster(8, 1, &none);
        assert!(cluster.run_until_round(5).is_ok());
        assert!(cluster.now_ns() > 0);
    }
}
