//! The length-prefixed TCP transport: real threads, real sockets, real
//! time.
//!
//! Topology is hub-and-spoke inside one process: every node runs in its
//! own thread with a blocking socket to a central router; the router
//! forwards frames between nodes, applies transport faults
//! ([`NetFault::Drop`] / [`NetFault::Partition`] / [`NetFault::Heal`] —
//! delay spans need a timer wheel and are rejected here), intercepts
//! driver-bound [`NetMsg::Status`] reports for convergence detection, and
//! broadcasts [`NetMsg::Shutdown`] when the run is over.
//!
//! What this mode deliberately gives up is determinism: tick timers are
//! wall-clock deadlines ([`crate::clock`]) and message interleaving is
//! whatever the OS scheduler produces, so two runs with the same seed
//! will differ. What it keeps is the protocol's stream discipline — every
//! *protocol* draw still comes from `(seed, round, node, stage)` streams,
//! so only the event *order* is environmental, exactly the asynchrony
//! Theorem 5's self-stabilization claim is about. Byte-identical replay
//! lives in [`crate::sim`]; this transport answers "does it survive a
//! real network stack".

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use np_engine::channel::{Channel, ChannelKind};
use np_engine::opinion::Opinion;
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::{RoundStreams, StreamStage};
use np_linalg::noise::NoiseMatrix;
use rand::Rng;
use std::sync::Arc;

use crate::clock::{Deadline, WallClock};
use crate::cluster::{ClusterConfig, ClusterReport, Digest};
use crate::faults::{LinkCondition, NetFault, NetFaultPlan};
use crate::msg::{Envelope, FrameReader, NetMsg, WEAK_NONE};
use crate::node::{Node, NodeAction, NodeEvent, NodeStats, Transport, DRIVER};
use crate::{NetError, Result};

/// The per-node action sink of the TCP transport: frames are buffered
/// into `out` (flushed by the node loop after each event), `SetTick`
/// moves the wall-clock deadline.
#[derive(Debug)]
struct TcpPort {
    out: Vec<u8>,
    deadline: Deadline,
}

impl Transport for TcpPort {
    fn apply(&mut self, action: NodeAction) {
        match action {
            NodeAction::Send(env) => env.encode(&mut self.out),
            NodeAction::SetTick(ns) => self.deadline = Deadline::after_ns(ns),
        }
    }
}

/// What a node thread reports back when it exits.
#[derive(Debug, Clone, Copy)]
struct NodeExit {
    id: u64,
    round: u64,
    opinion: u8,
    weak: u8,
    stats: NodeStats,
}

fn node_thread<A: AgentState>(
    mut node: Node<A>,
    addr: std::net::SocketAddr,
    first_tick_ns: u64,
) -> Result<NodeExit> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut port = TcpPort {
        out: Vec::with_capacity(1024),
        deadline: Deadline::after_ns(first_tick_ns),
    };
    // Announce identity so the router can bind this connection's write
    // half to the node id.
    Envelope {
        from: node.id(),
        to: DRIVER,
        msg: NetMsg::Hello,
    }
    .encode(&mut port.out);

    let mut frames = FrameReader::new();
    let mut read_buf = [0u8; 4096];
    while !node.done() {
        if !port.out.is_empty() {
            stream.write_all(&port.out)?;
            port.out.clear();
        }
        match port.deadline.remaining() {
            None => node.handle(NodeEvent::Tick, &mut port),
            Some(rem) => {
                stream.set_read_timeout(Some(rem.max(Duration::from_micros(100))))?;
                match stream.read(&mut read_buf) {
                    Ok(0) => break, // router hung up
                    Ok(k) => {
                        frames.push(&read_buf[..k]);
                        while let Some(env) = frames.next_envelope()? {
                            node.handle(NodeEvent::Deliver(env), &mut port);
                        }
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    }
                    Err(e) => return Err(NetError::Io(e)),
                }
            }
        }
    }
    if !port.out.is_empty() {
        stream.write_all(&port.out)?;
    }
    Ok(NodeExit {
        id: node.id(),
        round: node.local_round().saturating_sub(1),
        opinion: node.agent().opinion().as_byte(),
        weak: node
            .agent()
            .weak_opinion()
            .map_or(WEAK_NONE, Opinion::as_byte),
        stats: node.stats(),
    })
}

enum RouterMsg {
    Register(u64, TcpStream),
    Env(Envelope),
    ReaderDone,
}

fn reader_thread(mut stream: TcpStream, tx: mpsc::Sender<RouterMsg>) {
    // Blocking reads; identity arrives in the first (Hello) frame.
    let _ = stream.set_read_timeout(None);
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => {
                frames.push(&buf[..k]);
                loop {
                    match frames.next_envelope() {
                        Ok(Some(env)) => {
                            if env.msg == NetMsg::Hello {
                                let Ok(clone) = stream.try_clone() else { break };
                                if tx.send(RouterMsg::Register(env.from, clone)).is_err() {
                                    return;
                                }
                            } else if tx.send(RouterMsg::Env(env)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return, // corrupt stream; drop connection
                    }
                }
            }
        }
    }
    let _ = tx.send(RouterMsg::ReaderDone);
}

/// Runs a full cluster over TCP: spawns one thread (plus one router-side
/// reader) per node on loopback, injects the sources, routes pull traffic
/// until every node reports the planted opinion or every node passes
/// `budget_rounds`, then shuts the cluster down and joins every thread.
///
/// The returned report's `elapsed_ms` is the *wall-clock* time at which
/// the population was first observed all-correct (or at shutdown if it
/// never was).
pub fn run_tcp_cluster<P>(
    cfg: &ClusterConfig,
    protocol: &P,
    faults: &NetFaultPlan,
    budget_rounds: u64,
) -> Result<ClusterReport>
where
    P: Protocol,
    P::Agent: 'static,
{
    cfg.validate()?;
    let pop = cfg.population()?;
    let n64 = u64::try_from(cfg.n).unwrap_or(u64::MAX);
    faults.validate(n64)?;
    let fault_events = faults.sorted_events();
    if fault_events
        .iter()
        .any(|(_, f)| matches!(f, NetFault::Delay { .. }))
    {
        return Err(NetError::BadFaultPlan {
            detail: "delay spans are not supported by the TCP router (use the simulated \
                     transport, whose scheduler owns time)"
                .into(),
        });
    }
    let noise = NoiseMatrix::uniform(protocol.alphabet_size(), cfg.delta)?;
    let channel = Arc::new(Channel::new(&noise, ChannelKind::Exact));
    let correct_byte = pop.correct_opinion().as_byte();

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;

    // Node threads.
    let boot = RoundStreams::new(cfg.seed, 0);
    let mut node_handles = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        let agent = protocol.init_agent(pop.role_of(i), &mut boot.rng(i, StreamStage::Init));
        let id = u64::try_from(i).unwrap_or(u64::MAX);
        let node = Node::new(
            id,
            n64,
            cfg.h,
            cfg.seed,
            cfg.tick_ns,
            agent,
            Arc::clone(&channel),
        );
        let first_tick = if cfg.stagger_ns > 0 {
            boot.rng(i, StreamStage::NetDelay)
                .gen_range(0..=cfg.stagger_ns)
        } else {
            0
        };
        node_handles.push(thread::spawn(move || node_thread(node, addr, first_tick)));
    }

    // Router-side reader threads, one per accepted connection.
    let (tx, rx) = mpsc::channel();
    let mut reader_handles = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        let tx = tx.clone();
        reader_handles.push(thread::spawn(move || reader_thread(stream, tx)));
    }
    drop(tx);

    // The router loop, on this thread.
    let clock = WallClock::start();
    let mut writers: Vec<Option<TcpStream>> = (0..cfg.n).map(|_| None).collect();
    let mut opinions = vec![u8::MAX; cfg.n]; // MAX = not yet reported
    let mut weaks = vec![WEAK_NONE; cfg.n];
    let mut rounds = vec![0u64; cfg.n];
    let mut num_correct = 0usize;
    let mut messages_total = 0u64;
    let mut drops_total = 0u64;
    let mut cond = LinkCondition::default();
    let mut next_fault = 0usize;
    let mut convergence: Option<(u64, f64)> = None;
    let mut readers_done = 0usize;
    // Hard cap so a wedged cluster cannot hang the caller: generous
    // multiple of the nominal run length plus startup slack.
    let hard_cap_ms = (budget_rounds.saturating_mul(cfg.tick_ns) as f64 / 1e6) * 4.0 + 10_000.0;
    let mut shutdown_sent = false;

    loop {
        while next_fault < fault_events.len() && fault_events[next_fault].0 <= clock.elapsed_ns() {
            cond.apply(fault_events[next_fault].1);
            next_fault += 1;
        }
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(RouterMsg::Register(id, stream)) => {
                if let Some(slot) = writers.get_mut(usize::try_from(id).unwrap_or(usize::MAX)) {
                    *slot = Some(stream);
                }
            }
            Ok(RouterMsg::Env(env)) => match env.msg {
                NetMsg::Status {
                    round,
                    opinion,
                    weak,
                } => {
                    let i = usize::try_from(env.from).unwrap_or(usize::MAX);
                    if let (Some(o), Some(w), Some(r)) =
                        (opinions.get_mut(i), weaks.get_mut(i), rounds.get_mut(i))
                    {
                        let was = *o == correct_byte;
                        *o = opinion;
                        *w = weak;
                        *r = (*r).max(round);
                        let is = opinion == correct_byte;
                        match (was, is) {
                            (false, true) => num_correct += 1,
                            (true, false) => num_correct -= 1,
                            _ => {}
                        }
                        if num_correct == cfg.n && convergence.is_none() {
                            convergence = Some((round, clock.elapsed_ms()));
                        }
                    }
                }
                NetMsg::PullRequest { .. } | NetMsg::PullReply { .. } => {
                    messages_total += 1;
                    if cond.severed(env.from, env.to) {
                        drops_total += 1;
                    } else if cond.extra_drop + cfg.drop_rate > 0.0 {
                        // Real time already destroys determinism here; a
                        // fixed stream keeps the coin seeded, not replayable.
                        let mut coin = RoundStreams::new(cfg.seed, messages_total)
                            .rng(0, StreamStage::NetDrop);
                        if coin.gen_bool((cond.extra_drop + cfg.drop_rate).min(1.0)) {
                            drops_total += 1;
                        } else {
                            forward(&mut writers, env, &mut drops_total);
                        }
                    } else {
                        forward(&mut writers, env, &mut drops_total);
                    }
                }
                NetMsg::Hello | NetMsg::Shutdown => {}
            },
            Ok(RouterMsg::ReaderDone) => {
                readers_done += 1;
                if readers_done == cfg.n {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }

        let budget_exhausted = rounds.iter().all(|&r| r >= budget_rounds);
        if !shutdown_sent
            && (convergence.is_some() || budget_exhausted || clock.elapsed_ms() > hard_cap_ms)
        {
            shutdown_sent = true;
            let mut frame = Vec::with_capacity(16);
            Envelope {
                from: DRIVER,
                to: DRIVER,
                msg: NetMsg::Shutdown,
            }
            .encode(&mut frame);
            for w in writers.iter_mut().flatten() {
                let _ = w.write_all(&frame);
            }
        }
        if shutdown_sent && clock.elapsed_ms() > hard_cap_ms + 5_000.0 {
            break; // don't wait forever for stragglers
        }
    }

    // Collect final node states.
    let mut exits = Vec::with_capacity(cfg.n);
    for handle in node_handles {
        match handle.join() {
            Ok(Ok(exit)) => exits.push(exit),
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                return Err(NetError::Thread {
                    detail: "a node thread panicked".into(),
                })
            }
        }
    }
    for handle in reader_handles {
        if handle.join().is_err() {
            return Err(NetError::Thread {
                detail: "a router reader thread panicked".into(),
            });
        }
    }

    exits.sort_by_key(|e| e.id);
    let final_correct = exits.iter().filter(|e| e.opinion == correct_byte).count();
    let weak_formed = exits.iter().filter(|e| e.weak != WEAK_NONE).count();
    let weak_correct = exits.iter().filter(|e| e.weak == correct_byte).count();
    let (stale_total, skipped_total) = exits.iter().fold((0, 0), |(st, sk), e| {
        (st + e.stats.stale_replies, sk + e.stats.rounds_skipped)
    });
    let max_round = exits.iter().map(|e| e.round).max().unwrap_or(0);
    let mut digest = Digest::new();
    digest.update_u64(messages_total);
    for e in &exits {
        digest.update_u64(e.round);
        digest.update(&[e.opinion, e.weak]);
    }
    let elapsed_ms = match convergence {
        Some((_, ms)) => ms,
        None => clock.elapsed_ms(),
    };
    Ok(ClusterReport {
        n: cfg.n,
        h: cfg.h,
        seed: cfg.seed,
        rounds: max_round,
        converged: final_correct == cfg.n,
        convergence_round: convergence.map(|(r, _)| r),
        elapsed_ms,
        messages_total,
        drops_total,
        stale_total,
        skipped_total,
        final_correct,
        weak_formed,
        weak_correct,
        digest: digest.value(),
    })
}

fn forward(writers: &mut [Option<TcpStream>], env: Envelope, drops_total: &mut u64) {
    let to = usize::try_from(env.to).unwrap_or(usize::MAX);
    let Some(Some(stream)) = writers.get_mut(to) else {
        // Destination not registered yet (still connecting): the model
        // tolerates lost messages, count it as a drop.
        *drops_total += 1;
        return;
    };
    let mut frame = Vec::with_capacity(64);
    env.encode(&mut frame);
    if stream.write_all(&frame).is_err() {
        *drops_total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_pull::params::SsfParams;
    use noisy_pull::ssf::SelfStabilizingSourceFilter;
    use np_engine::population::PopulationConfig;

    #[test]
    fn small_tcp_cluster_converges() {
        let mut cfg = ClusterConfig::new(16, 0, 1, 6, 0.05, 42);
        cfg.tick_ns = 2_000_000; // 2 ms rounds keep the test fast but sane
        let pop = PopulationConfig::new(16, 0, 1, 6).expect("population");
        let params = SsfParams::derive(&pop, 0.05, 1.0).expect("params");
        let interval = params.update_interval();
        let proto = SelfStabilizingSourceFilter::new(params);
        let report = run_tcp_cluster(&cfg, &proto, &NetFaultPlan::new(), interval * 60)
            .expect("tcp cluster");
        assert!(report.messages_total > 0);
        assert!(report.rounds > 0);
        assert!(
            report.converged,
            "16-node TCP cluster failed to converge: {report:?}"
        );
    }

    #[test]
    fn delay_faults_are_rejected_on_tcp() {
        let cfg = ClusterConfig::new(8, 0, 1, 2, 0.05, 1);
        let pop = PopulationConfig::new(8, 0, 1, 2).expect("population");
        let params = SsfParams::derive(&pop, 0.05, 1.0).expect("params");
        let proto = SelfStabilizingSourceFilter::new(params);
        let faults = NetFaultPlan::new().at_ns(0, NetFault::Delay { extra_ns: 1_000 });
        let err = run_tcp_cluster(&cfg, &proto, &faults, 10);
        assert!(matches!(err, Err(NetError::BadFaultPlan { .. })));
    }
}
