//! Rademacher random variables (Definition 18 of the paper).
//!
//! A `Rad(p)` variable takes value `+1` with probability `p` and `−1`
//! otherwise. The paper's weak-opinion analysis (Section 2.3, Lemma 20)
//! reduces sums of `{−1, 0, +1}` evidence variables to sums of Rademacher
//! variables conditioned on the number of non-zeros; this module provides
//! both the single-draw primitive and the exact sum-of-`m` shortcut.

use rand::Rng;

use crate::binomial;
use crate::{Result, StatsError};

/// Draws one `Rad(p)` value: `+1` with probability `p`, `−1` otherwise.
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `p ∉ [0, 1]`.
///
/// # Example
///
/// ```
/// use np_stats::rademacher::sample;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let x = sample(&mut rng, 0.75)?;
/// assert!(x == 1 || x == -1);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
pub fn sample<R: Rng + ?Sized>(rng: &mut R, p: f64) -> Result<i64> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(StatsError::BadProbability { value: p });
    }
    Ok(if rng.gen::<f64>() < p { 1 } else { -1 })
}

/// Draws the sum of `m` i.i.d. `Rad(p)` variables in O(σ) time via the
/// identity `Σ Rad(p) = 2·Binomial(m, p) − m`.
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `p ∉ [0, 1]`.
pub fn sum<R: Rng + ?Sized>(rng: &mut R, m: u64, p: f64) -> Result<i64> {
    let heads = binomial::sample(rng, m, p)?;
    Ok(2 * heads as i64 - m as i64)
}

/// Exact `P(Σᵢ Xᵢ > 0) − P(Σᵢ Xᵢ < 0)` for `m` i.i.d. `Rad(½ + θ)`
/// variables, by direct binomial summation.
///
/// Used in tests to confirm that the paper's Lemma 22 lower bound really
/// lower-bounds the truth.
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `½ + θ ∉ [0, 1]`.
pub fn exact_sign_advantage(m: u64, theta: f64) -> Result<f64> {
    let p = 0.5 + theta;
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(StatsError::BadProbability { value: p });
    }
    // Σ > 0 ⟺ heads > m/2; Σ < 0 ⟺ heads < m/2.
    let mut gt = 0.0;
    let mut lt = 0.0;
    for k in 0..=m {
        let mass = binomial::pmf(m, p, k)?;
        if 2 * k > m {
            gt += mass;
        } else if 2 * k < m {
            lt += mass;
        }
    }
    Ok(gt - lt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_values_and_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = sample(&mut rng, 0.5).unwrap();
            assert!(x == 1 || x == -1);
        }
        assert!(sample(&mut rng, -0.1).is_err());
        assert!(sample(&mut rng, 1.1).is_err());
    }

    #[test]
    fn degenerate_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample(&mut rng, 1.0).unwrap(), 1);
        assert_eq!(sample(&mut rng, 0.0).unwrap(), -1);
        assert_eq!(sum(&mut rng, 10, 1.0).unwrap(), 10);
        assert_eq!(sum(&mut rng, 10, 0.0).unwrap(), -10);
    }

    #[test]
    fn sum_has_correct_parity_and_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for m in [1u64, 2, 7, 100] {
            for _ in 0..50 {
                let s = sum(&mut rng, m, 0.6).unwrap();
                assert!(s.unsigned_abs() <= m);
                // Sum of m ±1's has the parity of m.
                assert_eq!((s + m as i64) % 2, 0);
            }
        }
    }

    #[test]
    fn sum_mean_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, p) = (10_000u64, 0.53);
        let reps = 2000;
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += sum(&mut rng, m, p).unwrap() as f64;
        }
        let mean = acc / reps as f64;
        let expect = m as f64 * (2.0 * p - 1.0);
        let sd = (m as f64 * 4.0 * p * (1.0 - p)).sqrt();
        assert!((mean - expect).abs() < 6.0 * sd / (reps as f64).sqrt());
    }

    #[test]
    fn exact_sign_advantage_zero_for_fair() {
        // Fair coin: by symmetry the advantage is 0 (odd m) and 0 (even m).
        assert!(exact_sign_advantage(9, 0.0).unwrap().abs() < 1e-12);
        assert!(exact_sign_advantage(10, 0.0).unwrap().abs() < 1e-12);
    }

    #[test]
    fn exact_sign_advantage_increases_with_theta() {
        let a1 = exact_sign_advantage(101, 0.01).unwrap();
        let a2 = exact_sign_advantage(101, 0.05).unwrap();
        let a3 = exact_sign_advantage(101, 0.2).unwrap();
        assert!(0.0 < a1 && a1 < a2 && a2 < a3 && a3 <= 1.0);
    }

    #[test]
    fn exact_sign_advantage_validates() {
        assert!(exact_sign_advantage(10, 0.6).is_err());
        assert!(exact_sign_advantage(10, -0.6).is_err());
    }
}
