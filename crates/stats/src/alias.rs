//! Vose's alias method for O(1) categorical sampling.
//!
//! The noisy channel applies a noise-matrix row — a categorical distribution
//! over at most a handful of symbols — once per *observation*. With up to
//! `n·h` observations per round, the per-sample cost matters; the alias
//! method turns each draw into one uniform index, one uniform coin and one
//! comparison, regardless of alphabet size.

use rand::Rng;

use crate::{Result, StatsError};

/// A pre-processed categorical distribution supporting O(1) sampling.
///
/// Construction is O(k) for `k` categories (Vose's stable two-worklist
/// variant).
///
/// # Example
///
/// ```
/// use np_stats::alias::AliasTable;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let t = AliasTable::new(&[0.1, 0.9])?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut ones = 0usize;
/// for _ in 0..10_000 {
///     if t.sample(&mut rng) == 1 {
///         ones += 1;
///     }
/// }
/// assert!((ones as f64 / 10_000.0 - 0.9).abs() < 0.02);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability for each column.
    prob: Vec<f64>,
    /// Alias category for each column.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from (unnormalized) non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadWeights`] if `weights` is empty, contains a
    /// negative or non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StatsError::BadWeights {
                detail: "empty weight vector".into(),
            });
        }
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(StatsError::BadWeights {
                detail: format!("invalid weight {w}"),
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::BadWeights {
                detail: "weights sum to zero".into(),
            });
        }
        let k = weights.len();
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * k as f64 / total).collect();
        let mut prob = vec![0.0; k];
        let mut alias = vec![0usize; k];
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains is numerically 1.
        for &i in large.iter().chain(small.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table has no categories (never constructible —
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let col = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col]
        }
    }

    /// Draws `count` categories, returning how many times each category was
    /// hit. Equivalent to `count` calls to [`AliasTable::sample`].
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        let mut out = vec![0u64; self.len()];
        for _ in 0..count {
            out[self.sample(rng)] += 1;
        }
        out
    }
}

/// Pre-processed alias tables for every row of a stochastic matrix: the
/// standard representation of a noisy channel.
///
/// Row `σ` answers "given that `σ` was displayed, what is observed?".
#[derive(Debug, Clone, PartialEq)]
pub struct RowSamplers {
    rows: Vec<AliasTable>,
}

impl RowSamplers {
    /// Builds one alias table per row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadWeights`] if any row is not a valid weight
    /// vector.
    pub fn new(rows: &[Vec<f64>]) -> Result<Self> {
        let tables = rows
            .iter()
            .map(|r| AliasTable::new(r))
            .collect::<Result<Vec<_>>>()?;
        Ok(RowSamplers { rows: tables })
    }

    /// Number of rows (alphabet size).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Samples an observed symbol given the displayed symbol `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma >= self.len()`.
    pub fn observe<R: Rng + ?Sized>(&self, rng: &mut R, sigma: usize) -> usize {
        self.rows[sigma].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.1]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let counts = t.sample_counts(&mut rng, n);
        let total: f64 = weights.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / total;
            let got = c as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "category {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        let a = AliasTable::new(&[2.0, 6.0]).unwrap();
        let b = AliasTable::new(&[0.25, 0.75]).unwrap();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        // Same normalized distribution and same RNG stream ⇒ same samples.
        for _ in 0..1000 {
            assert_eq!(a.sample(&mut rng_a), b.sample(&mut rng_b));
        }
    }

    #[test]
    fn len_and_is_empty() {
        let t = AliasTable::new(&[1.0, 1.0]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_samplers_observe_uses_correct_row() {
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let s = RowSamplers::new(&rows).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(s.observe(&mut rng, 0), 0);
            assert_eq!(s.observe(&mut rng, 1), 1);
        }
    }

    #[test]
    fn row_samplers_reject_bad_rows() {
        assert!(RowSamplers::new(&[vec![1.0], vec![]]).is_err());
    }
}
