//! Deterministic seed derivation for reproducible parallel experiments.
//!
//! Every simulation batch takes one master seed and derives independent
//! per-run seeds with splitmix64 — the standard generator-initializer with
//! provably full-period, well-mixed output. Runs can then execute on any
//! number of threads in any order and still be bit-reproducible.

/// A deterministic stream of derived seeds.
///
/// # Example
///
/// ```
/// use np_stats::seeds::SeedSequence;
///
/// let mut a = SeedSequence::new(42);
/// let mut b = SeedSequence::new(42);
/// assert_eq!(a.next_seed(), b.next_seed());
///
/// // Indexed access is order-independent:
/// let s = SeedSequence::new(42);
/// assert_eq!(s.seed_at(3), s.seed_at(3));
/// assert_ne!(s.seed_at(3), s.seed_at(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    master: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master, counter: 0 }
    }

    /// Returns the next derived seed, advancing the internal counter.
    pub fn next_seed(&mut self) -> u64 {
        let s = self.seed_at(self.counter);
        self.counter += 1;
        s
    }

    /// Returns the derived seed at a fixed index without advancing.
    ///
    /// `seed_at(i)` is a pure function of `(master, i)`, so parallel workers
    /// can compute their own seeds without coordination.
    pub fn seed_at(&self, index: u64) -> u64 {
        splitmix64(
            self.master
                .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// Derives a child sequence for a named sub-experiment, so different
    /// sweep points never share seeds even at equal indices.
    pub fn child(&self, tag: u64) -> SeedSequence {
        SeedSequence {
            master: splitmix64(self.master ^ splitmix64(tag)),
            counter: 0,
        }
    }

    /// Derives a child sequence keyed by a string label (e.g. a sweep job
    /// id), via an FNV-1a hash of the label bytes fed into [`Self::child`].
    ///
    /// The mapping is a pure function of `(master, label)`, so a resumed
    /// sweep re-derives exactly the seeds the interrupted run used.
    pub fn child_of_label(&self, label: &str) -> SeedSequence {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for &byte in label.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.child(hash)
    }
}

/// One round of splitmix64: a bijective, well-mixed `u64 → u64` map.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn next_matches_indexed() {
        let mut seq = SeedSequence::new(7);
        let fixed = SeedSequence::new(7);
        for i in 0..10 {
            assert_eq!(seq.next_seed(), fixed.seed_at(i));
        }
    }

    #[test]
    fn different_masters_differ() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        assert_ne!(a.seed_at(0), b.seed_at(0));
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seq = SeedSequence::new(123);
        let seeds: HashSet<u64> = (0..10_000).map(|i| seq.seed_at(i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn children_do_not_collide_with_parent_or_siblings() {
        let parent = SeedSequence::new(99);
        let c1 = parent.child(1);
        let c2 = parent.child(2);
        let mut all = HashSet::new();
        for i in 0..1000 {
            all.insert(parent.seed_at(i));
            all.insert(c1.seed_at(i));
            all.insert(c2.seed_at(i));
        }
        assert_eq!(all.len(), 3000);
    }

    #[test]
    fn labelled_children_are_stable_and_distinct() {
        let parent = SeedSequence::new(7);
        assert_eq!(
            parent.child_of_label("sf-n64-d0.2-r0").seed_at(0),
            parent.child_of_label("sf-n64-d0.2-r0").seed_at(0),
        );
        let mut all = HashSet::new();
        for label in ["sf-n64-d0.2-r0", "sf-n64-d0.2-r1", "ssf-n64-d0.2-r0"] {
            all.insert(parent.child_of_label(label).seed_at(0));
        }
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Adjacent inputs should differ in roughly half the bits.
        let diff = (splitmix64(1) ^ splitmix64(2)).count_ones();
        assert!(diff > 10 && diff < 54);
    }
}
