//! Counter-based per-agent RNG streams.
//!
//! The engine derives one independent generator per `(seed, round, agent,
//! stage)` coordinate instead of threading a single sequential generator
//! through the round loop. Each coordinate is folded into a seed through a
//! chain of splitmix64 rounds (each round is a bijective, well-mixed
//! `u64 → u64` map, so distinct coordinates collide only with probability
//! `≈ 2⁻⁶⁴` per pair), and the seed initializes a [`StreamRng`].
//!
//! Because a stream is a *pure function* of its coordinate, any worker can
//! derive any agent's generator without coordination — this is what makes
//! chunked round execution bit-identical across thread counts and chunk
//! sizes.
//!
//! # Generator choice
//!
//! [`StreamRng`] is splitmix64 in counter mode: one 64-bit state word,
//! advanced by the golden-gamma increment, finalized by the splitmix64
//! output mix. Construction is two register writes and each draw is a
//! handful of multiplies — against `StdRng` (ChaCha12), whose
//! `seed_from_u64` expansion plus first-block generation costs hundreds of
//! nanoseconds, this is what makes "derive a fresh stream per (agent,
//! stage) every round" free. The hot loops of the engine derive millions
//! of streams that draw only a few values each; splitmix64's output mix is
//! a full-avalanche bijection, which is exactly the statistical contract
//! those short streams need.
//!
//! Switching the stream generator from `StdRng` to [`StreamRng`] changed
//! every drawn value — a one-time whole-trajectory change, recorded in the
//! workspace CHANGELOG with regenerated goldens.
//!
//! The per-round derivation is a two-level chain: [`round_prefix`] folds
//! `(master, round)` once, [`stream_seed_from_prefix`] folds `(agent,
//! stage)` per stream. [`stream_seed`] composes the two and is the
//! canonical definition.

use crate::seeds::splitmix64;
use rand::{RngCore, SeedableRng};

/// Domain-separation constant mixed into the master seed, so stream seeds
/// never coincide with the raw [`crate::seeds::SeedSequence`] values derived
/// from the same master.
const STREAM_DOMAIN: u64 = 0xA076_1D64_78BD_642F;

/// The golden-gamma counter increment of splitmix64 (2⁶⁴/φ, odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed of the stream at `(master, round, agent, stage)`.
///
/// Pure and order-free: any caller computes the same value for the same
/// coordinate, in any order, on any thread.
///
/// # Example
///
/// ```
/// use np_stats::streams::stream_seed;
///
/// assert_eq!(stream_seed(7, 0, 3, 1), stream_seed(7, 0, 3, 1));
/// assert_ne!(stream_seed(7, 0, 3, 1), stream_seed(7, 0, 4, 1));
/// assert_ne!(stream_seed(7, 0, 3, 1), stream_seed(7, 1, 3, 1));
/// ```
pub fn stream_seed(master: u64, round: u64, agent: u64, stage: u64) -> u64 {
    stream_seed_from_prefix(round_prefix(master, round), agent, stage)
}

/// Folds the `(master, round)` half of the stream coordinate.
///
/// The round loop computes this once per round and hands the prefix to
/// every chunk worker; [`stream_seed_from_prefix`] finishes the chain.
/// `stream_seed(m, r, a, s) == stream_seed_from_prefix(round_prefix(m, r), a, s)`
/// by construction.
pub fn round_prefix(master: u64, round: u64) -> u64 {
    splitmix64(splitmix64(master ^ STREAM_DOMAIN) ^ round)
}

/// Finishes the stream-seed chain from a cached [`round_prefix`].
pub fn stream_seed_from_prefix(prefix: u64, agent: u64, stage: u64) -> u64 {
    splitmix64(splitmix64(prefix ^ agent) ^ stage)
}

/// The ready-to-use generator of the stream at `(master, round, agent,
/// stage)`.
pub fn stream_rng(master: u64, round: u64, agent: u64, stage: u64) -> StreamRng {
    StreamRng::from_stream_seed(stream_seed(master, round, agent, stage))
}

/// Counter-mode splitmix64 generator: the workspace's stream RNG.
///
/// State is a single `u64`; each draw adds the golden gamma and applies
/// the splitmix64 finalizer, so `next_u64` is a pure function of
/// `(seed, draw index)` — a true counter-mode block generator. Adjacent
/// seeds yield decorrelated outputs because the finalizer is a
/// full-avalanche mix.
///
/// # Example
///
/// ```
/// use np_stats::streams::StreamRng;
/// use rand::Rng;
///
/// let mut rng = StreamRng::from_stream_seed(42);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRng {
    state: u64,
}

impl StreamRng {
    /// Creates the generator directly from an already-mixed stream seed
    /// (the output of [`stream_seed`]); the state is the seed itself.
    ///
    /// Raw counters (0, 1, 2, …) are fine too: the output mix decorrelates
    /// adjacent states. Overlap between two seeds requires their difference
    /// to be an exact multiple of the golden gamma — probability `≈ 2⁻⁶⁴`
    /// per pair per stream length, same as any seed collision.
    pub fn from_stream_seed(seed: u64) -> Self {
        StreamRng { state: seed }
    }
}

impl SeedableRng for StreamRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        StreamRng {
            state: u64::from_le_bytes(seed),
        }
    }
}

impl RngCore for StreamRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        // High half: the finalizer's best-mixed bits.
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::SeedSequence;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream_rng(42, 3, 17, 2);
        let mut b = stream_rng(42, 3, 17, 2);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn coordinates_are_independent_axes() {
        let base = stream_seed(1, 2, 3, 4);
        assert_ne!(base, stream_seed(9, 2, 3, 4), "master must matter");
        assert_ne!(base, stream_seed(1, 9, 3, 4), "round must matter");
        assert_ne!(base, stream_seed(1, 2, 9, 4), "agent must matter");
        assert_ne!(base, stream_seed(1, 2, 3, 9), "stage must matter");
    }

    #[test]
    fn no_trivial_cross_axis_collisions() {
        // Swapping small values between axes must not collide: the chain
        // mixes between injections precisely to prevent (round=1, agent=0)
        // from aliasing (round=0, agent=1).
        assert_ne!(stream_seed(5, 1, 0, 0), stream_seed(5, 0, 1, 0));
        assert_ne!(stream_seed(5, 0, 1, 0), stream_seed(5, 0, 0, 1));
        assert_ne!(stream_seed(5, 1, 0, 0), stream_seed(5, 0, 0, 1));
    }

    #[test]
    fn prefix_split_matches_full_chain() {
        for master in [0u64, 7, u64::MAX] {
            for round in [0u64, 1, 1 << 40] {
                let prefix = round_prefix(master, round);
                for agent in [0u64, 63, 4096] {
                    for stage in 0..6 {
                        assert_eq!(
                            stream_seed_from_prefix(prefix, agent, stage),
                            stream_seed(master, round, agent, stage),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dense_coordinate_grid_has_no_collisions() {
        let mut all = HashSet::new();
        for round in 0..20 {
            for agent in 0..50 {
                for stage in 0..5 {
                    all.insert(stream_seed(123, round, agent, stage));
                }
            }
        }
        assert_eq!(all.len(), 20 * 50 * 5);
    }

    #[test]
    fn disjoint_from_seed_sequence_of_same_master() {
        // Batch-run seeds and stream seeds derive from the same master;
        // the domain constant keeps the two families apart.
        let seq = SeedSequence::new(77);
        let batch: HashSet<u64> = (0..1000).map(|i| seq.seed_at(i)).collect();
        for round in 0..10 {
            for agent in 0..10 {
                assert!(!batch.contains(&stream_seed(77, round, agent, 0)));
            }
        }
    }

    #[test]
    fn adjacent_streams_decorrelated() {
        // Crude avalanche check: first outputs of adjacent agent streams
        // differ in roughly half their bits on average.
        let mut total = 0u32;
        let pairs = 200;
        for agent in 0..pairs {
            let a = stream_rng(9, 0, agent, 0).gen::<u64>();
            let b = stream_rng(9, 0, agent + 1, 0).gen::<u64>();
            total += (a ^ b).count_ones();
        }
        let mean = f64::from(total) / f64::from(u32::try_from(pairs).unwrap());
        assert!((20.0..44.0).contains(&mean), "mean bit diff {mean}");
    }

    #[test]
    fn counter_mode_is_a_pure_function_of_seed_and_index() {
        // Drawing k values then one more equals seeding a fresh generator
        // and skipping k: the draw at index k never depends on history.
        let mut walked = StreamRng::from_stream_seed(555);
        for _ in 0..10 {
            walked.next_u64();
        }
        let mut fresh = StreamRng::from_stream_seed(555);
        let mut last = 0;
        for _ in 0..11 {
            last = fresh.next_u64();
        }
        assert_eq!(walked.next_u64(), last);
    }

    #[test]
    fn seedable_from_u64_round_trips_le_bytes() {
        let a = StreamRng::seed_from_u64(99);
        let b = StreamRng::seed_from_u64(99);
        assert_eq!(a, b);
        let mut c = StreamRng::from_seed(7u64.to_le_bytes());
        assert_eq!(c, StreamRng::from_stream_seed(7));
        c.next_u32();
        assert_ne!(c, StreamRng::from_stream_seed(7));
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut bytes = StreamRng::from_stream_seed(21);
        let mut words = StreamRng::from_stream_seed(21);
        let mut buf = [0u8; 13];
        bytes.fill_bytes(&mut buf);
        let w0 = words.next_u64().to_le_bytes();
        let w1 = words.next_u64().to_le_bytes();
        assert_eq!(&buf[0..8], &w0);
        assert_eq!(&buf[8..13], &w1[..5]);
    }

    #[test]
    fn adjacent_raw_seeds_decorrelated() {
        // The engine seeds streams with mixed values, but raw adjacent
        // seeds must also be safe (tests seed 0, 1, 2, …).
        let mut total = 0u32;
        for seed in 0..200u64 {
            let a = StreamRng::from_stream_seed(seed).gen::<u64>();
            let b = StreamRng::from_stream_seed(seed + 1).gen::<u64>();
            total += (a ^ b).count_ones();
        }
        let mean = f64::from(total) / 200.0;
        assert!((20.0..44.0).contains(&mean), "mean bit diff {mean}");
    }
}
