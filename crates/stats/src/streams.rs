//! Counter-based per-agent RNG streams.
//!
//! The engine derives one independent generator per `(seed, round, agent,
//! stage)` coordinate instead of threading a single sequential `StdRng`
//! through the round loop. Each coordinate is folded into a seed through a
//! chain of splitmix64 rounds (each round is a bijective, well-mixed
//! `u64 → u64` map, so distinct coordinates collide only with probability
//! `≈ 2⁻⁶⁴` per pair), and the seed initializes a fresh [`StdRng`].
//!
//! Because a stream is a *pure function* of its coordinate, any worker can
//! derive any agent's generator without coordination — this is what makes
//! chunked round execution bit-identical across thread counts and chunk
//! sizes. Deriving a generator is cheap (a few multiplies plus the
//! `seed_from_u64` expansion; the underlying ChaCha block is only produced
//! on first use), so it is fine to derive streams that end up drawing
//! nothing.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::seeds::splitmix64;

/// Domain-separation constant mixed into the master seed, so stream seeds
/// never coincide with the raw [`crate::seeds::SeedSequence`] values derived
/// from the same master.
const STREAM_DOMAIN: u64 = 0xA076_1D64_78BD_642F;

/// Derives the seed of the stream at `(master, round, agent, stage)`.
///
/// Pure and order-free: any caller computes the same value for the same
/// coordinate, in any order, on any thread.
///
/// # Example
///
/// ```
/// use np_stats::streams::stream_seed;
///
/// assert_eq!(stream_seed(7, 0, 3, 1), stream_seed(7, 0, 3, 1));
/// assert_ne!(stream_seed(7, 0, 3, 1), stream_seed(7, 0, 4, 1));
/// assert_ne!(stream_seed(7, 0, 3, 1), stream_seed(7, 1, 3, 1));
/// ```
pub fn stream_seed(master: u64, round: u64, agent: u64, stage: u64) -> u64 {
    let mut s = splitmix64(master ^ STREAM_DOMAIN);
    s = splitmix64(s ^ round);
    s = splitmix64(s ^ agent);
    splitmix64(s ^ stage)
}

/// The ready-to-use generator of the stream at `(master, round, agent,
/// stage)`.
pub fn stream_rng(master: u64, round: u64, agent: u64, stage: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed(master, round, agent, stage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::SeedSequence;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream_rng(42, 3, 17, 2);
        let mut b = stream_rng(42, 3, 17, 2);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn coordinates_are_independent_axes() {
        let base = stream_seed(1, 2, 3, 4);
        assert_ne!(base, stream_seed(9, 2, 3, 4), "master must matter");
        assert_ne!(base, stream_seed(1, 9, 3, 4), "round must matter");
        assert_ne!(base, stream_seed(1, 2, 9, 4), "agent must matter");
        assert_ne!(base, stream_seed(1, 2, 3, 9), "stage must matter");
    }

    #[test]
    fn no_trivial_cross_axis_collisions() {
        // Swapping small values between axes must not collide: the chain
        // mixes between injections precisely to prevent (round=1, agent=0)
        // from aliasing (round=0, agent=1).
        assert_ne!(stream_seed(5, 1, 0, 0), stream_seed(5, 0, 1, 0));
        assert_ne!(stream_seed(5, 0, 1, 0), stream_seed(5, 0, 0, 1));
        assert_ne!(stream_seed(5, 1, 0, 0), stream_seed(5, 0, 0, 1));
    }

    #[test]
    fn dense_coordinate_grid_has_no_collisions() {
        let mut all = HashSet::new();
        for round in 0..20 {
            for agent in 0..50 {
                for stage in 0..5 {
                    all.insert(stream_seed(123, round, agent, stage));
                }
            }
        }
        assert_eq!(all.len(), 20 * 50 * 5);
    }

    #[test]
    fn disjoint_from_seed_sequence_of_same_master() {
        // Batch-run seeds and stream seeds derive from the same master;
        // the domain constant keeps the two families apart.
        let seq = SeedSequence::new(77);
        let batch: HashSet<u64> = (0..1000).map(|i| seq.seed_at(i)).collect();
        for round in 0..10 {
            for agent in 0..10 {
                assert!(!batch.contains(&stream_seed(77, round, agent, 0)));
            }
        }
    }

    #[test]
    fn adjacent_streams_decorrelated() {
        // Crude avalanche check: first outputs of adjacent agent streams
        // differ in roughly half their bits on average.
        let mut total = 0u32;
        let pairs = 200;
        for agent in 0..pairs {
            let a = stream_rng(9, 0, agent, 0).gen::<u64>();
            let b = stream_rng(9, 0, agent + 1, 0).gen::<u64>();
            total += (a ^ b).count_ones();
        }
        let mean = f64::from(total) / f64::from(u32::try_from(pairs).unwrap());
        assert!((20.0..44.0).contains(&mean), "mean bit diff {mean}");
    }
}
