//! Exact binomial sampling and pmf/cdf evaluation.
//!
//! The engine's aggregated channel (see `np-engine`) replaces per-message
//! noise draws with binomial counts, so the binomial sampler must be *exact*
//! (not a normal approximation): statistical tests in this workspace compare
//! the aggregated channel against the literal per-message channel and would
//! detect distributional drift.
//!
//! The sampler composes three standard exact methods:
//!
//! * direct Bernoulli counting for tiny `n`;
//! * BINV (inversion from zero) when `n·min(p, 1−p)` is small;
//! * inversion from the mode (two-sided pmf walk) otherwise, which runs in
//!   `O(σ)` expected steps — microseconds even at `n = 2³⁰`.

use rand::Rng;

use crate::{Result, StatsError};

/// Natural log of `n!`, exact-table for `n < 1024`, Stirling series beyond.
///
/// The Stirling tail keeps absolute error below `1e-12` for `n ≥ 1024`,
/// which is far below the noise floor of the samplers that consume it.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_SIZE: usize = 1024;
    // Lazily built exact table (sum of logs).
    static TABLE: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = vec![0.0f64; TABLE_SIZE];
        for i in 2..TABLE_SIZE {
            t[i] = t[i - 1] + (i as f64).ln();
        }
        t
    });
    if (n as usize) < TABLE_SIZE {
        return table[n as usize];
    }
    // Stirling series: ln n! = n ln n − n + ½ln(2πn) + 1/(12n) − 1/(360n³) + 1/(1260n⁵)
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
        + 1.0 / (1260.0 * x * x * x * x * x)
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The binomial pmf `P(Binomial(n, p) = k)`.
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `p ∉ [0, 1]`.
pub fn pmf(n: u64, p: f64, k: u64) -> Result<f64> {
    check_probability(p)?;
    if k > n {
        return Ok(0.0);
    }
    // xtask-allow: float-eq (degenerate-distribution sentinels: exactly 0 and 1
    // have closed forms; near-0/1 must take the general path)
    if p == 0.0 {
        return Ok(if k == 0 { 1.0 } else { 0.0 });
    }
    // xtask-allow: float-eq (degenerate-distribution sentinel)
    if p == 1.0 {
        return Ok(if k == n { 1.0 } else { 0.0 });
    }
    let ln_p = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    Ok(ln_p.exp())
}

/// The binomial cdf `P(Binomial(n, p) ≤ k)` by direct summation.
///
/// Intended for moderate `n` (tests and bound evaluation); cost is `O(k)`.
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `p ∉ [0, 1]`.
pub fn cdf(n: u64, p: f64, k: u64) -> Result<f64> {
    check_probability(p)?;
    if k >= n {
        return Ok(1.0);
    }
    let mut acc = 0.0;
    for i in 0..=k {
        acc += pmf(n, p, i)?;
    }
    Ok(acc.min(1.0))
}

fn check_probability(p: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(StatsError::BadProbability { value: p });
    }
    Ok(())
}

/// Draws one sample from `Binomial(n, p)`.
///
/// Exact for all `(n, p)`; see the module docs for the method selection.
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `p ∉ [0, 1]`.
///
/// # Example
///
/// ```
/// use np_stats::binomial::sample;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let x = sample(&mut rng, 1_000_000, 0.25)?;
/// // Mean 250k, σ ≈ 433: a draw 20σ out would indicate a broken sampler.
/// assert!((x as f64 - 250_000.0).abs() < 20.0 * 433.0);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
pub fn sample<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> Result<u64> {
    check_probability(p)?;
    Ok(sample_unchecked(rng, n, p))
}

/// Like [`sample`] but assumes `p ∈ [0, 1]` (hot-path variant used by the
/// channel implementations, which validate noise levels at construction).
///
/// # Panics
///
/// Debug-asserts `p ∈ [0, 1]`; in release builds an out-of-range `p` is
/// clamped by the underlying arithmetic, producing meaningless output.
pub fn sample_unchecked<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p));
    // xtask-allow: float-eq (degenerate-distribution sentinels, as in `pmf`)
    if n == 0 || p == 0.0 {
        return 0;
    }
    // xtask-allow: float-eq (degenerate-distribution sentinel)
    if p == 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - sample_unchecked(rng, n, 1.0 - p);
    }
    // From here p ≤ 0.5.
    if n <= 16 {
        let mut count = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                count += 1;
            }
        }
        return count;
    }
    if n as f64 * p <= 12.0 {
        sample_binv(rng, n, p)
    } else {
        sample_from_mode(rng, n, p)
    }
}

/// Precomputed inverse-cdf table for repeated draws from one fixed
/// `Binomial(n, p)` law.
///
/// The engine's aggregated channel draws the *same* binomial once per
/// agent per round (the level-0 count of the collapsed observation
/// multinomial — see `np-engine`'s channel docs). [`sample_unchecked`]
/// walks the pmf outward from the mode on every draw (`O(σ)` expected
/// steps); this table performs the identical inversion — same visit
/// order, same tie rule — but pays the walk once at construction and
/// answers each draw with one uniform plus a binary search (`O(log σ)`).
///
/// Construction visits pmf entries mode-outward in decreasing-pmf order
/// (exactly [`sample_unchecked`]'s order, so in the mode-inversion regime
/// the two are bit-identical on the same generator state) and truncates
/// once the accumulated mass exceeds `1 − 1e-12`; a uniform beyond the
/// table (probability `< 1e-12`) deterministically maps to the last —
/// least likely — tabulated value.
#[derive(Debug, Clone)]
pub struct CdfTable {
    /// Support values in visit order (mode-outward, decreasing pmf).
    ks: Vec<u64>,
    /// Cumulative mass over `ks[..=i]`; strictly increasing.
    cum: Vec<f64>,
}

impl CdfTable {
    /// Builds the table for `Binomial(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadProbability`] if `p ∉ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        check_probability(p)?;
        Ok(CdfTable::new_unchecked(n, p))
    }

    /// Like [`CdfTable::new`] but assumes `p ∈ [0, 1]` (hot-path variant;
    /// the channel validates noise levels at construction).
    pub fn new_unchecked(n: u64, p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p));
        let single = |k: u64| CdfTable {
            ks: vec![k],
            cum: vec![1.0],
        };
        // xtask-allow: float-eq (degenerate-distribution sentinels, as in `pmf`)
        if n == 0 || p == 0.0 {
            return single(0);
        }
        // xtask-allow: float-eq (degenerate-distribution sentinel)
        if p == 1.0 {
            return single(n);
        }
        let mode = ((((n + 1) as f64) * p).floor() as u64).min(n);
        // xtask-allow: unwrap (p validated by every caller of this path)
        let pmf_mode = pmf(n, p, mode).expect("p validated");
        let q = 1.0 - p;
        let ratio = p / q;
        let mut ks = vec![mode];
        let mut cum = vec![pmf_mode];
        let mut total = pmf_mode;
        // Same outward walk as `sample_from_mode`, with the same
        // multiplicative pmf recurrences and the same side-selection rule.
        let mut lo = mode;
        let mut hi = mode;
        let mut pmf_lo = pmf_mode;
        let mut pmf_hi = pmf_mode;
        while total < 1.0 - 1e-12 {
            let can_left = lo > 0;
            let can_right = hi < n;
            if !can_left && !can_right {
                break;
            }
            let next_left = if can_left {
                pmf_lo * (lo as f64) / ((n - lo + 1) as f64) / ratio
            } else {
                -1.0
            };
            let next_right = if can_right {
                pmf_hi * ((n - hi) as f64) / ((hi + 1) as f64) * ratio
            } else {
                -1.0
            };
            let step = if next_right >= next_left {
                hi += 1;
                pmf_hi = next_right;
                ks.push(hi);
                next_right
            } else {
                lo -= 1;
                pmf_lo = next_left;
                ks.push(lo);
                next_left
            };
            total += step;
            cum.push(total);
            if step <= 0.0 {
                // Float underflow: no further mass is representable.
                break;
            }
        }
        CdfTable { ks, cum }
    }

    /// Draws one value, consuming exactly one `f64` from `rng` — the same
    /// single uniform [`sample_unchecked`]'s mode-inversion regime uses.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.sample_u01(rng.gen::<f64>())
    }

    /// Inverts a uniform `u ∈ [0, 1)` through the table.
    pub fn sample_u01(&self, u: f64) -> u64 {
        let i = self.cum.partition_point(|&c| c < u);
        self.ks[i.min(self.ks.len() - 1)]
    }

    /// Number of tabulated support values.
    pub fn len(&self) -> usize {
        self.ks.len()
    }

    /// Always `false`: the table covers at least the mode.
    pub fn is_empty(&self) -> bool {
        self.ks.is_empty()
    }
}

/// Windowed pmf/cdf table over the *effective support* of one fixed
/// `Binomial(n, p)` law.
///
/// The mean-field counts backend (see `np-engine`) turns protocol
/// transitions into boundary probabilities — binomial tails and
/// two-binomial comparisons with up to `10⁹` trials. `O(k)` summation is
/// infeasible there, so this table walks the pmf outward from the mode
/// with the same multiplicative recurrence (and the same side-selection
/// rule) as [`CdfTable`] and stops once the accumulated mass exceeds
/// `1 − 1e-12`. The visited values form a contiguous window `[lo, hi]` of
/// `O(σ)` entries; queries outside it saturate to mass 0 (below) or
/// cumulative 1 (above), so every answer is exact up to the `1e-12`
/// truncation budget plus f64 round-off.
#[derive(Debug, Clone)]
pub struct TailTable {
    lo: u64,
    /// `pmf[i] = P(X = lo + i)` over the window.
    pmf: Vec<f64>,
    /// `cdf[i] = P(lo ≤ X ≤ lo + i)`; the mass below `lo` is within the
    /// truncation budget, so this doubles as `P(X ≤ lo + i)`.
    cdf: Vec<f64>,
}

impl TailTable {
    /// Builds the table for `Binomial(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadProbability`] if `p ∉ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        check_probability(p)?;
        Ok(TailTable::new_unchecked(n, p))
    }

    /// Like [`TailTable::new`] but assumes `p ∈ [0, 1]` (hot-path variant;
    /// the mean-field backend feeds it normalized observation laws).
    pub fn new_unchecked(n: u64, p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p));
        let single = |k: u64| TailTable {
            lo: k,
            pmf: vec![1.0],
            cdf: vec![1.0],
        };
        // xtask-allow: float-eq (degenerate-distribution sentinels, as in `pmf`)
        if n == 0 || p == 0.0 {
            return single(0);
        }
        // xtask-allow: float-eq (degenerate-distribution sentinel)
        if p == 1.0 {
            return single(n);
        }
        let mode = ((((n + 1) as f64) * p).floor() as u64).min(n);
        // xtask-allow: unwrap (p validated by every caller of this path)
        let pmf_mode = pmf(n, p, mode).expect("p validated");
        let q = 1.0 - p;
        let ratio = p / q;
        // Same outward walk as `CdfTable::new_unchecked`; here we keep the
        // two sides separate so the window assembles contiguously.
        let mut left: Vec<f64> = Vec::new(); // pmf at mode−1, mode−2, …
        let mut right: Vec<f64> = Vec::new(); // pmf at mode+1, mode+2, …
        let mut total = pmf_mode;
        let mut lo = mode;
        let mut hi = mode;
        let mut pmf_lo = pmf_mode;
        let mut pmf_hi = pmf_mode;
        while total < 1.0 - 1e-12 {
            let can_left = lo > 0;
            let can_right = hi < n;
            if !can_left && !can_right {
                break;
            }
            let next_left = if can_left {
                pmf_lo * (lo as f64) / ((n - lo + 1) as f64) / ratio
            } else {
                -1.0
            };
            let next_right = if can_right {
                pmf_hi * ((n - hi) as f64) / ((hi + 1) as f64) * ratio
            } else {
                -1.0
            };
            let step = if next_right >= next_left {
                hi += 1;
                pmf_hi = next_right;
                right.push(next_right);
                next_right
            } else {
                lo -= 1;
                pmf_lo = next_left;
                left.push(next_left);
                next_left
            };
            total += step;
            if step <= 0.0 {
                // Float underflow: no further mass is representable.
                break;
            }
        }
        let mut window = Vec::with_capacity(left.len() + 1 + right.len());
        window.extend(left.iter().rev());
        window.push(pmf_mode);
        window.extend(&right);
        let mut cdf = Vec::with_capacity(window.len());
        let mut acc = 0.0;
        for &m in &window {
            acc += m;
            cdf.push(acc.min(1.0));
        }
        TailTable {
            lo,
            pmf: window,
            cdf,
        }
    }

    /// First tabulated support value.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Last tabulated support value.
    pub fn hi(&self) -> u64 {
        self.lo + (self.pmf.len() as u64 - 1)
    }

    /// `P(X = k)`; zero outside the window.
    pub fn pmf_at(&self, k: u64) -> f64 {
        if k < self.lo || k > self.hi() {
            return 0.0;
        }
        self.pmf[(k - self.lo) as usize]
    }

    /// `P(X ≤ k)`, saturating to 0 below the window and to exactly 1 at
    /// and above its upper end (the truncated tail mass is folded into the
    /// last entry so that [`TailTable::sf_at`] is exactly 0 there).
    pub fn cdf_at(&self, k: u64) -> f64 {
        if k < self.lo {
            return 0.0;
        }
        if k >= self.hi() {
            return 1.0;
        }
        self.cdf[(k - self.lo) as usize]
    }

    /// The survival function `P(X > k)`.
    pub fn sf_at(&self, k: u64) -> f64 {
        1.0 - self.cdf_at(k)
    }
}

/// `P(2X > n) + ½·P(2X = n)` for `X ~ Binomial(n, p)` — the probability
/// that a majority vote over `n` noisy observations (ties broken by a
/// fair coin) lands on the outcome each observation indicates with
/// probability `p`. This is the exact per-agent law of one SF boosting
/// sub-phase and of one h-majority round, evaluated in `O(σ)`.
///
/// `n = 0` returns `½` (an empty vote is a pure coin toss).
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `p ∉ [0, 1]`.
pub fn majority_prob(n: u64, p: f64) -> Result<f64> {
    check_probability(p)?;
    Ok(majority_prob_unchecked(n, p))
}

/// Like [`majority_prob`] but assumes `p ∈ [0, 1]` (hot-path variant).
pub fn majority_prob_unchecked(n: u64, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    let table = TailTable::new_unchecked(n, p);
    let half = n / 2;
    // 2X > n ⟺ X > ⌊n/2⌋ for every parity; the tie 2X = n exists only
    // for even n.
    let win = table.sf_at(half);
    let tie = if n.is_multiple_of(2) {
        0.5 * table.pmf_at(half)
    } else {
        0.0
    };
    (win + tie).clamp(0.0, 1.0)
}

/// `P(X > Y) + ½·P(X = Y)` for independent `X ~ Binomial(nx, px)` and
/// `Y ~ Binomial(ny, py)` — the exact law of SF's weak-opinion comparison
/// `1{Counter₁ > Counter₀}` with its fair-coin tie break. Evaluated in
/// `O(σx + σy)` by summing `Y`'s windowed pmf against `X`'s windowed
/// survival function.
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `px ∉ [0, 1]` or
/// `py ∉ [0, 1]`.
pub fn exceeds_prob(nx: u64, px: f64, ny: u64, py: f64) -> Result<f64> {
    check_probability(px)?;
    check_probability(py)?;
    Ok(exceeds_prob_unchecked(nx, px, ny, py))
}

/// Like [`exceeds_prob`] but assumes both probabilities lie in `[0, 1]`.
pub fn exceeds_prob_unchecked(nx: u64, px: f64, ny: u64, py: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&px));
    debug_assert!((0.0..=1.0).contains(&py));
    let tx = TailTable::new_unchecked(nx, px);
    let ty = TailTable::new_unchecked(ny, py);
    let mut acc = 0.0;
    for k in ty.lo()..=ty.hi() {
        let pk = ty.pmf_at(k);
        if pk > 0.0 {
            acc += pk * (tx.sf_at(k) + 0.5 * tx.pmf_at(k));
        }
    }
    acc.clamp(0.0, 1.0)
}

/// BINV: sequential inversion from k = 0 using the pmf recurrence.
/// Expected iterations ≈ n·p + 1; used only when that is small.
fn sample_binv<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let mut f = q.powf(n as f64); // pmf(0)
    let mut u = rng.gen::<f64>();
    let mut k = 0u64;
    loop {
        if u <= f || k >= n {
            return k;
        }
        u -= f;
        // pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/q
        f *= (n - k) as f64 / (k + 1) as f64 * s;
        k += 1;
        // Guard against float underflow stranding us past the support.
        if f <= 0.0 {
            return k.min(n);
        }
    }
}

/// Inversion from the mode: start at the modal value and expand outward,
/// alternating the side with the larger remaining mass direction. Exact up
/// to pmf round-off; expected iterations `O(σ)`.
fn sample_from_mode<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let mode = (((n + 1) as f64) * p).floor() as u64;
    let mode = mode.min(n);
    // xtask-allow: unwrap (p was validated by every public caller of this path)
    let pmf_mode = pmf(n, p, mode).expect("p validated");
    let q = 1.0 - p;
    let ratio = p / q;
    let mut u = rng.gen::<f64>() - pmf_mode;
    if u <= 0.0 {
        return mode;
    }
    // Walk outward: maintain pmf at the current left/right frontier.
    let mut lo = mode; // next left candidate is lo−1
    let mut hi = mode; // next right candidate is hi+1
    let mut pmf_lo = pmf_mode;
    let mut pmf_hi = pmf_mode;
    loop {
        let can_left = lo > 0;
        let can_right = hi < n;
        if !can_left && !can_right {
            // Numerical leftovers: return the mode (mass deficit < 1e-12).
            return mode;
        }
        // Peek the next pmf on each available side.
        let next_left = if can_left {
            // pmf(k−1) = pmf(k) · k/(n−k+1) · q/p
            pmf_lo * (lo as f64) / ((n - lo + 1) as f64) / ratio
        } else {
            -1.0
        };
        let next_right = if can_right {
            // pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/q
            pmf_hi * ((n - hi) as f64) / ((hi + 1) as f64) * ratio
        } else {
            -1.0
        };
        if next_right >= next_left {
            hi += 1;
            pmf_hi = next_right;
            u -= pmf_hi;
            if u <= 0.0 {
                return hi;
            }
        } else {
            lo -= 1;
            pmf_lo = next_left;
            u -= pmf_lo;
            if u <= 0.0 {
                return lo;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_stirling_continuity() {
        // The table/Stirling boundary at 1024 must be seamless.
        let direct: f64 = (2..=1500u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(1500) - direct).abs() < 1e-8);
    }

    #[test]
    fn ln_factorial_table_stirling_seam_exact() {
        // n = 1023 is the last tabulated value, n = 1024 the first Stirling
        // one. Pin both against the exact log-sum and the identity
        // ln(1024!) − ln(1023!) = ln(1024) across the seam.
        let direct_1023: f64 = (2..=1023u64).map(|i| (i as f64).ln()).sum();
        let direct_1024 = direct_1023 + 1024f64.ln();
        assert!((ln_factorial(1023) - direct_1023).abs() < 1e-9);
        assert!((ln_factorial(1024) - direct_1024).abs() < 1e-9);
        assert!((ln_factorial(1024) - ln_factorial(1023) - 1024f64.ln()).abs() < 1e-9);
        // A pmf evaluated with one factor on each side of the seam must
        // still sum to 1 over a window around the mean.
        let (n, p) = (2048u64, 0.5);
        let mass: f64 = (874..=1174).map(|k| pmf(n, p, k).unwrap()).sum();
        assert!((mass - 1.0).abs() < 1e-8, "seam-straddling pmf mass {mass}");
    }

    #[test]
    fn sample_extreme_p_near_zero() {
        // n = 2³⁰ with np ≪ 1: BINV territory where a naive `q^n` would
        // underflow to 0 and an off-by-one would overdraw. The draw must be
        // tiny, never near n.
        let n = 1u64 << 30;
        let mut rng = StdRng::seed_from_u64(60);
        let mut total = 0u64;
        for _ in 0..2000 {
            let x = sample(&mut rng, n, 1e-12).unwrap();
            assert!(x <= 2, "p = 1e-12 drew {x}");
            total += x;
        }
        // E[total] = 2000·n·1e-12 ≈ 0.002: almost surely all-zero draws.
        assert!(total <= 3);
        // Subnormal p must not hang or panic.
        assert_eq!(sample(&mut rng, n, 1e-300).unwrap(), 0);
        assert_eq!(sample(&mut rng, n, 0.0).unwrap(), 0);
    }

    #[test]
    fn sample_extreme_p_near_one() {
        // Mirror case: the sampler reflects to 1 − p, so drift or an
        // off-by-one in the reflection shows up as draws far below n.
        let n = 1u64 << 30;
        let mut rng = StdRng::seed_from_u64(61);
        let mut total_gap = 0u64;
        for _ in 0..2000 {
            let x = sample(&mut rng, n, 1.0 - 1e-12).unwrap();
            assert!(x <= n);
            assert!(n - x <= 2, "p = 1 − 1e-12 drew n − {}", n - x);
            total_gap += n - x;
        }
        assert!(total_gap <= 3);
        assert_eq!(sample(&mut rng, n, 1.0).unwrap(), n);
    }

    #[test]
    fn sample_large_n_moderate_p_moments() {
        // n = 2³⁰ at moderate p exercises the from-mode walk with a huge
        // support; check mean and spread rather than exact values.
        let n = 1u64 << 30;
        let p = 0.3;
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let mut rng = StdRng::seed_from_u64(62);
        let mut acc = 0.0f64;
        let reps = 200;
        for _ in 0..reps {
            let x = sample(&mut rng, n, p).unwrap() as f64;
            assert!((x - mean).abs() < 8.0 * sd, "draw {x} implausibly far");
            acc += x;
        }
        let got = acc / reps as f64;
        assert!((got - mean).abs() < 8.0 * sd / (reps as f64).sqrt());
    }

    #[test]
    fn tail_table_matches_exact_pmf_and_cdf() {
        let (n, p) = (300u64, 0.37);
        let t = TailTable::new(n, p).unwrap();
        assert!(t.lo() <= 111 && t.hi() >= 111, "mode must be covered");
        for k in t.lo()..t.hi() {
            assert!((t.pmf_at(k) - pmf(n, p, k).unwrap()).abs() < 1e-12);
            assert!((t.cdf_at(k) - cdf(n, p, k).unwrap()).abs() < 1e-9);
            assert!((t.sf_at(k) - (1.0 - cdf(n, p, k).unwrap())).abs() < 1e-9);
        }
    }

    #[test]
    fn tail_table_saturates_outside_window() {
        let t = TailTable::new(1u64 << 20, 0.5).unwrap();
        // The effective support of Binomial(2²⁰, ½) is a few thousand wide;
        // far tails must saturate without being tabulated.
        assert!(t.hi() - t.lo() < 40_000);
        assert_eq!(t.pmf_at(0), 0.0);
        assert_eq!(t.cdf_at(0), 0.0);
        assert_eq!(t.cdf_at(1u64 << 20), 1.0);
        assert_eq!(t.sf_at(1u64 << 20), 0.0);
    }

    #[test]
    fn tail_table_degenerate_cases() {
        for (n, p, at) in [(0u64, 0.3, 0u64), (10, 0.0, 0), (10, 1.0, 10)] {
            let t = TailTable::new(n, p).unwrap();
            assert_eq!((t.lo(), t.hi()), (at, at));
            assert_eq!(t.pmf_at(at), 1.0);
            assert_eq!(t.cdf_at(at), 1.0);
        }
        assert!(TailTable::new(5, 1.5).is_err());
    }

    #[test]
    fn majority_prob_small_cases_exact() {
        // n = 1: win iff the single observation is a 1 (no tie possible).
        assert!((majority_prob(1, 0.3).unwrap() - 0.3).abs() < 1e-12);
        // n = 2, p = ½: P(X=2) + ½P(X=1) = ¼ + ¼ = ½.
        assert!((majority_prob(2, 0.5).unwrap() - 0.5).abs() < 1e-12);
        // Empty vote: pure coin.
        assert!((majority_prob(0, 0.9).unwrap() - 0.5).abs() < 1e-12);
        // Symmetry: p = ½ is a coin for every n.
        for n in [3u64, 4, 51, 1000] {
            assert!((majority_prob(n, 0.5).unwrap() - 0.5).abs() < 1e-9);
        }
        assert!(majority_prob(5, -0.1).is_err());
    }

    #[test]
    fn majority_prob_matches_brute_force() {
        for &(n, p) in &[(51u64, 0.3), (50, 0.55), (64, 0.48)] {
            let mut want = 0.0;
            for k in 0..=n {
                let mass = pmf(n, p, k).unwrap();
                match (2 * k).cmp(&n) {
                    std::cmp::Ordering::Greater => want += mass,
                    std::cmp::Ordering::Equal => want += 0.5 * mass,
                    std::cmp::Ordering::Less => {}
                }
            }
            let got = majority_prob(n, p).unwrap();
            assert!((got - want).abs() < 1e-10, "n={n} p={p}: {got} vs {want}");
        }
    }

    #[test]
    fn exceeds_prob_symmetric_case_is_half() {
        // X and Y i.i.d. ⟹ P(X > Y) + ½P(X = Y) = ½ exactly.
        for &(n, p) in &[(40u64, 0.3), (512, 0.5), (1000, 0.05)] {
            let got = exceeds_prob(n, p, n, p).unwrap();
            assert!((got - 0.5).abs() < 1e-9, "n={n} p={p}: {got}");
        }
    }

    #[test]
    fn exceeds_prob_matches_brute_force() {
        let (nx, px, ny, py) = (30u64, 0.6, 25u64, 0.4);
        let mut want = 0.0;
        for x in 0..=nx {
            for y in 0..=ny {
                let m = pmf(nx, px, x).unwrap() * pmf(ny, py, y).unwrap();
                match x.cmp(&y) {
                    std::cmp::Ordering::Greater => want += m,
                    std::cmp::Ordering::Equal => want += 0.5 * m,
                    std::cmp::Ordering::Less => {}
                }
            }
        }
        let got = exceeds_prob(nx, px, ny, py).unwrap();
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        assert!(exceeds_prob(5, 0.5, 5, 2.0).is_err());
    }

    #[test]
    fn exceeds_prob_degenerate_edges() {
        // X ≡ nx beats any Y with support below nx.
        assert!((exceeds_prob(10, 1.0, 5, 0.5).unwrap() - 1.0).abs() < 1e-12);
        // X ≡ 0 vs Y ≡ 0: pure tie.
        assert!((exceeds_prob(10, 0.0, 7, 0.0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (50, 0.5), (100, 0.02), (17, 0.9)] {
            let total: f64 = (0..=n).map(|k| pmf(n, p, k).unwrap()).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n}, p={p}: total={total}");
        }
    }

    #[test]
    fn pmf_edge_cases() {
        assert_eq!(pmf(10, 0.0, 0).unwrap(), 1.0);
        assert_eq!(pmf(10, 0.0, 1).unwrap(), 0.0);
        assert_eq!(pmf(10, 1.0, 10).unwrap(), 1.0);
        assert_eq!(pmf(10, 0.5, 11).unwrap(), 0.0);
        assert!(pmf(10, 1.5, 0).is_err());
        assert!(pmf(10, -0.5, 0).is_err());
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let n = 30;
        let p = 0.4;
        let mut prev = 0.0;
        for k in 0..=n {
            let c = cdf(n, p, k).unwrap();
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(cdf(n, p, n).unwrap(), 1.0);
    }

    #[test]
    fn sample_edge_cases() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample(&mut rng, 0, 0.5).unwrap(), 0);
        assert_eq!(sample(&mut rng, 100, 0.0).unwrap(), 0);
        assert_eq!(sample(&mut rng, 100, 1.0).unwrap(), 100);
        assert!(sample(&mut rng, 10, 2.0).is_err());
    }

    #[test]
    fn sample_within_support() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(n, p) in &[(5u64, 0.5), (100, 0.01), (100, 0.99), (10_000, 0.3)] {
            for _ in 0..200 {
                let x = sample(&mut rng, n, p).unwrap();
                assert!(x <= n);
            }
        }
    }

    /// Kolmogorov–Smirnov check of the empirical cdf against the exact
    /// cdf, for each sampling regime (shared machinery in [`crate::ks`]).
    fn check_distribution(n: u64, p: f64, draws: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..draws {
            counts[sample(&mut rng, n, p).unwrap() as usize] += 1;
        }
        assert!(
            crate::ks::ks_passes(&counts, |k| cdf(n, p, k as u64).unwrap(), 3.0).unwrap(),
            "KS test failed for n={n}, p={p}"
        );
    }

    #[test]
    fn distribution_matches_bernoulli_regime() {
        check_distribution(12, 0.37, 100_000, 11);
    }

    #[test]
    fn distribution_matches_binv_regime() {
        check_distribution(400, 0.01, 100_000, 12);
    }

    #[test]
    fn distribution_matches_mode_inversion_regime() {
        check_distribution(300, 0.45, 100_000, 13);
    }

    #[test]
    fn distribution_matches_reflected_regime() {
        // p > 0.5 goes through the reflection path.
        check_distribution(300, 0.8, 100_000, 14);
    }

    #[test]
    fn cdf_table_rejects_bad_probability() {
        assert!(CdfTable::new(10, 1.5).is_err());
        assert!(CdfTable::new(10, -0.1).is_err());
        assert!(CdfTable::new(10, f64::NAN).is_err());
    }

    #[test]
    fn cdf_table_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(20);
        let zero = CdfTable::new(100, 0.0).unwrap();
        let one = CdfTable::new(100, 1.0).unwrap();
        let empty = CdfTable::new(0, 0.5).unwrap();
        for _ in 0..10 {
            assert_eq!(zero.sample(&mut rng), 0);
            assert_eq!(one.sample(&mut rng), 100);
            assert_eq!(empty.sample(&mut rng), 0);
        }
        assert_eq!(zero.len(), 1);
        assert!(!zero.is_empty());
    }

    #[test]
    fn cdf_table_matches_mode_inversion_bit_for_bit() {
        // In the mode-inversion regime (n > 16, np > 12, p ≤ 0.5) the
        // table performs the exact inversion `sample_from_mode` does —
        // same visit order, same tie rule, one uniform each — so the
        // draw sequences coincide exactly.
        for &(n, p, seed) in &[(300u64, 0.45, 21u64), (4096, 0.13, 22), (1000, 0.5, 23)] {
            let table = CdfTable::new(n, p).unwrap();
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            for i in 0..2000 {
                let walk = sample(&mut a, n, p).unwrap();
                let tabled = table.sample(&mut b);
                assert_eq!(walk, tabled, "draw {i} diverged for n={n}, p={p}");
            }
        }
    }

    #[test]
    fn cdf_table_distribution_matches_reflected_regime() {
        // For p > 0.5 the walk reflects but the table inverts directly, so
        // sequences differ; the laws must still agree. KS against the
        // exact cdf.
        let (n, p) = (300u64, 0.8);
        let table = CdfTable::new(n, p).unwrap();
        let mut rng = StdRng::seed_from_u64(24);
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..100_000 {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        assert!(
            crate::ks::ks_passes(&counts, |k| cdf(n, p, k as u64).unwrap(), 3.0).unwrap(),
            "KS test failed for tabled n={n}, p={p}"
        );
    }

    #[test]
    fn cdf_table_distribution_matches_small_n_regime() {
        // n ≤ 16 draws go through Bernoulli counting in `sample`; the
        // table must agree in law there too.
        let (n, p) = (12u64, 0.37);
        let table = CdfTable::new(n, p).unwrap();
        let mut rng = StdRng::seed_from_u64(25);
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..100_000 {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        assert!(
            crate::ks::ks_passes(&counts, |k| cdf(n, p, k as u64).unwrap(), 3.0).unwrap(),
            "KS test failed for tabled n={n}, p={p}"
        );
    }

    #[test]
    fn cdf_table_covers_tail_uniforms() {
        // A uniform beyond the truncated mass maps to the last (least
        // likely) tabulated value rather than panicking.
        let table = CdfTable::new(50, 0.3).unwrap();
        let k = table.sample_u01(1.0 - f64::EPSILON);
        assert!(k <= 50);
        assert_eq!(table.sample_u01(0.0), 15); // mode = floor(51 · 0.3)
    }

    #[test]
    fn large_n_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(15);
        let (n, p) = (1u64 << 24, 0.3);
        let draws = 2000;
        let mean_exact = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let mut acc = 0.0;
        for _ in 0..draws {
            acc += sample(&mut rng, n, p).unwrap() as f64;
        }
        let mean = acc / draws as f64;
        // Standard error of the mean is sd/√draws; allow 6 SEs.
        assert!(
            (mean - mean_exact).abs() < 6.0 * sd / (draws as f64).sqrt(),
            "mean {mean} vs exact {mean_exact}"
        );
    }
}
