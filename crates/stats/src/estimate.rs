//! Streaming estimators and summary statistics for experiment reporting.

use crate::{Result, StatsError};

/// Welford's online mean/variance accumulator.
///
/// Numerically stable for long streams; used by every experiment to
/// aggregate per-seed convergence times.
///
/// # Example
///
/// ```
/// use np_stats::estimate::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.count(), 8);
/// assert!((r.mean()? - 5.0).abs() < 1e-12);
/// assert!((r.population_variance()? - 4.0).abs() < 1e-12);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Same as [`Running::new`]. A derived `Default` would zero-fill `min` /
/// `max`, silently reporting a spurious minimum of `0.0` for all-positive
/// streams; the empty accumulator needs the `±∞` sentinels.
impl Default for Running {
    fn default() -> Self {
        Running::new()
    }
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] before the first observation.
    pub fn mean(&self) -> Result<f64> {
        if self.count == 0 {
            return Err(StatsError::Empty);
        }
        Ok(self.mean)
    }

    /// Population variance (divides by `count`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] before the first observation.
    pub fn population_variance(&self) -> Result<f64> {
        if self.count == 0 {
            return Err(StatsError::Empty);
        }
        Ok(self.m2 / self.count as f64)
    }

    /// Unbiased sample variance (divides by `count − 1`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] with fewer than two observations.
    pub fn sample_variance(&self) -> Result<f64> {
        if self.count < 2 {
            return Err(StatsError::Empty);
        }
        Ok(self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] with fewer than two observations.
    pub fn sample_std(&self) -> Result<f64> {
        Ok(self.sample_variance()?.sqrt())
    }

    /// Standard error of the mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] with fewer than two observations.
    pub fn standard_error(&self) -> Result<f64> {
        Ok(self.sample_std()? / (self.count as f64).sqrt())
    }

    /// Minimum observation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] before the first observation.
    pub fn min(&self) -> Result<f64> {
        if self.count == 0 {
            return Err(StatsError::Empty);
        }
        Ok(self.min)
    }

    /// Maximum observation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] before the first observation.
    pub fn max(&self) -> Result<f64> {
        if self.count == 0 {
            return Err(StatsError::Empty);
        }
        Ok(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` such that the true success probability lies inside
/// with the confidence implied by `z` (e.g. `z = 1.96` for 95%,
/// `z = 3.29` for 99.9%). More reliable than the normal interval near 0/1,
/// which is where convergence-probability estimates live.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `trials = 0`,
/// `successes > trials`, or `z ≤ 0`.
///
/// # Example
///
/// ```
/// let (lo, hi) = np_stats::estimate::wilson_interval(95, 100, 1.96)?;
/// assert!(lo > 0.85 && hi < 1.0 && lo < 0.95 && 0.95 < hi);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> Result<(f64, f64)> {
    if trials == 0 || successes > trials {
        return Err(StatsError::ParameterOutOfRange {
            name: "trials",
            range: "trials > 0 and successes ≤ trials".into(),
        });
    }
    if z <= 0.0 || !z.is_finite() {
        return Err(StatsError::ParameterOutOfRange {
            name: "z",
            range: "(0, ∞)".into(),
        });
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Ok(((center - half).max(0.0), (center + half).min(1.0)))
}

/// A batch summary of a sample: count, mean, standard deviation, extrema,
/// and percentiles.
///
/// Produced by [`Summary::from_values`] for experiment tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    values: Vec<f64>,
    running: Running,
}

impl Summary {
    /// Builds a summary from raw values.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] if `values` is empty, and
    /// [`StatsError::ParameterOutOfRange`] if any value is non-finite.
    pub fn from_values(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(StatsError::Empty);
        }
        if values.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::ParameterOutOfRange {
                name: "values",
                range: "finite".into(),
            });
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut running = Running::new();
        for &x in values {
            running.push(x);
        }
        Ok(Summary {
            values: sorted,
            running,
        })
    }

    /// Number of values.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Mean of the sample.
    pub fn mean(&self) -> f64 {
        // xtask-allow: unwrap (Summary::new rejects empty input)
        self.running.mean().expect("nonempty by construction")
    }

    /// Sample standard deviation, or 0 for a single observation.
    pub fn std(&self) -> f64 {
        self.running.sample_std().unwrap_or(0.0)
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        // xtask-allow: unwrap (Summary::new rejects empty input)
        *self.values.last().expect("nonempty")
    }

    /// Percentile by linear interpolation, `q ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadProbability`] if `q ∉ [0, 1]`.
    pub fn percentile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::BadProbability { value: q });
        }
        let n = self.values.len();
        if n == 1 {
            return Ok(self.values[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Ok(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        // xtask-allow: unwrap (0.5 is always a valid quantile)
        self.percentile(0.5).expect("0.5 is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_empty_errors() {
        let r = Running::new();
        assert_eq!(r.mean(), Err(StatsError::Empty));
        assert_eq!(r.min(), Err(StatsError::Empty));
        assert_eq!(r.max(), Err(StatsError::Empty));
        assert_eq!(r.sample_variance(), Err(StatsError::Empty));
    }

    #[test]
    fn running_default_is_empty_accumulator() {
        // Regression: a derived Default zero-filled min/max, so an
        // all-positive stream reported min() == 0.0.
        let mut r = Running::default();
        assert_eq!(r, Running::new());
        assert_eq!(r.min(), Err(StatsError::Empty));
        r.push(5.0);
        assert_eq!(r.min().unwrap(), 5.0);
        assert_eq!(r.max().unwrap(), 5.0);
        let mut neg = Running::default();
        neg.push(-5.0);
        assert_eq!(neg.max().unwrap(), -5.0);
    }

    #[test]
    fn running_single_value() {
        let mut r = Running::new();
        r.push(3.0);
        assert_eq!(r.mean().unwrap(), 3.0);
        assert_eq!(r.population_variance().unwrap(), 0.0);
        assert!(r.sample_variance().is_err());
        assert_eq!(r.min().unwrap(), 3.0);
        assert_eq!(r.max().unwrap(), 3.0);
    }

    #[test]
    fn running_matches_direct_formulas() {
        let xs = [1.5, -2.0, 7.25, 0.0, 3.5];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((r.mean().unwrap() - mean).abs() < 1e-12);
        assert!((r.sample_variance().unwrap() - var).abs() < 1e-12);
        assert!((r.standard_error().unwrap() - (var / 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-10);
        assert!((left.sample_variance().unwrap() - whole.sample_variance().unwrap()).abs() < 1e-10);
        assert_eq!(left.min().unwrap(), whole.min().unwrap());
        assert_eq!(left.max().unwrap(), whole.max().unwrap());
    }

    #[test]
    fn running_merge_with_empty() {
        let mut a = Running::new();
        a.push(1.0);
        let b = Running::new();
        let mut c = a;
        c.merge(&b);
        assert_eq!(c.count(), 1);
        let mut d = Running::new();
        d.merge(&a);
        assert_eq!(d.mean().unwrap(), 1.0);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(7, 10, 1.96).unwrap();
        assert!(lo < 0.7 && 0.7 < hi);
        // Degenerate successes.
        let (lo0, _) = wilson_interval(0, 10, 1.96).unwrap();
        assert_eq!(lo0, 0.0);
        let (_, hi1) = wilson_interval(10, 10, 1.96).unwrap();
        assert_eq!(hi1, 1.0);
    }

    #[test]
    fn wilson_interval_narrows_with_trials() {
        let (lo1, hi1) = wilson_interval(70, 100, 1.96).unwrap();
        let (lo2, hi2) = wilson_interval(700, 1000, 1.96).unwrap();
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_interval_validates() {
        assert!(wilson_interval(5, 0, 1.96).is_err());
        assert!(wilson_interval(11, 10, 1.96).is_err());
        assert!(wilson_interval(5, 10, 0.0).is_err());
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_values(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(0.0).unwrap(), 1.0);
        assert_eq!(s.percentile(1.0).unwrap(), 5.0);
        assert_eq!(s.percentile(0.25).unwrap(), 2.0);
        assert!(s.percentile(1.5).is_err());
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_values(&[7.0]).unwrap();
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.percentile(0.3).unwrap(), 7.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::from_values(&[]).is_err());
        assert!(Summary::from_values(&[1.0, f64::NAN]).is_err());
    }
}
