//! Evaluators for the concentration and anti-concentration bounds used by
//! the paper's analysis (Appendix B, and Lemmas 21/22 of Section 5.1).
//!
//! These are *formula evaluators*, not samplers: experiments use them to
//! overlay the theoretical curves on measured data, and tests use them to
//! confirm the paper's inequalities against exact binomial computations.

use crate::binomial;
use crate::{Result, StatsError};

/// Multiplicative Chernoff bound (Theorem 41):
/// for `X` a sum of i.i.d. `{0,1}` variables with mean `μ` and `δ ∈ (0,1)`,
///
/// `P(X ≤ (1 − δ)·μ) ≤ exp(−δ²μ/2)`.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `δ ∉ (0, 1)` or `μ < 0`.
pub fn chernoff_lower_tail(mu: f64, delta: f64) -> Result<f64> {
    // xtask-allow: float-eq (open-interval boundary: δ must be strictly positive)
    if !(0.0..1.0).contains(&delta) || delta == 0.0 {
        return Err(StatsError::ParameterOutOfRange {
            name: "delta",
            range: "(0, 1)".into(),
        });
    }
    if mu < 0.0 || !mu.is_finite() {
        return Err(StatsError::ParameterOutOfRange {
            name: "mu",
            range: "[0, ∞)".into(),
        });
    }
    Ok((-delta * delta * mu / 2.0).exp())
}

/// Chernoff–Hoeffding bound (Theorem 42) for `{0,1}`-valued summands:
/// `P(X ≤ μ − t), P(X ≥ μ + t) ≤ exp(−2t²/n)`.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `n = 0` or `t < 0`.
pub fn hoeffding_binary(n: u64, t: f64) -> Result<f64> {
    if n == 0 {
        return Err(StatsError::ParameterOutOfRange {
            name: "n",
            range: "positive".into(),
        });
    }
    if t < 0.0 || !t.is_finite() {
        return Err(StatsError::ParameterOutOfRange {
            name: "t",
            range: "[0, ∞)".into(),
        });
    }
    Ok((-2.0 * t * t / n as f64).exp())
}

/// General Chernoff–Hoeffding bound (Theorem 42): summands bounded in
/// `[aᵢ, bᵢ]` with `sum_sq_ranges = Σ (bᵢ − aᵢ)²`; the tail is
/// `exp(−2t²/ Σ(bᵢ−aᵢ)²)`.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `sum_sq_ranges ≤ 0` or
/// `t < 0`.
pub fn hoeffding_general(sum_sq_ranges: f64, t: f64) -> Result<f64> {
    if sum_sq_ranges <= 0.0 || !sum_sq_ranges.is_finite() {
        return Err(StatsError::ParameterOutOfRange {
            name: "sum_sq_ranges",
            range: "(0, ∞)".into(),
        });
    }
    if t < 0.0 || !t.is_finite() {
        return Err(StatsError::ParameterOutOfRange {
            name: "t",
            range: "[0, ∞)".into(),
        });
    }
    Ok((-2.0 * t * t / sum_sq_ranges).exp())
}

/// The function `g(θ, m)` of Lemma 21 (with the paper's corrected
/// definition):
///
/// * `g(θ, m) = θ·(1 − θ²)^((m−1)/2)` when `θ < 1/√m`;
/// * `g(θ, m) = (1/√m)·(1 − 1/m)^((m−1)/2)` when `θ ≥ 1/√m`.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `m = 0` or
/// `θ ∉ [0, ½]`.
pub fn lemma21_g(theta: f64, m: u64) -> Result<f64> {
    if m == 0 {
        return Err(StatsError::ParameterOutOfRange {
            name: "m",
            range: "positive".into(),
        });
    }
    if !(0.0..=0.5).contains(&theta) {
        return Err(StatsError::ParameterOutOfRange {
            name: "theta",
            range: "[0, 1/2]".into(),
        });
    }
    let mf = m as f64;
    let half_exp = (mf - 1.0) / 2.0;
    Ok(if theta < 1.0 / mf.sqrt() {
        theta * (1.0 - theta * theta).powf(half_exp)
    } else {
        (1.0 / mf.sqrt()) * (1.0 - 1.0 / mf).powf(half_exp)
    })
}

/// Lemma 22's anti-concentration lower bound: for `X` a sum of `m` i.i.d.
/// `Rad(½ + θ)` variables with `0 ≤ θ ≤ ½`,
///
/// `P(X > 0) − P(X < 0) ≥ √(2/(π·e·m)) · min{√m·θ, 1}`.
///
/// This is the quantity the paper calls the *sign advantage* — the engine of
/// weak-opinion correctness.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `m = 0` or `θ ∉ [0, ½]`.
///
/// # Example
///
/// ```
/// use np_stats::concentration::lemma22_lower_bound;
/// use np_stats::rademacher::exact_sign_advantage;
///
/// // The bound must lower-bound the exact advantage.
/// let m = 401;
/// let theta = 0.02;
/// let bound = lemma22_lower_bound(theta, m)?;
/// let exact = exact_sign_advantage(m, theta)?;
/// assert!(bound <= exact);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
pub fn lemma22_lower_bound(theta: f64, m: u64) -> Result<f64> {
    if m == 0 {
        return Err(StatsError::ParameterOutOfRange {
            name: "m",
            range: "positive".into(),
        });
    }
    if !(0.0..=0.5).contains(&theta) {
        return Err(StatsError::ParameterOutOfRange {
            name: "theta",
            range: "[0, 1/2]".into(),
        });
    }
    let mf = m as f64;
    let pref = (2.0 / (std::f64::consts::PI * std::f64::consts::E * mf)).sqrt();
    Ok(pref * (mf.sqrt() * theta).min(1.0))
}

/// Exact tail `P(Binomial(m, ½ + θ) ≥ ⌈m/2⌉) − P(Binomial(m, ½ + θ) ≤ ⌊m/2⌋ − ...)`
/// — the "more heads than tails" advantage of Lemma 21, computed exactly.
///
/// Returns `P(B ≥ m/2) − P(B < m/2)` where `B ~ Binomial(m, ½ + θ)`.
///
/// # Errors
///
/// Returns [`StatsError::BadProbability`] if `½ + θ ∉ [0, 1]`.
pub fn exact_majority_advantage(theta: f64, m: u64) -> Result<f64> {
    let p = 0.5 + theta;
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::BadProbability { value: p });
    }
    let mut ge = 0.0;
    let mut lt = 0.0;
    for k in 0..=m {
        let mass = binomial::pmf(m, p, k)?;
        if 2 * k >= m {
            ge += mass;
        } else {
            lt += mass;
        }
    }
    Ok(ge - lt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rademacher::exact_sign_advantage;

    #[test]
    fn chernoff_basic_properties() {
        // Tighter δ or larger μ ⇒ smaller bound.
        let a = chernoff_lower_tail(100.0, 0.1).unwrap();
        let b = chernoff_lower_tail(100.0, 0.5).unwrap();
        let c = chernoff_lower_tail(1000.0, 0.1).unwrap();
        assert!(b < a && c < a);
        assert!(a <= 1.0 && b > 0.0);
        assert!(chernoff_lower_tail(100.0, 0.0).is_err());
        assert!(chernoff_lower_tail(100.0, 1.0).is_err());
        assert!(chernoff_lower_tail(-1.0, 0.5).is_err());
    }

    #[test]
    fn chernoff_actually_bounds_binomial_tail() {
        // X ~ Binomial(200, 0.5), μ = 100: P(X ≤ 80) ≤ exp(−0.04·100/2).
        let n = 200u64;
        let p = 0.5;
        let mu = n as f64 * p;
        let delta = 0.2;
        let cutoff = ((1.0 - delta) * mu).floor() as u64;
        let tail = binomial::cdf(n, p, cutoff).unwrap();
        assert!(tail <= chernoff_lower_tail(mu, delta).unwrap());
    }

    #[test]
    fn hoeffding_bounds_binomial_tails() {
        let n = 300u64;
        let p = 0.4;
        let mu = n as f64 * p;
        for t in [5.0, 10.0, 25.0] {
            let bound = hoeffding_binary(n, t).unwrap();
            let lower = binomial::cdf(n, p, (mu - t).floor() as u64).unwrap();
            assert!(lower <= bound + 1e-12, "t={t}: {lower} > {bound}");
        }
        assert!(hoeffding_binary(0, 1.0).is_err());
        assert!(hoeffding_binary(10, -1.0).is_err());
    }

    #[test]
    fn hoeffding_general_matches_binary_special_case() {
        // {0,1} summands: ranges all 1, Σ(bᵢ−aᵢ)² = n.
        let a = hoeffding_binary(50, 7.0).unwrap();
        let b = hoeffding_general(50.0, 7.0).unwrap();
        assert!((a - b).abs() < 1e-15);
        assert!(hoeffding_general(0.0, 1.0).is_err());
    }

    #[test]
    fn lemma21_g_regimes_and_validation() {
        // Small θ regime.
        let g1 = lemma21_g(0.001, 100).unwrap();
        assert!((g1 - 0.001 * (1.0 - 1e-6f64).powf(49.5)).abs() < 1e-9);
        // Large θ regime: independent of θ.
        let g2 = lemma21_g(0.3, 100).unwrap();
        let g3 = lemma21_g(0.45, 100).unwrap();
        assert_eq!(g2, g3);
        assert!(lemma21_g(0.6, 100).is_err());
        assert!(lemma21_g(0.1, 0).is_err());
    }

    #[test]
    fn lemma22_bound_below_exact_advantage() {
        // The whole point of the bound: it must hold against exact values
        // across regimes.
        for &m in &[11u64, 51, 101, 501, 1001] {
            for &theta in &[0.0, 0.001, 0.01, 0.05, 0.2, 0.4] {
                let bound = lemma22_lower_bound(theta, m).unwrap();
                let exact = exact_sign_advantage(m, theta).unwrap();
                assert!(
                    bound <= exact + 1e-12,
                    "m={m}, θ={theta}: bound {bound} > exact {exact}"
                );
            }
        }
    }

    #[test]
    fn lemma22_bound_validation() {
        assert!(lemma22_lower_bound(0.1, 0).is_err());
        assert!(lemma22_lower_bound(0.7, 10).is_err());
    }

    #[test]
    fn exact_majority_advantage_at_half_is_tie_mass() {
        // At θ = 0 the advantage equals P(B = m/2) for even m (ties count
        // as "≥"), and 0 for odd m.
        let even = exact_majority_advantage(0.0, 10).unwrap();
        assert!((even - binomial::pmf(10, 0.5, 5).unwrap()).abs() < 1e-12);
        let odd = exact_majority_advantage(0.0, 11).unwrap();
        assert!(odd.abs() < 1e-12);
    }

    #[test]
    fn lemma21_bound_with_g_holds() {
        // Lemma 21: P(B ≥ m/2) − P(B < m/2) ≥ √(2/π)·g(θ, m)
        // (checked numerically, since the transcription of the constant in
        // the source text is unreliable).
        let pref = (2.0 / std::f64::consts::PI).sqrt();
        for &m in &[10u64, 100, 500] {
            for &theta in &[0.01, 0.05, 0.2] {
                let lhs = exact_majority_advantage(theta, m).unwrap();
                let rhs = pref * lemma21_g(theta, m).unwrap();
                assert!(lhs >= rhs - 1e-12, "m={m}, θ={theta}: {lhs} < {rhs}");
            }
        }
    }
}
