use std::fmt;

/// Errors produced by the statistics toolkit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A weight vector for categorical sampling was empty, contained
    /// negative/non-finite entries, or summed to zero.
    BadWeights {
        /// Description of the violation.
        detail: String,
    },
    /// A probability parameter was outside `[0, 1]`.
    BadProbability {
        /// The offending value.
        value: f64,
    },
    /// A numeric parameter was outside its admissible range.
    ParameterOutOfRange {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the admissible range.
        range: String,
    },
    /// Two empirical distributions had different support sizes.
    SupportMismatch {
        /// Support size of the left distribution.
        left: usize,
        /// Support size of the right distribution.
        right: usize,
    },
    /// An estimator was queried before receiving any observations.
    Empty,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::BadWeights { detail } => write!(f, "bad weights: {detail}"),
            StatsError::BadProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            StatsError::ParameterOutOfRange { name, range } => {
                write!(f, "parameter `{name}` outside {range}")
            }
            StatsError::SupportMismatch { left, right } => {
                write!(f, "support mismatch: {left} vs {right}")
            }
            StatsError::Empty => write!(f, "estimator has no observations"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let variants = [
            StatsError::BadWeights {
                detail: "empty".into(),
            },
            StatsError::BadProbability { value: 1.5 },
            StatsError::ParameterOutOfRange {
                name: "m",
                range: "positive".into(),
            },
            StatsError::SupportMismatch { left: 2, right: 3 },
            StatsError::Empty,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
