//! Probability and statistics toolkit for the noisy PULL reproduction.
//!
//! Everything random in this workspace flows through this crate:
//!
//! * [`alias`] — Vose's alias method for O(1) sampling from categorical
//!   distributions (rows of noise matrices).
//! * [`binomial`] — an exact binomial sampler (inversion for small means,
//!   inversion-from-the-mode for large ones) plus log-factorials and pmf/cdf
//!   evaluation. This powers the engine's *aggregated channel*, which
//!   replaces `Θ(n·h)` per-round message draws with a handful of binomial
//!   draws per agent while preserving the exact joint distribution.
//! * [`multinomial`] — multinomial splitting via conditional binomials.
//! * [`hypergeometric`] — exact without-replacement sampling (univariate
//!   and multivariate), for the engine's sampling-mode robustness check.
//! * [`rademacher`] — Rademacher variables and sums (Definition 18 of the
//!   paper), the language of the weak-opinion analysis.
//! * [`concentration`] — evaluators for the paper's probabilistic tools:
//!   multiplicative Chernoff (Theorem 41), Chernoff–Hoeffding (Theorem 42),
//!   and the anti-concentration bounds of Lemmas 21/22.
//! * [`estimate`] — Welford running statistics, Wilson score intervals,
//!   and summary statistics (percentiles) for experiment reporting.
//! * [`hist`] — empirical categorical distributions and total-variation
//!   distance, used to verify the Theorem 8 reduction empirically.
//! * [`ks`] — Kolmogorov–Smirnov distances for validating samplers
//!   against exact cdfs.
//! * [`seeds`] — a splitmix64-based seed sequence for reproducible
//!   fan-out of parallel simulation batches.
//! * [`streams`] — counter-based per-agent RNG streams, one independent
//!   generator per `(seed, round, agent, stage)` coordinate, the basis of
//!   the engine's thread-count-invariant parallel round execution.
//!
//! # Example
//!
//! ```
//! use np_stats::alias::AliasTable;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let table = AliasTable::new(&[0.5, 0.25, 0.25])?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let draw = table.sample(&mut rng);
//! assert!(draw < 3);
//! # Ok::<(), np_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must not panic on recoverable errors (experiment workers
// would die mid-batch); tests are exempt. `.expect()` documenting an
// infallible-by-construction case is allowed but audited by
// `cargo xtask check`.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;

pub mod alias;
pub mod binomial;
pub mod concentration;
pub mod estimate;
pub mod hist;
pub mod hypergeometric;
pub mod ks;
pub mod multinomial;
pub mod rademacher;
pub mod seeds;
pub mod streams;

pub use error::StatsError;

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
