//! Kolmogorov–Smirnov-style distances between empirical and exact
//! distributions over integer supports.
//!
//! Several test suites in this workspace verify samplers against exact
//! cdfs (the binomial sampler, the aggregated channel); this module holds
//! the shared machinery.

use crate::{Result, StatsError};

/// The KS statistic `sup_k |F̂(k) − F(k)|` for an empirical sample given
/// as per-value counts over `0..counts.len()`, against an exact cdf
/// `F(k) = cdf(k)`.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] if the counts sum to zero.
///
/// # Example
///
/// ```
/// use np_stats::ks::ks_statistic;
///
/// // Perfect fit: empirical mass (1/2, 1/2) against a fair-coin cdf.
/// let d = ks_statistic(&[50, 50], |k| if k == 0 { 0.5 } else { 1.0 })?;
/// assert!(d < 1e-12);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
pub fn ks_statistic<F: Fn(usize) -> f64>(counts: &[u64], cdf: F) -> Result<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Err(StatsError::Empty);
    }
    let mut acc = 0u64;
    let mut worst = 0.0f64;
    for (k, &c) in counts.iter().enumerate() {
        acc += c;
        let emp = acc as f64 / total as f64;
        worst = worst.max((emp - cdf(k)).abs());
    }
    Ok(worst)
}

/// An asymptotic KS critical value `c / √draws`.
///
/// `c ≈ 1.36` gives the classical 5% level; the statistical tests in this
/// workspace use `c = 3.0` (≈ `α = 1e-7`) so that seeded CI runs never
/// false-alarm while real distributional bugs — which produce `Θ(1)`
/// distances — are still caught instantly.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `draws == 0` or
/// `c ≤ 0`.
pub fn ks_critical(draws: u64, c: f64) -> Result<f64> {
    if draws == 0 {
        return Err(StatsError::ParameterOutOfRange {
            name: "draws",
            range: "positive".into(),
        });
    }
    if c <= 0.0 || !c.is_finite() {
        return Err(StatsError::ParameterOutOfRange {
            name: "c",
            range: "(0, ∞)".into(),
        });
    }
    Ok(c / (draws as f64).sqrt())
}

/// Convenience: `true` if the empirical counts pass a KS test against the
/// exact cdf at critical constant `c`.
///
/// # Errors
///
/// Propagates errors from [`ks_statistic`] and [`ks_critical`].
pub fn ks_passes<F: Fn(usize) -> f64>(counts: &[u64], cdf: F, c: f64) -> Result<bool> {
    let total: u64 = counts.iter().sum();
    let stat = ks_statistic(counts, cdf)?;
    Ok(stat < ks_critical(total, c)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_sample_is_an_error() {
        assert_eq!(ks_statistic(&[0, 0], |_| 0.5), Err(StatsError::Empty));
    }

    #[test]
    fn critical_value_validation() {
        assert!(ks_critical(0, 3.0).is_err());
        assert!(ks_critical(100, 0.0).is_err());
        assert!((ks_critical(100, 3.0).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn detects_gross_mismatch() {
        // All mass at 0 against a fair coin: distance 1/2.
        let d = ks_statistic(&[100, 0], |k| if k == 0 { 0.5 } else { 1.0 }).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
        assert!(!ks_passes(&[100, 0], |k| if k == 0 { 0.5 } else { 1.0 }, 3.0).unwrap());
    }

    #[test]
    fn binomial_sampler_passes_against_its_own_cdf() {
        let (n, p) = (60u64, 0.35);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..50_000 {
            counts[binomial::sample(&mut rng, n, p).unwrap() as usize] += 1;
        }
        assert!(ks_passes(&counts, |k| binomial::cdf(n, p, k as u64).unwrap(), 3.0).unwrap());
    }

    #[test]
    fn wrong_parameter_fails_the_test() {
        // Sample Binomial(60, 0.35) but test against p = 0.45: must fail.
        let (n, p) = (60u64, 0.35);
        let mut rng = StdRng::seed_from_u64(43);
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..50_000 {
            counts[binomial::sample(&mut rng, n, p).unwrap() as usize] += 1;
        }
        assert!(!ks_passes(&counts, |k| binomial::cdf(n, 0.45, k as u64).unwrap(), 3.0).unwrap());
    }
}
