//! Kolmogorov–Smirnov-style distances between empirical and exact
//! distributions over integer supports.
//!
//! Several test suites in this workspace verify samplers against exact
//! cdfs (the binomial sampler, the aggregated channel); this module holds
//! the shared machinery.

use crate::{Result, StatsError};

/// The KS statistic `sup_k |F̂(k) − F(k)|` for an empirical sample given
/// as per-value counts over `0..counts.len()`, against an exact cdf
/// `F(k) = cdf(k)`.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] if the counts sum to zero.
///
/// # Example
///
/// ```
/// use np_stats::ks::ks_statistic;
///
/// // Perfect fit: empirical mass (1/2, 1/2) against a fair-coin cdf.
/// let d = ks_statistic(&[50, 50], |k| if k == 0 { 0.5 } else { 1.0 })?;
/// assert!(d < 1e-12);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
pub fn ks_statistic<F: Fn(usize) -> f64>(counts: &[u64], cdf: F) -> Result<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Err(StatsError::Empty);
    }
    let mut acc = 0u64;
    let mut worst = 0.0f64;
    for (k, &c) in counts.iter().enumerate() {
        acc += c;
        let emp = acc as f64 / total as f64;
        worst = worst.max((emp - cdf(k)).abs());
    }
    Ok(worst)
}

/// An asymptotic KS critical value `c / √draws`.
///
/// `c ≈ 1.36` gives the classical 5% level; the statistical tests in this
/// workspace use `c = 3.0` (≈ `α = 1e-7`) so that seeded CI runs never
/// false-alarm while real distributional bugs — which produce `Θ(1)`
/// distances — are still caught instantly.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `draws == 0` or
/// `c ≤ 0`.
pub fn ks_critical(draws: u64, c: f64) -> Result<f64> {
    if draws == 0 {
        return Err(StatsError::ParameterOutOfRange {
            name: "draws",
            range: "positive".into(),
        });
    }
    if c <= 0.0 || !c.is_finite() {
        return Err(StatsError::ParameterOutOfRange {
            name: "c",
            range: "(0, ∞)".into(),
        });
    }
    Ok(c / (draws as f64).sqrt())
}

/// Convenience: `true` if the empirical counts pass a KS test against the
/// exact cdf at critical constant `c`.
///
/// # Errors
///
/// Propagates errors from [`ks_statistic`] and [`ks_critical`].
pub fn ks_passes<F: Fn(usize) -> f64>(counts: &[u64], cdf: F, c: f64) -> Result<bool> {
    let total: u64 = counts.iter().sum();
    let stat = ks_statistic(counts, cdf)?;
    Ok(stat < ks_critical(total, c)?)
}

/// The two-sample KS statistic `sup_x |F̂ₓ(x) − F̂ᵧ(x)|` between two
/// empirical samples.
///
/// Ties (common here — convergence-round counts are integers) are handled
/// by advancing *both* empirical cdfs past each tied value before the
/// supremum is probed, which is the standard convention and keeps the
/// statistic conservative on discrete data.
///
/// The mean-field cross-validation gate uses this to compare per-agent
/// and counts-backend trajectories; see [`ks2_p_value`] for the
/// significance level.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] if either sample is empty, and
/// [`StatsError::ParameterOutOfRange`] if any value is non-finite.
pub fn ks2_statistic(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.is_empty() || ys.is_empty() {
        return Err(StatsError::Empty);
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return Err(StatsError::ParameterOutOfRange {
            name: "sample",
            range: "finite".into(),
        });
    }
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_unstable_by(f64::total_cmp);
    b.sort_unstable_by(f64::total_cmp);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut worst = 0.0f64;
    while i < a.len() || j < b.len() {
        let x = match (a.get(i), b.get(j)) {
            (Some(&ax), Some(&bx)) => ax.min(bx),
            (Some(&ax), None) => ax,
            (None, Some(&bx)) => bx,
            (None, None) => break,
        };
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        worst = worst.max((i as f64 / na - j as f64 / nb).abs());
    }
    Ok(worst)
}

/// Asymptotic two-sided p-value for the two-sample KS statistic, via the
/// Kolmogorov distribution `Q(λ) = 2·Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}` with
/// the Stephens small-sample correction
/// `λ = (√nₑ + 0.12 + 0.11/√nₑ)·D`, `nₑ = n·m/(n+m)`.
///
/// On discrete data the tie convention in [`ks2_statistic`] makes this
/// conservative (the true p-value is at least as large), which is the
/// safe direction for a cross-validation gate that rejects on `p` below a
/// threshold.
///
/// # Errors
///
/// Propagates errors from [`ks2_statistic`].
pub fn ks2_p_value(xs: &[f64], ys: &[f64]) -> Result<f64> {
    let d = ks2_statistic(xs, ys)?;
    let ne = (xs.len() as f64) * (ys.len() as f64) / ((xs.len() + ys.len()) as f64);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    if lambda < 1e-3 {
        return Ok(1.0);
    }
    let mut acc = 0.0f64;
    let mut sign = 1.0f64;
    for k in 1..=100u32 {
        let term = (-2.0 * (k as f64).powi(2) * lambda.powi(2)).exp();
        acc += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    Ok((2.0 * acc).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_sample_is_an_error() {
        assert_eq!(ks_statistic(&[0, 0], |_| 0.5), Err(StatsError::Empty));
    }

    #[test]
    fn critical_value_validation() {
        assert!(ks_critical(0, 3.0).is_err());
        assert!(ks_critical(100, 0.0).is_err());
        assert!((ks_critical(100, 3.0).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn detects_gross_mismatch() {
        // All mass at 0 against a fair coin: distance 1/2.
        let d = ks_statistic(&[100, 0], |k| if k == 0 { 0.5 } else { 1.0 }).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
        assert!(!ks_passes(&[100, 0], |k| if k == 0 { 0.5 } else { 1.0 }, 3.0).unwrap());
    }

    #[test]
    fn binomial_sampler_passes_against_its_own_cdf() {
        let (n, p) = (60u64, 0.35);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..50_000 {
            counts[binomial::sample(&mut rng, n, p).unwrap() as usize] += 1;
        }
        assert!(ks_passes(&counts, |k| binomial::cdf(n, p, k as u64).unwrap(), 3.0).unwrap());
    }

    #[test]
    fn two_sample_statistic_identical_samples_is_zero() {
        let xs = [1.0, 2.0, 2.0, 3.0, 7.0];
        assert!(ks2_statistic(&xs, &xs).unwrap() < 1e-12);
        assert!((ks2_p_value(&xs, &xs).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_sample_statistic_disjoint_samples_is_one() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [10.0, 11.0, 12.0];
        assert!((ks2_statistic(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(ks2_p_value(&xs, &ys).unwrap() < 0.2);
    }

    #[test]
    fn two_sample_handles_ties_symmetrically() {
        // Heavily tied integer data; D must not depend on argument order.
        let xs = [1.0, 1.0, 2.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let d1 = ks2_statistic(&xs, &ys).unwrap();
        let d2 = ks2_statistic(&ys, &xs).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
        // F̂ₓ − F̂ᵧ after value 1: 2/6 − 1/6; after 2: 5/6 − 3/6.
        assert!((d1 - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_sample_same_law_has_large_p_value() {
        let (n, p) = (200u64, 0.4);
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..128)
            .map(|_| binomial::sample(&mut rng, n, p).unwrap() as f64)
            .collect();
        let ys: Vec<f64> = (0..128)
            .map(|_| binomial::sample(&mut rng, n, p).unwrap() as f64)
            .collect();
        assert!(ks2_p_value(&xs, &ys).unwrap() > 0.01);
    }

    #[test]
    fn two_sample_different_law_has_tiny_p_value() {
        let mut rng = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..128)
            .map(|_| binomial::sample(&mut rng, 200, 0.4).unwrap() as f64)
            .collect();
        let ys: Vec<f64> = (0..128)
            .map(|_| binomial::sample(&mut rng, 200, 0.55).unwrap() as f64)
            .collect();
        assert!(ks2_p_value(&xs, &ys).unwrap() < 1e-6);
    }

    #[test]
    fn two_sample_rejects_bad_input() {
        assert_eq!(ks2_statistic(&[], &[1.0]), Err(StatsError::Empty));
        assert!(ks2_statistic(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn wrong_parameter_fails_the_test() {
        // Sample Binomial(60, 0.35) but test against p = 0.45: must fail.
        let (n, p) = (60u64, 0.35);
        let mut rng = StdRng::seed_from_u64(43);
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..50_000 {
            counts[binomial::sample(&mut rng, n, p).unwrap() as usize] += 1;
        }
        assert!(!ks_passes(&counts, |k| binomial::cdf(n, 0.45, k as u64).unwrap(), 3.0).unwrap());
    }
}
