//! Multinomial sampling via conditional binomial splitting.
//!
//! Drawing `Multinomial(n; p₁, …, p_k)` as a chain of conditional binomials
//! — `X₁ ~ Binom(n, p₁)`, `X₂ ~ Binom(n − X₁, p₂/(1 − p₁))`, … — is exact
//! and costs `k` binomial draws instead of `n` categorical ones. The
//! engine's aggregated channel uses this to split "how many of my `h`
//! samples landed on each displayed symbol".

use rand::Rng;

use crate::binomial;
use crate::{Result, StatsError};

/// Draws a multinomial sample: how many of `n` independent trials landed in
/// each category, where category `i` has probability `probs[i]`.
///
/// `probs` must be non-negative and sum to 1 within `1e-9` (rows of noise
/// matrices qualify directly).
///
/// # Errors
///
/// Returns [`StatsError::BadWeights`] if `probs` is empty, has negative or
/// non-finite entries, or does not sum to 1.
///
/// # Example
///
/// ```
/// use np_stats::multinomial::sample;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let counts = sample(&mut rng, 1000, &[0.2, 0.3, 0.5])?;
/// assert_eq!(counts.iter().sum::<u64>(), 1000);
/// assert_eq!(counts.len(), 3);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
pub fn sample<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Result<Vec<u64>> {
    validate_probs(probs)?;
    Ok(sample_unchecked(rng, n, probs))
}

/// Like [`sample`] but skips validation (hot path; callers hold rows of
/// already-validated stochastic matrices).
pub fn sample_unchecked<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
    let mut out = vec![0u64; probs.len()];
    sample_into(rng, n, probs, &mut out);
    out
}

/// Allocation-free variant of [`sample_unchecked`]: writes the counts into
/// `out`. The simulation engine calls this once per agent per round, so
/// avoiding the per-call `Vec` matters.
///
/// # Panics
///
/// Panics if `out.len() != probs.len()` or `probs` is empty.
pub fn sample_into<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64], out: &mut [u64]) {
    let k = probs.len();
    assert!(k > 0, "empty probability vector");
    assert_eq!(out.len(), k, "output buffer size mismatch");
    out.fill(0);
    let mut remaining_n = n;
    let mut remaining_p = 1.0;
    for i in 0..k {
        if remaining_n == 0 {
            break;
        }
        if i == k - 1 {
            out[i] = remaining_n;
            break;
        }
        // Conditional probability of category i among the remaining mass,
        // clamped against float drift. Entries pushed slightly negative by
        // upstream accumulation (e.g. a collapsed channel law) are treated
        // as zero — identical to the valid-input path, never a panic.
        let pi = probs[i].max(0.0);
        let cond = (pi / remaining_p).clamp(0.0, 1.0);
        let x = binomial::sample_unchecked(rng, remaining_n, cond);
        out[i] = x;
        remaining_n -= x;
        remaining_p = (remaining_p - pi).max(0.0);
        if remaining_p <= 0.0 {
            // All residual categories have zero probability.
            break;
        }
    }
}

/// Completes a multinomial draw whose *first*-category count was sampled
/// elsewhere (e.g. from a cached [`binomial::CdfTable`]): writes `first`
/// into `out[0]` and fills `out[1..]` with the conditional chain over the
/// remaining `n - first` trials. When `first ~ Binomial(n, probs[0])`,
/// the joint law of `out` equals [`sample_into`]'s — this is just the
/// chain with its head draw factored out.
///
/// # Panics
///
/// Panics if `out.len() != probs.len()`, `probs` is empty, or
/// `first > n`.
pub fn sample_given_first<R: Rng + ?Sized>(
    rng: &mut R,
    n: u64,
    probs: &[f64],
    first: u64,
    out: &mut [u64],
) {
    let k = probs.len();
    assert!(k > 0, "empty probability vector");
    assert_eq!(out.len(), k, "output buffer size mismatch");
    assert!(first <= n, "first-category count {first} exceeds n = {n}");
    out.fill(0);
    out[0] = first;
    let mut remaining_n = n - first;
    let mut remaining_p = (1.0 - probs[0].max(0.0)).max(0.0);
    for i in 1..k {
        if remaining_n == 0 {
            break;
        }
        if i == k - 1 {
            out[i] = remaining_n;
            break;
        }
        if remaining_p <= 0.0 {
            // No residual mass but trials remain (float drift put the head
            // draw past the representable tail): dump into the last
            // category, mirroring `sample_into`'s remainder rule.
            out[k - 1] = remaining_n;
            return;
        }
        // Same drift guard as `sample_into`: slightly negative entries act
        // as zero-probability categories.
        let pi = probs[i].max(0.0);
        let cond = (pi / remaining_p).clamp(0.0, 1.0);
        let x = binomial::sample_unchecked(rng, remaining_n, cond);
        out[i] = x;
        remaining_n -= x;
        remaining_p = (remaining_p - pi).max(0.0);
    }
}

fn validate_probs(probs: &[f64]) -> Result<()> {
    if probs.is_empty() {
        return Err(StatsError::BadWeights {
            detail: "empty probability vector".into(),
        });
    }
    if let Some(p) = probs.iter().find(|p| !p.is_finite() || **p < 0.0) {
        return Err(StatsError::BadWeights {
            detail: format!("invalid probability {p}"),
        });
    }
    let total: f64 = probs.iter().sum();
    if (total - 1.0).abs() > 1e-9 {
        return Err(StatsError::BadWeights {
            detail: format!("probabilities sum to {total}, expected 1"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_probs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample(&mut rng, 10, &[]).is_err());
        assert!(sample(&mut rng, 10, &[0.5, 0.6]).is_err());
        assert!(sample(&mut rng, 10, &[1.5, -0.5]).is_err());
        assert!(sample(&mut rng, 10, &[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn counts_sum_to_n() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let counts = sample(&mut rng, 997, &[0.1, 0.2, 0.3, 0.4]).unwrap();
            assert_eq!(counts.iter().sum::<u64>(), 997);
        }
    }

    #[test]
    fn zero_probability_categories_stay_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let counts = sample(&mut rng, 500, &[0.5, 0.0, 0.5]).unwrap();
            assert_eq!(counts[1], 0);
        }
    }

    #[test]
    fn degenerate_distribution_puts_all_in_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let counts = sample(&mut rng, 42, &[0.0, 1.0, 0.0]).unwrap();
        assert_eq!(counts, vec![0, 42, 0]);
    }

    #[test]
    fn n_zero_gives_zero_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts = sample(&mut rng, 0, &[0.25, 0.75]).unwrap();
        assert_eq!(counts, vec![0, 0]);
    }

    #[test]
    fn marginal_frequencies_match() {
        let probs = [0.15, 0.35, 0.5];
        let mut rng = StdRng::seed_from_u64(5);
        let n_per = 1000u64;
        let reps = 2000usize;
        let mut sums = [0u64; 3];
        for _ in 0..reps {
            let counts = sample(&mut rng, n_per, &probs).unwrap();
            for (s, c) in sums.iter_mut().zip(&counts) {
                *s += c;
            }
        }
        let total = (n_per as f64) * (reps as f64);
        for (i, &s) in sums.iter().enumerate() {
            let got = s as f64 / total;
            assert!(
                (got - probs[i]).abs() < 0.005,
                "category {i}: got {got}, want {}",
                probs[i]
            );
        }
    }

    #[test]
    fn single_category_gets_everything() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(sample(&mut rng, 13, &[1.0]).unwrap(), vec![13]);
    }

    #[test]
    fn sample_into_matches_allocating_variant() {
        let probs = [0.25, 0.25, 0.5];
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut buf = [0u64; 3];
        for _ in 0..50 {
            let owned = sample_unchecked(&mut a, 100, &probs);
            sample_into(&mut b, 100, &probs, &mut buf);
            assert_eq!(owned.as_slice(), buf.as_slice());
        }
    }

    #[test]
    fn sample_given_first_matches_chain_bit_for_bit() {
        // Drawing the head with the same generator and handing it to
        // `sample_given_first` must reproduce `sample_into` exactly: the
        // helper is the chain with its first draw factored out.
        let probs = [0.3, 0.25, 0.25, 0.2];
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut whole = [0u64; 4];
        let mut split = [0u64; 4];
        for _ in 0..200 {
            sample_into(&mut a, 500, &probs, &mut whole);
            let first = crate::binomial::sample_unchecked(&mut b, 500, probs[0]);
            sample_given_first(&mut b, 500, &probs, first, &mut split);
            assert_eq!(whole, split);
        }
    }

    #[test]
    fn sample_given_first_conserves_n() {
        let probs = [0.6, 0.1, 0.3];
        let mut rng = StdRng::seed_from_u64(10);
        let mut out = [0u64; 3];
        for first in [0u64, 1, 250, 499, 500] {
            sample_given_first(&mut rng, 500, &probs, first, &mut out);
            assert_eq!(out[0], first);
            assert_eq!(out.iter().sum::<u64>(), 500);
        }
    }

    #[test]
    fn sample_given_first_two_categories_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = [0u64; 2];
        sample_given_first(&mut rng, 100, &[0.4, 0.6], 37, &mut out);
        assert_eq!(out, [37, 63]);
    }

    #[test]
    #[should_panic(expected = "exceeds n")]
    fn sample_given_first_rejects_overdraw() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut out = [0u64; 2];
        sample_given_first(&mut rng, 10, &[0.5, 0.5], 11, &mut out);
    }

    #[test]
    fn drifted_negative_entries_act_as_zero() {
        // A collapsed channel law can carry −1e-17-scale entries from float
        // accumulation. The unchecked path must treat them as zero
        // categories, not panic or skew the remainder chain.
        let drifted = [0.5, -1e-17, 0.5 + 1e-17];
        let mut rng = StdRng::seed_from_u64(20);
        let mut buf = [0u64; 3];
        for _ in 0..50 {
            sample_into(&mut rng, 400, &drifted, &mut buf);
            assert_eq!(buf[1], 0);
            assert_eq!(buf.iter().sum::<u64>(), 400);
        }
        let mut out = [0u64; 3];
        sample_given_first(&mut rng, 400, &drifted, 123, &mut out);
        assert_eq!(out[1], 0);
        assert_eq!(out.iter().sum::<u64>(), 400);
    }

    #[test]
    fn drift_guard_is_bit_identical_on_valid_input() {
        // `max(0.0)` must be a no-op for genuinely non-negative laws: the
        // guarded chain reproduces an unguarded reference chain draw for
        // draw, so seeded trajectories recorded before the guard existed
        // stay valid.
        let probs = [0.3, 0.25, 0.25, 0.2];
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        let mut buf = [0u64; 4];
        for _ in 0..100 {
            sample_into(&mut a, 777, &probs, &mut buf);
            // Unguarded conditional-binomial chain, as written pre-guard.
            let mut reference = [0u64; 4];
            let mut remaining_n = 777u64;
            let mut remaining_p = 1.0f64;
            for i in 0..4 {
                if remaining_n == 0 {
                    break;
                }
                if i == 3 {
                    reference[i] = remaining_n;
                    break;
                }
                let cond = (probs[i] / remaining_p).clamp(0.0, 1.0);
                let x = binomial::sample_unchecked(&mut b, remaining_n, cond);
                reference[i] = x;
                remaining_n -= x;
                remaining_p = (remaining_p - probs[i]).max(0.0);
                if remaining_p <= 0.0 {
                    break;
                }
            }
            assert_eq!(buf, reference);
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn sample_into_checks_buffer_size() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut buf = [0u64; 2];
        sample_into(&mut rng, 10, &[0.5, 0.25, 0.25], &mut buf);
    }
}
