//! Exact hypergeometric sampling — drawing without replacement.
//!
//! The paper's model samples *with* replacement; the engine offers a
//! without-replacement variant as a robustness check (experiment
//! EXP-REPLACE). The aggregated channel then needs multivariate
//! hypergeometric splits ("which displayed symbols did my `h` distinct
//! samples hit"), built from this univariate sampler by sequential
//! conditioning — exactly mirroring the multinomial construction in
//! [`crate::multinomial`].

use rand::Rng;

use crate::binomial::ln_choose;
use crate::{Result, StatsError};

/// The hypergeometric pmf: probability of `k` successes when drawing
/// `draws` items without replacement from a population of `total` items
/// containing `successes` successes.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `successes > total` or
/// `draws > total`.
pub fn pmf(total: u64, successes: u64, draws: u64, k: u64) -> Result<f64> {
    validate(total, successes, draws)?;
    let failures = total - successes;
    if k > draws || k > successes || draws - k > failures {
        return Ok(0.0);
    }
    let ln_p = ln_choose(successes, k) + ln_choose(failures, draws - k) - ln_choose(total, draws);
    Ok(ln_p.exp())
}

fn validate(total: u64, successes: u64, draws: u64) -> Result<()> {
    if successes > total {
        return Err(StatsError::ParameterOutOfRange {
            name: "successes",
            range: format!("0..={total}"),
        });
    }
    if draws > total {
        return Err(StatsError::ParameterOutOfRange {
            name: "draws",
            range: format!("0..={total}"),
        });
    }
    Ok(())
}

/// Draws one hypergeometric sample, exactly, by inversion from the mode —
/// `O(σ)` expected steps, the same scheme as the binomial sampler.
///
/// # Errors
///
/// Returns [`StatsError::ParameterOutOfRange`] if `successes > total` or
/// `draws > total`.
///
/// # Example
///
/// ```
/// use np_stats::hypergeometric::sample;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// // Draw all items: deterministic count.
/// assert_eq!(sample(&mut rng, 10, 4, 10)?, 4);
/// # Ok::<(), np_stats::StatsError>(())
/// ```
pub fn sample<R: Rng + ?Sized>(rng: &mut R, total: u64, successes: u64, draws: u64) -> Result<u64> {
    validate(total, successes, draws)?;
    Ok(sample_unchecked(rng, total, successes, draws))
}

/// Like [`sample`] without the validation (hot path).
///
/// # Panics
///
/// Debug-asserts the parameter constraints.
pub fn sample_unchecked<R: Rng + ?Sized>(
    rng: &mut R,
    total: u64,
    successes: u64,
    draws: u64,
) -> u64 {
    debug_assert!(successes <= total && draws <= total);
    if draws == 0 || successes == 0 {
        return 0;
    }
    if successes == total {
        return draws;
    }
    if draws == total {
        return successes;
    }
    // Support bounds.
    let failures = total - successes;
    let k_min = draws.saturating_sub(failures);
    let k_max = draws.min(successes);
    if k_min == k_max {
        return k_min;
    }
    // Mode of the hypergeometric.
    let mode =
        (((draws + 1) as f64) * ((successes + 1) as f64) / ((total + 2) as f64)).floor() as u64;
    let mode = mode.clamp(k_min, k_max);
    // xtask-allow: unwrap (parameters validated by the public `sample` wrapper)
    let pmf_mode = pmf(total, successes, draws, mode).expect("validated");
    let mut u = rng.gen::<f64>() - pmf_mode;
    if u <= 0.0 {
        return mode;
    }
    // Two-sided walk from the mode using the pmf ratio
    // pmf(k+1)/pmf(k) = (successes−k)(draws−k) / ((k+1)(failures−draws+k+1)).
    let ratio_up = |k: u64| -> f64 {
        ((successes - k) as f64 * (draws - k) as f64)
            / ((k + 1) as f64 * (failures + k + 1 - draws) as f64)
    };
    let mut lo = mode;
    let mut hi = mode;
    let mut pmf_lo = pmf_mode;
    let mut pmf_hi = pmf_mode;
    loop {
        let can_left = lo > k_min;
        let can_right = hi < k_max;
        if !can_left && !can_right {
            return mode;
        }
        let next_left = if can_left {
            pmf_lo / ratio_up(lo - 1)
        } else {
            -1.0
        };
        let next_right = if can_right {
            pmf_hi * ratio_up(hi)
        } else {
            -1.0
        };
        if next_right >= next_left {
            hi += 1;
            pmf_hi = next_right;
            u -= pmf_hi;
            if u <= 0.0 {
                return hi;
            }
        } else {
            lo -= 1;
            pmf_lo = next_left;
            u -= pmf_lo;
            if u <= 0.0 {
                return lo;
            }
        }
    }
}

/// Multivariate hypergeometric split, allocation-free: how many of the
/// `draws` without-replacement samples landed in each category, where
/// category `i` holds `counts[i]` items.
///
/// # Panics
///
/// Panics if `out.len() != counts.len()`, `counts` is empty, or
/// `draws > Σ counts`.
pub fn sample_multivariate_into<R: Rng + ?Sized>(
    rng: &mut R,
    counts: &[u64],
    draws: u64,
    out: &mut [u64],
) {
    assert!(!counts.is_empty(), "empty category counts");
    assert_eq!(out.len(), counts.len(), "output buffer size mismatch");
    let mut remaining_total: u64 = counts.iter().sum();
    assert!(
        draws <= remaining_total,
        "cannot draw {draws} from {remaining_total}"
    );
    out.fill(0);
    let mut remaining_draws = draws;
    for (i, &c) in counts.iter().enumerate() {
        if remaining_draws == 0 {
            break;
        }
        if i == counts.len() - 1 {
            out[i] = remaining_draws;
            break;
        }
        let x = sample_unchecked(rng, remaining_total, c, remaining_draws);
        out[i] = x;
        remaining_draws -= x;
        remaining_total -= c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        for &(t, s, d) in &[(20u64, 7u64, 5u64), (50, 25, 50), (10, 10, 3), (30, 1, 30)] {
            let total: f64 = (0..=d).map(|k| pmf(t, s, d, k).unwrap()).sum();
            assert!((total - 1.0).abs() < 1e-10, "t={t} s={s} d={d}: {total}");
        }
    }

    #[test]
    fn pmf_validation() {
        assert!(pmf(10, 11, 5, 1).is_err());
        assert!(pmf(10, 5, 11, 1).is_err());
        assert_eq!(pmf(10, 5, 5, 6).unwrap(), 0.0);
    }

    #[test]
    fn degenerate_draws() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample(&mut rng, 10, 5, 0).unwrap(), 0);
        assert_eq!(sample(&mut rng, 10, 0, 5).unwrap(), 0);
        assert_eq!(sample(&mut rng, 10, 10, 7).unwrap(), 7);
        assert_eq!(sample(&mut rng, 10, 4, 10).unwrap(), 4);
        assert!(sample(&mut rng, 10, 11, 1).is_err());
    }

    #[test]
    fn support_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        // total=10, successes=7, draws=6: k ∈ [3, 6].
        for _ in 0..500 {
            let k = sample(&mut rng, 10, 7, 6).unwrap();
            assert!((3..=6).contains(&k));
        }
    }

    #[test]
    fn distribution_matches_pmf() {
        let (t, s, d) = (40u64, 15u64, 12u64);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u64; (d + 1) as usize];
        let trials = 100_000;
        for _ in 0..trials {
            counts[sample(&mut rng, t, s, d).unwrap() as usize] += 1;
        }
        let cdf = |k: usize| -> f64 {
            (0..=k as u64)
                .map(|i| pmf(t, s, d, i).unwrap())
                .sum::<f64>()
                .min(1.0)
        };
        assert!(crate::ks::ks_passes(&counts, cdf, 3.0).unwrap());
    }

    #[test]
    fn mean_matches_formula() {
        let (t, s, d) = (1000u64, 300u64, 500u64);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 4000;
        let mut acc = 0.0;
        for _ in 0..trials {
            acc += sample(&mut rng, t, s, d).unwrap() as f64;
        }
        let mean = acc / trials as f64;
        let expect = d as f64 * s as f64 / t as f64; // 150
                                                     // Variance = d·(s/t)(1−s/t)·(t−d)/(t−1) ≈ 52.6 → σ ≈ 7.25.
        assert!((mean - expect).abs() < 6.0 * 7.25 / (trials as f64).sqrt());
    }

    #[test]
    fn multivariate_counts_sum_and_respect_capacities() {
        let counts = [5u64, 0, 12, 3];
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = [0u64; 4];
        for draws in [0u64, 1, 10, 20] {
            sample_multivariate_into(&mut rng, &counts, draws, &mut out);
            assert_eq!(out.iter().sum::<u64>(), draws);
            for (o, c) in out.iter().zip(&counts) {
                assert!(o <= c, "drew {o} from a category of {c}");
            }
        }
    }

    #[test]
    fn multivariate_draw_all_returns_counts() {
        let counts = [2u64, 7, 1];
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = [0u64; 3];
        sample_multivariate_into(&mut rng, &counts, 10, &mut out);
        assert_eq!(out, counts);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn multivariate_overdraw_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut out = [0u64; 2];
        sample_multivariate_into(&mut rng, &[1, 2], 4, &mut out);
    }

    #[test]
    fn multivariate_marginals_match_univariate() {
        // The first category's marginal must be HG(total, c0, draws).
        let counts = [6u64, 14];
        let mut rng = StdRng::seed_from_u64(7);
        let mut out = [0u64; 2];
        let trials = 60_000;
        let mut hist = vec![0u64; 7];
        for _ in 0..trials {
            sample_multivariate_into(&mut rng, &counts, 8, &mut out);
            hist[out[0] as usize] += 1;
        }
        let cdf = |k: usize| -> f64 {
            (0..=k as u64)
                .map(|i| pmf(20, 6, 8, i).unwrap())
                .sum::<f64>()
                .min(1.0)
        };
        assert!(crate::ks::ks_passes(&hist, cdf, 3.0).unwrap());
    }
}
