//! Empirical categorical distributions and distances between them.
//!
//! Used by the Theorem 8 verification experiment: simulate the channel
//! `N` followed by artificial noise `P` a million times, histogram the
//! observed symbols per displayed symbol, and check the total-variation
//! distance to the exact δ′-uniform row is within sampling error.

use crate::{Result, StatsError};

/// An empirical distribution over categories `0..k`.
///
/// # Example
///
/// ```
/// use np_stats::hist::Histogram;
///
/// let mut h = Histogram::new(3);
/// h.record(0);
/// h.record(2);
/// h.record(2);
/// assert_eq!(h.total(), 3);
/// assert!((h.frequency(2) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram over `k` categories.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "histogram needs at least one category");
        Histogram {
            counts: vec![0; k],
            total: 0,
        }
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.counts.len()
    }

    /// Records one observation of `category`.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn record(&mut self, category: usize) {
        self.counts[category] += 1;
        self.total += 1;
    }

    /// Records `count` observations of `category` at once.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn record_many(&mut self, category: usize, count: u64) {
        self.counts[category] += count;
        self.total += count;
    }

    /// Raw count for a category.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn count(&self, category: usize) -> u64 {
        self.counts[category]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical frequency of a category (0 if nothing recorded).
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn frequency(&self, category: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[category] as f64 / self.total as f64
        }
    }

    /// The empirical probability vector.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.frequency(i)).collect()
    }

    /// Total-variation distance between the empirical distribution and a
    /// reference probability vector: `½ Σ |p̂ᵢ − pᵢ|`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::SupportMismatch`] if the supports differ.
    /// * [`StatsError::Empty`] if nothing was recorded.
    pub fn tv_distance_to(&self, reference: &[f64]) -> Result<f64> {
        if reference.len() != self.counts.len() {
            return Err(StatsError::SupportMismatch {
                left: self.counts.len(),
                right: reference.len(),
            });
        }
        if self.total == 0 {
            return Err(StatsError::Empty);
        }
        Ok(self
            .frequencies()
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0)
    }

    /// Pearson χ² statistic against a reference distribution
    /// (`Σ (observedᵢ − expectedᵢ)² / expectedᵢ` over categories with
    /// `pᵢ > 0`).
    ///
    /// # Errors
    ///
    /// * [`StatsError::SupportMismatch`] if the supports differ.
    /// * [`StatsError::Empty`] if nothing was recorded.
    /// * [`StatsError::BadWeights`] if a category with `pᵢ = 0` was
    ///   observed (the statistic would be infinite).
    pub fn chi_square_to(&self, reference: &[f64]) -> Result<f64> {
        if reference.len() != self.counts.len() {
            return Err(StatsError::SupportMismatch {
                left: self.counts.len(),
                right: reference.len(),
            });
        }
        if self.total == 0 {
            return Err(StatsError::Empty);
        }
        let mut stat = 0.0;
        for (i, &p) in reference.iter().enumerate() {
            let observed = self.counts[i] as f64;
            if p <= 0.0 {
                if self.counts[i] > 0 {
                    return Err(StatsError::BadWeights {
                        detail: format!("observed category {i} with reference probability 0"),
                    });
                }
                continue;
            }
            let expected = self.total as f64 * p;
            stat += (observed - expected) * (observed - expected) / expected;
        }
        Ok(stat)
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the category counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge histograms with different supports"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_categories_panics() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn record_and_frequencies() {
        let mut h = Histogram::new(2);
        assert_eq!(h.frequency(0), 0.0);
        h.record(0);
        h.record(0);
        h.record(1);
        h.record_many(1, 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 3);
        assert_eq!(h.frequencies(), vec![0.4, 0.6]);
        assert_eq!(h.categories(), 2);
    }

    #[test]
    fn tv_distance_exact_values() {
        let mut h = Histogram::new(2);
        h.record_many(0, 50);
        h.record_many(1, 50);
        assert!((h.tv_distance_to(&[0.5, 0.5]).unwrap()).abs() < 1e-12);
        assert!((h.tv_distance_to(&[1.0, 0.0]).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tv_distance_errors() {
        let h = Histogram::new(2);
        assert_eq!(h.tv_distance_to(&[0.5, 0.5]), Err(StatsError::Empty));
        let mut h2 = Histogram::new(2);
        h2.record(0);
        assert!(matches!(
            h2.tv_distance_to(&[1.0]),
            Err(StatsError::SupportMismatch { .. })
        ));
    }

    #[test]
    fn chi_square_perfect_fit_is_zero() {
        let mut h = Histogram::new(4);
        for i in 0..4 {
            h.record_many(i, 25);
        }
        assert!((h.chi_square_to(&[0.25; 4]).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn chi_square_known_value() {
        // Observed [60, 40] vs fair: (10² / 50)·2 = 4.
        let mut h = Histogram::new(2);
        h.record_many(0, 60);
        h.record_many(1, 40);
        assert!((h.chi_square_to(&[0.5, 0.5]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_zero_probability_handling() {
        let mut h = Histogram::new(2);
        h.record_many(0, 10);
        // Observing only category 0 with reference (1, 0) is a perfect fit.
        assert_eq!(h.chi_square_to(&[1.0, 0.0]).unwrap(), 0.0);
        // Observing category 1 where p = 0 is an error.
        h.record(1);
        assert!(h.chi_square_to(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(2);
        a.record(0);
        let mut b = Histogram::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "different supports")]
    fn merge_mismatched_panics() {
        let mut a = Histogram::new(2);
        let b = Histogram::new(3);
        a.merge(&b);
    }
}
