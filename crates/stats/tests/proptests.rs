//! Property-based tests for the statistics substrate.

use np_stats::alias::AliasTable;
use np_stats::estimate::{wilson_interval, Running, Summary};
use np_stats::seeds::SeedSequence;
use np_stats::{binomial, multinomial, rademacher};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn binomial_pmf_sums_to_one(n in 1u64..200, p in 0.0f64..=1.0) {
        let total: f64 = (0..=n).map(|k| binomial::pmf(n, p, k).unwrap()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn binomial_cdf_is_monotone(n in 1u64..100, p in 0.0f64..=1.0) {
        let mut prev = -1.0;
        for k in 0..=n {
            let c = binomial::cdf(n, p, k).unwrap();
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn binomial_samples_stay_in_support(n in 0u64..100_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let x = binomial::sample(&mut rng, n, p).unwrap();
            prop_assert!(x <= n);
        }
    }

    #[test]
    fn binomial_sample_mean_tracks_np(n in 100u64..5000, p in 0.05f64..0.95, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 300;
        let mut acc = 0.0;
        for _ in 0..draws {
            acc += binomial::sample(&mut rng, n, p).unwrap() as f64;
        }
        let mean = acc / draws as f64;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // 6 standard errors of the mean.
        prop_assert!(
            (mean - n as f64 * p).abs() < 6.0 * sd / (draws as f64).sqrt() + 1e-9,
            "mean {mean} vs np {}", n as f64 * p
        );
    }

    #[test]
    fn multinomial_counts_sum_and_respect_zeros(
        n in 0u64..10_000,
        weights in prop::collection::vec(0.0f64..1.0, 2..8),
        seed in any::<u64>()
    ) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 0.01);
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = multinomial::sample(&mut rng, n, &probs).unwrap();
        prop_assert_eq!(counts.iter().sum::<u64>(), n);
        for (c, p) in counts.iter().zip(&probs) {
            if *p == 0.0 {
                prop_assert_eq!(*c, 0);
            }
        }
    }

    #[test]
    fn alias_table_only_emits_positive_weight_categories(
        weights in prop::collection::vec(0.0f64..10.0, 1..16),
        seed in any::<u64>()
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = table.sample(&mut rng);
            prop_assert!(weights[s] > 0.0, "sampled zero-weight category {s}");
        }
    }

    #[test]
    fn rademacher_sum_has_parity_of_m(m in 1u64..500, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = rademacher::sum(&mut rng, m, p).unwrap();
        prop_assert!(s.unsigned_abs() <= m);
        prop_assert_eq!((s + m as i64).rem_euclid(2), 0);
    }

    #[test]
    fn wilson_interval_brackets_the_point_estimate(
        successes in 0u64..100,
        extra in 1u64..100,
        z in 0.5f64..4.0
    ) {
        let trials = successes + extra;
        let (lo, hi) = wilson_interval(successes, trials, z).unwrap();
        let p_hat = successes as f64 / trials as f64;
        prop_assert!(lo <= p_hat + 1e-12 && p_hat <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn running_matches_batch_summary(xs in prop::collection::vec(-100.0f64..100.0, 1..100)) {
        let mut running = Running::new();
        for &x in &xs {
            running.push(x);
        }
        let summary = Summary::from_values(&xs).unwrap();
        prop_assert!((running.mean().unwrap() - summary.mean()).abs() < 1e-9);
        prop_assert_eq!(running.min().unwrap(), summary.min());
        prop_assert_eq!(running.max().unwrap(), summary.max());
    }

    #[test]
    fn summary_percentiles_are_monotone(xs in prop::collection::vec(-50.0f64..50.0, 2..80)) {
        let s = Summary::from_values(&xs).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let q = s.percentile(k as f64 / 10.0).unwrap();
            prop_assert!(q >= prev - 1e-12);
            prev = q;
        }
        prop_assert_eq!(s.percentile(0.0).unwrap(), s.min());
        prop_assert_eq!(s.percentile(1.0).unwrap(), s.max());
    }

    #[test]
    fn seed_sequences_are_injective_within_prefix(master in any::<u64>()) {
        let seq = SeedSequence::new(master);
        let seeds: Vec<u64> = (0..256).map(|i| seq.seed_at(i)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        prop_assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn lemma22_bound_is_valid_for_random_parameters(m in 1u64..400, theta in 0.0f64..=0.5) {
        let bound = np_stats::concentration::lemma22_lower_bound(theta, m).unwrap();
        let exact = np_stats::rademacher::exact_sign_advantage(m, theta).unwrap();
        prop_assert!(bound <= exact + 1e-9, "bound {bound} > exact {exact}");
    }
}
