//! Subcommand implementations for the `noisy-pull` CLI.

use std::path::PathBuf;
use std::sync::Arc;

use noisy_pull::adversary::SsfAdversary;
use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::{SelfStabilizingSourceFilter, SsfAgent};
use noisy_pull::theory;
use np_baselines::majority::HMajority;
use np_baselines::mean_estimator::MeanEstimator;
use np_baselines::push_spreading::{PushSpreading, PushSpreadingParams};
use np_baselines::trusting_copy::TrustingCopy;
use np_baselines::voter::ZealotVoter;
use np_bench::report::{save_trace_jsonl, RunSummary};
use np_engine::channel::ChannelKind;
use np_engine::counts::{CountsProtocol, CountsWorld};
use np_engine::faults::{recovery_times, FaultEvent, FaultPlan};
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::protocol::{Protocol, ScalarState};
use np_engine::push::PushWorld;
use np_engine::streams::StreamRng;
use np_engine::topology::TopologySpec;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

use crate::args::{Args, ArgsError};

/// Top-level error type for the CLI: every failure is reported as text.
pub type CliResult = Result<(), String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Simulation backend selected by `--backend` (sf/ssf only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// The per-agent engine: one row per agent, full fault/snapshot
    /// machinery, bit-level reproducibility.
    PerAgent,
    /// The mean-field counts engine: class counts only, distributionally
    /// equivalent to per-agent under the aggregated with-replacement
    /// channel; scales to `n = 10⁸`.
    MeanField,
}

/// Shared population/noise flags.
struct CommonFlags {
    n: usize,
    h: usize,
    s0: usize,
    s1: usize,
    delta: f64,
    seed: u64,
    exact: bool,
    threads: Option<usize>,
    digest: bool,
    /// Write the per-round JSONL trace here after the run.
    trace: Option<PathBuf>,
    /// Write the end-of-run summary JSON here after the run.
    metrics_out: Option<PathBuf>,
    /// Raw repeatable `--fault round:kind[:args]` specs.
    faults: Vec<String>,
    /// Restore the world from this `np-snap/v1` file instead of a fresh
    /// init (sf/ssf only).
    restore: Option<PathBuf>,
    /// Write periodic `np-snap/v1` checkpoints here (sf/ssf only).
    checkpoint: Option<PathBuf>,
    /// Checkpoint cadence in rounds (with `--checkpoint`).
    checkpoint_every: u64,
    /// Which engine runs the protocol (sf/ssf only).
    backend: Backend,
    /// Restrict sampling to a graph topology (sf/ssf, per-agent only).
    topology: Option<TopologySpec>,
}

impl CommonFlags {
    fn from_args(args: &Args) -> Result<Self, ArgsError> {
        let n = args.get_or("n", 1024usize)?;
        let threads = args.get_opt::<usize>("threads")?;
        if threads == Some(0) {
            return Err(ArgsError("flag --threads: must be at least 1".into()));
        }
        if let Some(t) = threads {
            // Also export the override so every downstream consumer of
            // NOISY_PULL_THREADS (batch runners, worlds built elsewhere)
            // picks it up. Thread counts never change results — this is a
            // pure performance knob.
            std::env::set_var(np_engine::runner::THREADS_ENV_VAR, t.to_string());
        }
        let checkpoint: Option<PathBuf> = args.get_opt("checkpoint")?;
        let every: Option<u64> = args.get_opt("checkpoint-every")?;
        if every == Some(0) {
            return Err(ArgsError(
                "flag --checkpoint-every: must be at least 1".into(),
            ));
        }
        if every.is_some() && checkpoint.is_none() {
            return Err(ArgsError(
                "flag --checkpoint-every: requires --checkpoint PATH".into(),
            ));
        }
        let checkpoint_every = every.unwrap_or(32);
        let backend = match args.str_or("backend", "per-agent").as_str() {
            "per-agent" => Backend::PerAgent,
            "mean-field" => Backend::MeanField,
            other => {
                return Err(ArgsError(format!(
                    "flag --backend: unknown backend `{other}`; known: per-agent, mean-field"
                )))
            }
        };
        let topology = match args.get_opt::<String>("topology")? {
            Some(text) => Some(
                TopologySpec::parse(&text)
                    .map_err(|e| ArgsError(format!("flag --topology: {e}")))?,
            ),
            None => None,
        };
        let restore: Option<PathBuf> = args.get_opt("restore")?;
        if topology.is_some() && restore.is_some() {
            return Err(ArgsError(
                "flag --topology: cannot be combined with --restore (the snapshot already \
                 carries the topology it was taken under)"
                    .into(),
            ));
        }
        Ok(CommonFlags {
            n,
            h: args.get_or("h", n)?,
            s0: args.get_or("s0", 0usize)?,
            s1: args.get_or("s1", 1usize)?,
            delta: args.get_or("delta", 0.2f64)?,
            seed: args.get_or("seed", 42u64)?,
            exact: args.switch("exact")?,
            threads,
            digest: args.switch("digest")?,
            trace: args.get_opt("trace")?,
            metrics_out: args.get_opt("metrics-out")?,
            faults: args.get_all("fault"),
            restore,
            checkpoint,
            checkpoint_every,
            backend,
            topology,
        })
    }

    /// The mean-field backend has no per-agent rows, so everything that
    /// addresses individual agents — the exact channel, fault injection,
    /// snapshots, the opinion-vector digest — is structurally unavailable
    /// rather than merely unimplemented.
    fn check_mean_field_flags(&self) -> Result<(), String> {
        let reject = |flag: &str, why: &str| {
            Err(format!(
                "--backend mean-field does not support {flag}: {why}"
            ))
        };
        if self.exact {
            return reject(
                "--exact",
                "the counts engine is defined over the aggregated with-replacement channel",
            );
        }
        if !self.faults.is_empty() {
            return reject("--fault", "fault injection addresses individual agents");
        }
        if self.restore.is_some() {
            return reject("--restore", "np-snap/v1 snapshots store per-agent rows");
        }
        if self.checkpoint.is_some() {
            return reject("--checkpoint", "np-snap/v1 snapshots store per-agent rows");
        }
        if self.digest {
            return reject(
                "--digest",
                "the digest fingerprints the per-agent opinion vector",
            );
        }
        if self.topology.is_some() {
            return reject(
                "--topology",
                "the counts engine assumes exchangeability over the complete graph",
            );
        }
        Ok(())
    }

    /// Applies `--topology` to a freshly built world. The world is always
    /// fresh here: `--topology --restore` was rejected at flag parse time
    /// (a snapshot carries the topology it was taken under).
    fn apply_topology<P: np_engine::protocol::ColumnarProtocol>(
        &self,
        world: &mut World<P>,
    ) -> Result<(), String> {
        let Some(spec) = self.topology else {
            return Ok(());
        };
        world.set_topology(spec).map_err(err)?;
        println!("topology: {}", spec.label());
        Ok(())
    }

    /// Returns `true` if any run-observability output was requested.
    fn observing(&self) -> bool {
        self.trace.is_some() || self.metrics_out.is_some()
    }

    fn config(&self) -> Result<PopulationConfig, String> {
        PopulationConfig::new(self.n, self.s0, self.s1, self.h).map_err(err)
    }

    fn channel(&self) -> ChannelKind {
        if self.exact {
            ChannelKind::Exact
        } else {
            ChannelKind::Aggregated
        }
    }

    /// Applies the `--threads` override to a freshly built world.
    fn tune<P: np_engine::protocol::ColumnarProtocol>(&self, world: &mut World<P>) {
        if let Some(t) = self.threads {
            world.set_threads(t);
        }
    }
}

/// FNV-1a over the round count and the final opinion vector: a cheap
/// fingerprint of the trajectory endpoint. CI runs the same experiment
/// under different `NOISY_PULL_THREADS` values and diffs this line —
/// per-agent RNG streams guarantee the digest is thread-count-invariant.
fn outcome_digest<P: np_engine::protocol::ColumnarProtocol>(world: &World<P>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for byte in world.round().to_le_bytes() {
        eat(byte);
    }
    for opinion in world.opinions() {
        eat(opinion.as_index() as u8);
    }
    hash
}

/// Parses the repeatable `--fault round:kind[:args]` specs into a
/// [`FaultPlan`].
///
/// Grammar (one spec per flag, `R` is the 1-based injection round):
/// `R:flip` · `R:noise:δ` · `R:ramp:δ:rounds` (ramps from the run's base
/// δ) · `R:sleep:frac:rounds` · anything else is handed to `corrupt`,
/// the protocol-specific adversary builder (`R:kind[:frac]`, frac
/// defaulting to 1).
fn parse_faults<S>(
    specs: &[String],
    d: usize,
    base_delta: f64,
    corrupt: impl Fn(&str, f64) -> Result<FaultEvent<S>, String>,
) -> Result<FaultPlan<S>, String> {
    let mut plan = FaultPlan::new();
    for spec in specs {
        let bad = |why: String| format!("--fault {spec}: {why}");
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() < 2 {
            return Err(bad("expected round:kind[:args]".into()));
        }
        let round: u64 = parts[0]
            .parse()
            .map_err(|_| bad(format!("bad round `{}`", parts[0])))?;
        let num = |x: &str| -> Result<f64, String> {
            x.parse()
                .map_err(|_| bad(format!("cannot parse `{x}` as a number")))
        };
        let span = |x: &str| -> Result<u64, String> {
            x.parse()
                .map_err(|_| bad(format!("cannot parse `{x}` as a round count")))
        };
        let event = match (parts[1], parts.len()) {
            ("flip", 2) => FaultEvent::FlipSources,
            ("noise", 3) => FaultEvent::SetNoise {
                noise: NoiseMatrix::uniform(d, num(parts[2])?).map_err(|e| bad(e.to_string()))?,
            },
            ("ramp", 4) => FaultEvent::RampNoise {
                from: base_delta,
                to: num(parts[2])?,
                over: span(parts[3])?,
            },
            ("sleep", 4) => FaultEvent::Sleep {
                frac: num(parts[2])?,
                rounds: span(parts[3])?,
            },
            ("flip" | "noise" | "ramp" | "sleep", _) => {
                return Err(bad(
                    "wrong arity; expected R:flip, R:noise:δ, R:ramp:δ:rounds or \
                     R:sleep:frac:rounds"
                        .into(),
                ))
            }
            (kind, 2) => corrupt(kind, 1.0).map_err(bad)?,
            (kind, 3) => corrupt(kind, num(parts[2])?).map_err(bad)?,
            _ => return Err(bad("expected round:kind[:args]".into())),
        };
        plan = plan.at(round, event);
    }
    Ok(plan)
}

/// The adversary builder for protocols without corruption strategies:
/// only the generic fault kinds are accepted.
fn no_corrupt_kinds<S>(kind: &str, _frac: f64) -> Result<FaultEvent<S>, String> {
    Err(format!(
        "unknown kind `{kind}`; this protocol supports flip, noise, ramp and sleep"
    ))
}

/// Writes an `np-snap/v1` blob atomically (temp file + rename), creating
/// parent directories if needed.
fn save_snapshot(path: &std::path::Path, bytes: &[u8]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(err)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(err)?;
    std::fs::rename(&tmp, path).map_err(err)
}

/// The per-round hook sf/ssf use to write `--checkpoint` snapshots.
/// Snapshots are never taken of a consensus or end-of-budget state: a
/// checkpoint always has live work after it.
fn checkpoint_hook<P>(
    common: &CommonFlags,
    budget: u64,
) -> impl FnMut(&World<P>) -> Result<(), String> + '_
where
    P: np_engine::protocol::ColumnarProtocol,
    P::State: np_engine::snapshot::SnapshotState,
{
    move |world: &World<P>| {
        let Some(path) = &common.checkpoint else {
            return Ok(());
        };
        if world.round().is_multiple_of(common.checkpoint_every)
            && world.round() < budget
            && !world.is_consensus()
        {
            save_snapshot(path, &world.snapshot())?;
        }
        Ok(())
    }
}

fn report_run<P: Protocol>(
    world: &mut World<P>,
    budget: u64,
    label: &str,
    common: &CommonFlags,
    mut on_round: impl FnMut(&World<P>) -> Result<(), String>,
) -> CliResult {
    if common.observing() || world.has_fault_plan() {
        world.record_trace();
    }
    // `while round < budget` (not `for 1..=budget`): a `--restore`d world
    // starts mid-run and must only execute the remaining rounds.
    let mut last_bad = world.round();
    while world.round() < budget {
        world.step();
        if !world.is_consensus() {
            last_bad = world.round();
        }
        on_round(world)?;
    }
    let n = world.config().n();
    if world.is_consensus() {
        println!(
            "{label}: consensus settled at round {} / {budget}",
            last_bad + 1
        );
    } else {
        println!(
            "{label}: NO consensus within {budget} rounds ({}/{} correct)",
            world.correct_count(),
            n
        );
    }
    if common.digest {
        println!("{label} digest: {:#018x}", outcome_digest(world));
    }
    if common.observing() || world.has_fault_plan() {
        let trace = world
            .take_trace()
            .expect("record_trace was called before the run");
        let recoveries = if world.has_fault_plan() {
            recovery_times(trace.rounds())
        } else {
            Vec::new()
        };
        for r in &recoveries {
            match r.recovery_rounds() {
                Some(0) => println!(
                    "{label} fault @{} [{}]: consensus never broke",
                    r.round, r.label
                ),
                Some(rounds) => println!(
                    "{label} fault @{} [{}]: re-converged after {rounds} rounds",
                    r.round, r.label
                ),
                None => println!(
                    "{label} fault @{} [{}]: NOT recovered by end of run",
                    r.round, r.label
                ),
            }
        }
        // Timing goes to stdout only: the trace and summary files must be
        // byte-identical across thread counts, and wall clocks are not.
        let t = trace.timings();
        println!(
            "{label} stage wall-clock: display {:.3?}, observe {:.3?}, update {:.3?}, collect {:.3?}",
            t.display, t.observe, t.update, t.collect
        );
        if let Some(path) = &common.trace {
            save_trace_jsonl(path, trace.rounds()).map_err(err)?;
            println!("{label} trace: {}", path.display());
        }
        if let Some(path) = &common.metrics_out {
            let last = trace
                .last()
                .ok_or("--metrics-out: no rounds were executed (budget 0?)")?;
            // The world's own seed, not the flag: a `--restore`d world
            // keeps the seed of the run that produced the snapshot.
            RunSummary::from_final_metrics(label, world.config(), world.seed(), last)
                .with_faults(recoveries)
                .save(path)
                .map_err(err)?;
            println!("{label} summary: {}", path.display());
        }
    }
    Ok(())
}

/// The mean-field counterpart of [`report_run`]: same console report and
/// trace/summary outputs, no fault/checkpoint hooks (rejected upstream by
/// [`CommonFlags::check_mean_field_flags`]).
fn report_counts_run<P: CountsProtocol>(
    world: &mut CountsWorld<P>,
    budget: u64,
    label: &str,
    common: &CommonFlags,
) -> CliResult {
    if common.observing() {
        world.record_trace();
    }
    let mut last_bad = world.round();
    while world.round() < budget {
        world.step();
        if !world.is_consensus() {
            last_bad = world.round();
        }
    }
    let n = world.config().n();
    if world.is_consensus() {
        println!(
            "{label}: consensus settled at round {} / {budget}",
            last_bad + 1
        );
    } else {
        println!(
            "{label}: NO consensus within {budget} rounds ({}/{} correct)",
            world.correct_count(),
            n
        );
    }
    if common.observing() {
        let rounds = world
            .trace()
            .expect("record_trace was called before the run");
        if let Some(path) = &common.trace {
            save_trace_jsonl(path, rounds).map_err(err)?;
            println!("{label} trace: {}", path.display());
        }
        if let Some(path) = &common.metrics_out {
            let last = rounds
                .last()
                .ok_or("--metrics-out: no rounds were executed (budget 0?)")?;
            RunSummary::from_final_metrics(label, world.config(), world.seed(), last)
                .save(path)
                .map_err(err)?;
            println!("{label} summary: {}", path.display());
        }
    }
    Ok(())
}

/// `run sf` — run Algorithm SF.
pub fn run_sf(args: &Args) -> CliResult {
    let common = CommonFlags::from_args(args).map_err(err)?;
    let c1 = args.get_or("c1", 1.0f64).map_err(err)?;
    args.finish().map_err(err)?;
    let config = common.config()?;
    let params = SfParams::derive(&config, common.delta, c1).map_err(err)?;
    let noise = NoiseMatrix::uniform(2, common.delta).map_err(err)?;
    println!(
        "SF: n={} h={} s0={} s1={} δ={} c1={c1} → m={} schedule={} rounds",
        common.n,
        common.h,
        common.s0,
        common.s1,
        common.delta,
        params.m(),
        params.total_rounds()
    );
    let protocol = SourceFilter::new(params);
    if common.backend == Backend::MeanField {
        common.check_mean_field_flags()?;
        let mut world = CountsWorld::new(&protocol, config, &noise, common.seed).map_err(err)?;
        return report_counts_run(&mut world, params.total_rounds(), "SF", &common);
    }
    let mut world = match &common.restore {
        Some(path) => restore_world(&protocol, path)?,
        None => {
            World::new(&protocol, config, &noise, common.channel(), common.seed).map_err(err)?
        }
    };
    common.tune(&mut world);
    common.apply_topology(&mut world)?;
    if !common.faults.is_empty() {
        let plan = parse_faults(&common.faults, 2, common.delta, no_corrupt_kinds)?;
        if common.restore.is_some() {
            // The snapshot carries the fault *cursor*; re-supply the full
            // plan so pending events keep their stream coordinates.
            world.reattach_fault_plan(plan).map_err(err)?;
        } else {
            world.set_fault_plan(plan).map_err(err)?;
        }
    }
    let budget = params.total_rounds();
    let hook = checkpoint_hook(&common, budget);
    report_run(&mut world, budget, "SF", &common, hook)
}

/// Reads and restores an `np-snap/v1` world for `--restore`.
fn restore_world<P>(protocol: &P, path: &std::path::Path) -> Result<World<P>, String>
where
    P: np_engine::protocol::ColumnarProtocol,
    P::State: np_engine::snapshot::SnapshotState,
{
    let bytes =
        std::fs::read(path).map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
    let world = World::restore(protocol, &bytes).map_err(err)?;
    println!(
        "restored {} from round {} (seed {})",
        path.display(),
        world.round(),
        world.seed()
    );
    Ok(world)
}

/// `run ssf` — run Algorithm SSF, optionally under an adversary.
pub fn run_ssf(args: &Args) -> CliResult {
    let common = CommonFlags::from_args(args).map_err(err)?;
    let c1 = args.get_or("c1", 16.0f64).map_err(err)?;
    let intervals = args.get_or("budget-intervals", 10u64).map_err(err)?;
    let adversary_name = args.str_or("adversary", "none");
    args.finish().map_err(err)?;
    let adversary = SsfAdversary::ALL
        .into_iter()
        .find(|a| a.name() == adversary_name)
        .ok_or_else(|| {
            format!(
                "unknown adversary `{adversary_name}`; known: {}",
                SsfAdversary::ALL
                    .iter()
                    .map(|a| a.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    let config = common.config()?;
    let params = SsfParams::derive(&config, common.delta, c1).map_err(err)?;
    let noise = NoiseMatrix::uniform(4, common.delta).map_err(err)?;
    println!(
        "SSF: n={} h={} δ={} c1={c1} adversary={adversary} → m={} interval={} rounds",
        common.n,
        common.h,
        common.delta,
        params.m(),
        params.update_interval()
    );
    let protocol = SelfStabilizingSourceFilter::new(params);
    if common.backend == Backend::MeanField {
        common.check_mean_field_flags()?;
        if adversary != SsfAdversary::None {
            return Err(
                "--backend mean-field does not support --adversary: initial corruption \
                 addresses individual agents"
                    .into(),
            );
        }
        let mut world = CountsWorld::new(&protocol, config, &noise, common.seed).map_err(err)?;
        let budget = intervals * params.update_interval();
        return report_counts_run(&mut world, budget, "SSF", &common);
    }
    let mut world = match &common.restore {
        Some(path) => restore_world(&protocol, path)?,
        None => {
            World::new(&protocol, config, &noise, common.channel(), common.seed).map_err(err)?
        }
    };
    common.tune(&mut world);
    common.apply_topology(&mut world)?;
    let correct = config.correct_opinion();
    let m = params.m();
    if common.restore.is_none() {
        // Initial adversarial corruption is part of round 0; a restored
        // world already carries its effects in the snapshot.
        world.corrupt_agents(|id, agent, rng| adversary.corrupt(agent, correct, m, id, rng));
    }
    if !common.faults.is_empty() {
        let plan = parse_faults(&common.faults, 4, common.delta, |kind, frac| {
            let adv = SsfAdversary::ALL
                .into_iter()
                .find(|a| a.name() == kind)
                .ok_or_else(|| {
                    format!(
                        "unknown kind `{kind}`; known: flip, noise, ramp, sleep, {}",
                        SsfAdversary::ALL
                            .iter()
                            .map(|a| a.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
            Ok(FaultEvent::Corrupt {
                frac,
                label: kind.to_string(),
                fault: Arc::new(
                    move |state: &mut ScalarState<SsfAgent>, id: usize, rng: &mut StreamRng| {
                        adv.corrupt(&mut state.agents_mut()[id], correct, m, id, rng);
                    },
                ),
            })
        })?;
        if common.restore.is_some() {
            world.reattach_fault_plan(plan).map_err(err)?;
        } else {
            world.set_fault_plan(plan).map_err(err)?;
        }
    }
    let budget = intervals * params.update_interval();
    let hook = checkpoint_hook(&common, budget);
    report_run(&mut world, budget, "SSF", &common, hook)
}

/// `run baseline <name>` — run one of the comparison protocols.
pub fn run_baseline(name: &str, args: &Args) -> CliResult {
    let common = CommonFlags::from_args(args).map_err(err)?;
    let budget = args.get_or("budget", 1000u64).map_err(err)?;
    args.finish().map_err(err)?;
    if !common.faults.is_empty() {
        return Err("--fault is only supported for the sf and ssf subcommands".into());
    }
    if common.restore.is_some() || common.checkpoint.is_some() {
        return Err(
            "--restore/--checkpoint are only supported for the sf and ssf subcommands".into(),
        );
    }
    if common.backend != Backend::PerAgent {
        return Err("--backend is only supported for the sf and ssf subcommands".into());
    }
    if common.topology.is_some() {
        return Err(
            "--topology is only supported for the sf and ssf subcommands: the baselines pin \
             the paper's complete-graph model"
                .into(),
        );
    }
    let config = common.config()?;
    match name {
        "voter" => {
            let noise = NoiseMatrix::uniform(2, common.delta).map_err(err)?;
            let mut world =
                World::new(&ZealotVoter, config, &noise, common.channel(), common.seed)
                    .map_err(err)?;
            common.tune(&mut world);
            report_run(&mut world, budget, "zealot-voter", &common, |_| Ok(()))?;
        }
        "majority" => {
            let noise = NoiseMatrix::uniform(2, common.delta).map_err(err)?;
            let mut world =
                World::new(&HMajority, config, &noise, common.channel(), common.seed)
                    .map_err(err)?;
            common.tune(&mut world);
            report_run(&mut world, budget, "h-majority", &common, |_| Ok(()))?;
        }
        "trusting-copy" => {
            let noise = NoiseMatrix::uniform(4, common.delta).map_err(err)?;
            let mut world =
                World::new(&TrustingCopy, config, &noise, common.channel(), common.seed)
                    .map_err(err)?;
            common.tune(&mut world);
            report_run(&mut world, budget, "trusting-copy", &common, |_| Ok(()))?;
        }
        "mean-estimator" => {
            let noise = NoiseMatrix::uniform(2, common.delta).map_err(err)?;
            let proto = MeanEstimator::new(common.delta);
            let mut world =
                World::new(&proto, config, &noise, common.channel(), common.seed).map_err(err)?;
            common.tune(&mut world);
            report_run(&mut world, budget, "mean-estimator", &common, |_| Ok(()))?;
        }
        "push" => {
            if common.observing() {
                return Err(
                    "--trace/--metrics-out are not supported for the push baseline: it runs \
                     in the PUSH world, which has no run-observer hook"
                        .into(),
                );
            }
            let params = PushSpreadingParams::derive(common.n, common.h, common.delta);
            let noise = NoiseMatrix::uniform(2, common.delta).map_err(err)?;
            let mut world =
                PushWorld::new(&PushSpreading::new(params), config, &noise, common.seed)
                    .map_err(err)?;
            world.run(params.total_rounds());
            if world.is_consensus() {
                println!(
                    "push-spreading: consensus within {} rounds (spreading stage {})",
                    params.total_rounds(),
                    params.spreading_rounds()
                );
            } else {
                println!(
                    "push-spreading: NO consensus ({}/{} correct)",
                    world.correct_count(),
                    common.n
                );
            }
        }
        other => {
            return Err(format!(
                "unknown baseline `{other}`; known: voter, majority, trusting-copy, mean-estimator, push"
            ))
        }
    }
    Ok(())
}

/// `theory` — evaluate the paper's closed-form bounds.
pub fn theory_cmd(args: &Args) -> CliResult {
    let n = args.get_or("n", 1024usize).map_err(err)?;
    let h = args.get_or("h", n).map_err(err)?;
    let s = args.get_or("s", 1usize).map_err(err)?;
    let s0 = args.get_or("s0", 0usize).map_err(err)?;
    let s1 = args.get_or("s1", s).map_err(err)?;
    let delta = args.get_or("delta", 0.2f64).map_err(err)?;
    args.finish().map_err(err)?;
    println!("parameters: n={n} h={h} s0={s0} s1={s1} δ={delta}");
    match theory::lower_bound_rounds(n, h, s1.abs_diff(s0), delta, 2) {
        Ok(lb) => println!("Theorem 3 lower bound  : {lb:.2} rounds (×Ω-constant)"),
        Err(e) => println!("Theorem 3 lower bound  : n/a ({e})"),
    }
    match theory::sf_upper_bound_rounds(n, h, s0, s1, delta) {
        Ok(ub) => println!("Theorem 4 SF bound     : {ub:.2} rounds (×O-constant)"),
        Err(e) => println!("Theorem 4 SF bound     : n/a ({e})"),
    }
    match theory::ssf_upper_bound_rounds(n, h, delta) {
        Ok(ub) => println!("Theorem 5 SSF bound    : {ub:.2} rounds (×O-constant)"),
        Err(e) => println!("Theorem 5 SSF bound    : n/a ({e})"),
    }
    if let Ok(f) = theory::f_delta(2, delta) {
        println!("f(δ) at d=2            : {f:.4}");
    }
    println!(
        "noise-dominated regime : {}",
        theory::is_noise_dominated(n, s0, s1, delta, 2)
    );
    Ok(())
}

/// `reduce` — derive the Theorem 8 artificial noise for a channel given as
/// `--rows "a,b;c,d"`.
pub fn reduce_cmd(args: &Args) -> CliResult {
    let rows_spec = args.str_or("rows", "");
    args.finish().map_err(err)?;
    if rows_spec.is_empty() {
        return Err("missing --rows \"a,b;c,d;...\" (row-major stochastic matrix)".into());
    }
    let rows: Result<Vec<Vec<f64>>, String> = rows_spec
        .split(';')
        .map(|row| {
            row.split(',')
                .map(|x| {
                    x.trim()
                        .parse::<f64>()
                        .map_err(|e| format!("bad entry `{x}`: {e}"))
                })
                .collect()
        })
        .collect();
    let noise = NoiseMatrix::from_rows(rows?).map_err(err)?;
    let delta = noise
        .upper_bound_level()
        .ok_or("matrix is not δ-upper bounded for any δ ≤ 1/d; reduction does not apply")?;
    let reduction = noise.artificial_noise().map_err(err)?;
    println!("input channel N (δ = {delta:.4}):");
    println!("{:?}", noise.as_matrix());
    println!(
        "artificial noise P = N⁻¹·T (δ' = f(δ) = {:.4}):",
        reduction.uniform_level()
    );
    println!("{:?}", reduction.artificial().as_matrix());
    let composed = noise.compose(reduction.artificial()).map_err(err)?;
    println!("composed N·P (exactly δ'-uniform):");
    println!("{:?}", composed.as_matrix());
    Ok(())
}

/// `sweep run SPEC --out DIR` — run (or `--resume`) a checkpointed
/// parameter sweep described by a spec file.
pub fn sweep_run(args: &Args) -> CliResult {
    let out: PathBuf = args
        .get_opt("out")
        .map_err(err)?
        .ok_or("sweep run: missing --out DIR")?;
    let checkpoint_every = args.get_or("checkpoint-every", 16u64).map_err(err)?;
    let stop_after = args.get_opt("stop-after").map_err(err)?;
    let threads = args
        .get_or("threads", np_engine::runner::suggested_threads())
        .map_err(err)?;
    let resume = args.switch("resume").map_err(err)?;
    args.finish().map_err(err)?;
    let spec_path = match args.positional() {
        [path] => PathBuf::from(path),
        [] => return Err("sweep run: missing SPEC file".into()),
        more => {
            return Err(format!(
                "sweep run: expected one SPEC file, got {}",
                more.len()
            ))
        }
    };
    let spec = np_sweep::spec::SweepSpec::load(&spec_path).map_err(err)?;
    let jobs = spec.jobs().len();
    println!(
        "sweep: {jobs} job(s) from {} → {}",
        spec_path.display(),
        out.display()
    );
    let opts = np_sweep::scheduler::SweepOptions {
        out,
        checkpoint_every,
        stop_after,
        threads,
        resume,
    };
    let outcome = np_sweep::scheduler::run_sweep(&spec, &opts).map_err(err)?;
    if outcome.stopped_early {
        println!("sweep: stopped after --stop-after checkpoint budget; continue with --resume");
    } else {
        println!(
            "sweep: {} job(s) run, {} already done; report: {}",
            outcome.completed,
            outcome.skipped,
            outcome
                .report
                .as_deref()
                .map_or_else(|| "-".to_string(), |p| p.display().to_string())
        );
    }
    Ok(())
}

/// `sweep throughput` — measure wall-clock SF rounds/sec at engine thread
/// counts 1 and 4 (`--seeds` seeded runs each, default 5) and record the
/// mean/median/p95 perf points in `BENCH_throughput.json`.
pub fn sweep_throughput(args: &Args) -> CliResult {
    let spec = np_sweep::scheduler::ThroughputSpec {
        n: args.get_or("n", 4096usize).map_err(err)?,
        rounds: args.get_or("rounds", 200u64).map_err(err)?,
        delta: args.get_or("delta", 0.2f64).map_err(err)?,
        seed: args.get_or("seed", 42u64).map_err(err)?,
        seeds: args.get_or("seeds", 5usize).map_err(err)?,
    };
    if args.get_opt::<String>("topology").map_err(err)?.is_some() {
        return Err(
            "sweep throughput does not support --topology: the bench measures the \
             complete-graph hot path (use a `topology =` axis in `sweep run` instead)"
                .into(),
        );
    }
    args.finish().map_err(err)?;
    let points = np_sweep::scheduler::measure_throughput(&spec).map_err(err)?;
    for p in &points {
        println!(
            "{}: {:.0} rounds/sec (mean {:.2} ms, median {:.2} ms, p95 {:.2} ms over {} run(s) of {} rounds)",
            p.label,
            np_sweep::scheduler::rounds_per_sec(p),
            p.mean_wall_ms,
            p.median_wall_ms.unwrap_or(p.mean_wall_ms),
            p.p95_wall_ms.unwrap_or(p.mean_wall_ms),
            p.runs,
            spec.rounds
        );
    }
    let path = np_bench::report::save_bench_json("throughput", &points).map_err(err)?;
    println!("throughput bench: {}", path.display());
    Ok(())
}

/// Flags of the `cluster` subcommand, parsed independently of
/// [`CommonFlags`]: the node runtime has its own timing vocabulary and
/// deliberately rejects the round-engine flags that have no meaning for
/// an event-driven transport.
struct ClusterFlags {
    cfg: np_net::cluster::ClusterConfig,
    plan: np_net::faults::NetFaultPlan,
    /// Local round at which the last fault has been applied (drive the
    /// cluster past this point before measuring re-convergence).
    heal_round: Option<u64>,
    transport: String,
    c1: f64,
    intervals: u64,
    summary_out: Option<PathBuf>,
}

impl ClusterFlags {
    fn from_args(args: &Args, protocol_name: &str) -> Result<Self, String> {
        Self::check_cluster_flags(args)?;
        let n = args.get_or("n", 64usize).map_err(err)?;
        let s0 = args.get_or("s0", 0usize).map_err(err)?;
        let s1 = args.get_or("s1", 1usize).map_err(err)?;
        let h = args
            .get_or("h", (n as f64).ln().ceil().max(1.0) as usize)
            .map_err(err)?;
        let delta = args.get_or("delta", 0.2f64).map_err(err)?;
        let seed = args.get_or("seed", 42u64).map_err(err)?;
        let default_c1 = if protocol_name == "sf" { 1.0 } else { 16.0 };
        let c1 = args.get_or("c1", default_c1).map_err(err)?;
        let intervals = args.get_or("budget-intervals", 10u64).map_err(err)?;
        let tick_us = args.get_or("tick-us", 1_000u64).map_err(err)?;
        let latency_us = args.get_or("latency-us", 50u64).map_err(err)?;
        let jitter_us = args.get_or("jitter-us", 100u64).map_err(err)?;
        let stagger_us = args.get_or("stagger-us", tick_us).map_err(err)?;
        let drop = args.get_or("drop", 0.0f64).map_err(err)?;
        let transport = args.str_or("transport", "sim");
        let summary_out = args.get_opt::<PathBuf>("metrics-out").map_err(err)?;
        let partition_at = args.get_opt::<u64>("partition-at").map_err(err)?;
        let heal_at = args.get_opt::<u64>("heal-at").map_err(err)?;
        let split = args.get_opt::<usize>("partition-split").map_err(err)?;
        args.finish().map_err(err)?;
        if transport != "sim" && transport != "tcp" {
            return Err(format!(
                "cluster: unknown transport `{transport}` (sim | tcp)"
            ));
        }
        let mut cfg = np_net::cluster::ClusterConfig::new(n, s0, s1, h, delta, seed);
        cfg.tick_ns = tick_us.saturating_mul(1_000);
        cfg.min_latency_ns = latency_us.saturating_mul(1_000);
        cfg.jitter_ns = jitter_us.saturating_mul(1_000);
        cfg.stagger_ns = stagger_us.saturating_mul(1_000);
        cfg.drop_rate = drop;
        let mut plan = np_net::faults::NetFaultPlan::new();
        let mut heal_round = None;
        match (partition_at, heal_at) {
            (Some(at), heal) => {
                let split = u64::try_from(split.unwrap_or(n / 2)).map_err(err)?;
                plan = plan.at_ns(
                    at.saturating_mul(cfg.tick_ns),
                    np_net::faults::NetFault::Partition { split },
                );
                heal_round = Some(at);
                if let Some(hr) = heal {
                    if hr <= at {
                        return Err(format!(
                            "cluster: --heal-at {hr} must come after --partition-at {at}"
                        ));
                    }
                    plan = plan.at_ns(
                        hr.saturating_mul(cfg.tick_ns),
                        np_net::faults::NetFault::Heal,
                    );
                    heal_round = Some(hr);
                }
            }
            (None, Some(_)) => {
                return Err("cluster: --heal-at requires --partition-at".into());
            }
            (None, None) => {
                if split.is_some() {
                    return Err("cluster: --partition-split requires --partition-at".into());
                }
            }
        }
        Ok(ClusterFlags {
            cfg,
            plan,
            heal_round,
            transport,
            c1,
            intervals,
            summary_out,
        })
    }

    /// The cluster analogue of [`CommonFlags::check_mean_field_flags`]:
    /// round-engine flags that the node runtime cannot honour are
    /// rejected with an explanation rather than silently ignored.
    fn check_cluster_flags(args: &Args) -> Result<(), String> {
        let reject = |flag: &str, why: &str| Err(format!("cluster does not support {flag}: {why}"));
        if args.get_opt::<String>("topology").map_err(err)?.is_some() {
            return reject(
                "--topology",
                "the node runtime samples pull targets uniformly over all peers \
                 (complete graph); restricted graphs are a round-engine `run` feature",
            );
        }
        if args.get_opt::<String>("backend").map_err(err)?.is_some() {
            return reject(
                "--backend",
                "the cluster driver always runs per-node event loops; the mean-field \
                 counts engine has no per-node state to place behind a transport",
            );
        }
        if !args.get_all("fault").is_empty() {
            return reject(
                "--fault",
                "round-indexed state corruption needs the round engine's global \
                 barrier; use --partition-at/--heal-at for transport-level faults",
            );
        }
        if args.get_opt::<String>("restore").map_err(err)?.is_some()
            || args.get_opt::<String>("checkpoint").map_err(err)?.is_some()
        {
            return reject(
                "--restore/--checkpoint",
                "np-snap/v1 snapshots capture a globally synchronised round, which \
                 an asynchronous cluster never occupies",
            );
        }
        Ok(())
    }
}

/// Shared driver for `cluster` over either protocol: builds the cluster
/// on the selected transport, runs it to convergence (driving past the
/// fault plan first, so a partition is actually exercised), prints the
/// report, and optionally writes an `np-run-summary/v1` artifact.
fn run_cluster<P>(protocol: &P, label: &str, flags: &ClusterFlags, budget: u64) -> CliResult
where
    P: Protocol,
    P::Agent: 'static,
{
    let report = if flags.transport == "tcp" {
        np_net::tcp::run_tcp_cluster(&flags.cfg, protocol, &flags.plan, budget).map_err(err)?
    } else {
        let mut cluster =
            np_net::sim::SimCluster::new(&flags.cfg, protocol, &flags.plan).map_err(err)?;
        if let Some(heal) = flags.heal_round {
            cluster.run_until_round(heal).map_err(err)?;
        }
        let reconverged = cluster.run_until_correct(budget).map_err(err)?;
        if let (Some(heal), Some(at)) = (flags.heal_round, reconverged) {
            println!(
                "cluster heal: re-converged at round {at} ({} rounds after the last fault)",
                at.saturating_sub(heal)
            );
        }
        cluster.report()
    };
    let kind = &flags.transport;
    if report.converged {
        println!(
            "{label} cluster[{kind}]: converged at round {} / {budget} \
             ({:.2} ms, {} messages, {} dropped, {} stale, {} skipped)",
            report.convergence_round.unwrap_or(report.rounds),
            report.elapsed_ms,
            report.messages_total,
            report.drops_total,
            report.stale_total,
            report.skipped_total,
        );
    } else {
        println!(
            "{label} cluster[{kind}]: NO convergence within {budget} rounds \
             ({}/{} correct, {} messages)",
            report.final_correct, report.n, report.messages_total,
        );
    }
    println!("cluster digest: {:#018x}", report.digest);
    if let Some(path) = &flags.summary_out {
        let summary = RunSummary {
            protocol: format!("{}-cluster-{kind}", label.to_lowercase()),
            n: report.n,
            h: report.h,
            s0: flags.cfg.s0,
            s1: flags.cfg.s1,
            seed: report.seed,
            rounds: report.rounds,
            consensus: report.converged,
            final_correct: report.final_correct,
            final_margin: report.final_correct as f64 - report.n as f64 / 2.0,
            weak_formed: report.weak_formed,
            weak_correct: report.weak_correct,
            faults: Vec::new(),
        };
        summary.save(path).map_err(err)?;
        println!("cluster summary: {}", path.display());
    }
    Ok(())
}

/// `cluster` — run the protocol on the event-driven node runtime
/// (`np_net`) over the simulated-time or TCP transport.
pub fn cluster_cmd(args: &Args) -> CliResult {
    let protocol_name = args.str_or("protocol", "ssf");
    if protocol_name != "sf" && protocol_name != "ssf" {
        return Err(format!(
            "cluster does not support --protocol {protocol_name}: the node runtime \
             implements the paper's pull protocols only (sf | ssf); push and other \
             baselines are round-engine `run baseline` features"
        ));
    }
    let flags = ClusterFlags::from_args(args, &protocol_name)?;
    let config = flags.cfg.population().map_err(err)?;
    if protocol_name == "sf" {
        let params = SfParams::derive(&config, flags.cfg.delta, flags.c1).map_err(err)?;
        println!(
            "SF cluster[{}]: n={} h={} δ={} c1={} → m={} schedule={} rounds",
            flags.transport,
            flags.cfg.n,
            flags.cfg.h,
            flags.cfg.delta,
            flags.c1,
            params.m(),
            params.total_rounds()
        );
        let budget = params.total_rounds();
        run_cluster(&SourceFilter::new(params), "SF", &flags, budget)
    } else {
        let params = SsfParams::derive(&config, flags.cfg.delta, flags.c1).map_err(err)?;
        println!(
            "SSF cluster[{}]: n={} h={} δ={} c1={} → m={} interval={} rounds",
            flags.transport,
            flags.cfg.n,
            flags.cfg.h,
            flags.cfg.delta,
            flags.c1,
            params.m(),
            params.update_interval()
        );
        let budget = flags.intervals * params.update_interval();
        run_cluster(
            &SelfStabilizingSourceFilter::new(params),
            "SSF",
            &flags,
            budget,
        )
    }
}

/// Formats an opinion for messages.
pub fn opinion_name(o: Opinion) -> &'static str {
    match o {
        Opinion::Zero => "0",
        Opinion::One => "1",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().copied()).unwrap()
    }

    #[test]
    fn sf_small_run_succeeds() {
        run_sf(&args(&["--n", "64", "--delta", "0.1", "--seed", "1"])).unwrap();
    }

    #[test]
    fn sf_rejects_unknown_flag() {
        let e = run_sf(&args(&["--n", "64", "--bogus", "1"])).unwrap_err();
        assert!(e.contains("--bogus"));
    }

    #[test]
    fn ssf_small_run_succeeds() {
        run_ssf(&args(&[
            "--n",
            "64",
            "--delta",
            "0.1",
            "--c1",
            "8",
            "--adversary",
            "all-wrong",
        ]))
        .unwrap();
    }

    #[test]
    fn ssf_rejects_unknown_adversary() {
        let e = run_ssf(&args(&["--n", "64", "--adversary", "gremlin"])).unwrap_err();
        assert!(e.contains("gremlin"));
    }

    #[test]
    fn baselines_run() {
        for name in ["voter", "majority", "trusting-copy", "mean-estimator"] {
            run_baseline(
                name,
                &args(&["--n", "32", "--budget", "20", "--delta", "0.1"]),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        run_baseline("push", &args(&["--n", "32", "--h", "1", "--delta", "0.1"])).unwrap();
        assert!(run_baseline("nope", &args(&[])).is_err());
    }

    #[test]
    fn sf_writes_trace_and_summary_files() {
        let dir = std::env::temp_dir().join("np_cli_observability_test");
        let trace = dir.join("t.jsonl");
        let summary = dir.join("s.json");
        run_sf(&args(&[
            "--n",
            "64",
            "--delta",
            "0.1",
            "--seed",
            "1",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-out",
            summary.to_str().unwrap(),
        ]))
        .unwrap();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.lines().count() > 1);
        assert!(trace_text.starts_with("{\"round\":1,"));
        let summary_text = std::fs::read_to_string(&summary).unwrap();
        assert!(summary_text.contains("\"schema\": \"np-run-summary/v1\""));
        assert!(summary_text.contains("\"protocol\": \"SF\""));
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(summary).ok();
    }

    #[test]
    fn mean_field_backend_runs_sf_and_ssf() {
        run_sf(&args(&[
            "--n",
            "256",
            "--delta",
            "0.1",
            "--seed",
            "1",
            "--backend",
            "mean-field",
        ]))
        .unwrap();
        run_ssf(&args(&[
            "--n",
            "256",
            "--delta",
            "0.1",
            "--c1",
            "8",
            "--backend",
            "mean-field",
        ]))
        .unwrap();
    }

    #[test]
    fn mean_field_backend_writes_trace_and_summary() {
        let dir = std::env::temp_dir().join("np_cli_mean_field_test");
        let trace = dir.join("t.jsonl");
        let summary = dir.join("s.json");
        run_sf(&args(&[
            "--n",
            "128",
            "--delta",
            "0.1",
            "--backend",
            "mean-field",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-out",
            summary.to_str().unwrap(),
        ]))
        .unwrap();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.starts_with("{\"round\":1,"));
        let summary_text = std::fs::read_to_string(&summary).unwrap();
        assert!(summary_text.contains("\"schema\": \"np-run-summary/v1\""));
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(summary).ok();
    }

    #[test]
    fn mean_field_backend_rejects_per_agent_features() {
        let check = |flags: &[&str], needle: &str| {
            let mut v = vec!["--n", "64", "--backend", "mean-field"];
            v.extend_from_slice(flags);
            let e = run_sf(&args(&v)).unwrap_err();
            assert!(e.contains(needle), "{flags:?} → {e}");
        };
        check(&["--exact"], "--exact");
        check(&["--fault", "3:flip"], "--fault");
        check(&["--restore", "x.snap"], "--restore");
        check(&["--checkpoint", "x.snap"], "--checkpoint");
        check(&["--digest"], "--digest");
        let e = run_ssf(&args(&[
            "--n",
            "64",
            "--c1",
            "8",
            "--backend",
            "mean-field",
            "--adversary",
            "all-wrong",
        ]))
        .unwrap_err();
        assert!(e.contains("--adversary"), "{e}");
        let e = run_sf(&args(&["--n", "64", "--backend", "quantum"])).unwrap_err();
        assert!(e.contains("unknown backend"), "{e}");
        let e =
            run_baseline("voter", &args(&["--n", "32", "--backend", "mean-field"])).unwrap_err();
        assert!(e.contains("sf and ssf"), "{e}");
    }

    #[test]
    fn topology_flag_runs_sf_and_ssf_on_sparse_graphs() {
        run_sf(&args(&[
            "--n",
            "64",
            "--h",
            "8",
            "--delta",
            "0.1",
            "--seed",
            "1",
            "--topology",
            "ring:4",
        ]))
        .unwrap();
        run_ssf(&args(&[
            "--n",
            "64",
            "--h",
            "8",
            "--delta",
            "0.1",
            "--c1",
            "8",
            "--topology",
            "regular:12",
        ]))
        .unwrap();
        // `--topology complete` is the explicit no-op seam.
        run_sf(&args(&["--n", "64", "--topology", "complete"])).unwrap();
    }

    #[test]
    fn topology_flag_is_rejected_where_meaningless() {
        // Mean-field backend: no per-agent rows, exchangeability assumed.
        let e = run_sf(&args(&[
            "--n",
            "64",
            "--backend",
            "mean-field",
            "--topology",
            "ring:4",
        ]))
        .unwrap_err();
        assert!(
            e.contains("--topology") && e.contains("exchangeability"),
            "{e}"
        );
        // Baselines pin the complete-graph model.
        let e = run_baseline("voter", &args(&["--n", "32", "--topology", "ring:4"])).unwrap_err();
        assert!(e.contains("sf and ssf"), "{e}");
        // A restored snapshot already carries its topology; the conflict
        // is caught at flag parse time, before any file I/O.
        let e = run_sf(&args(&[
            "--n",
            "64",
            "--restore",
            "/no/such/file.snap",
            "--topology",
            "ring:4",
        ]))
        .unwrap_err();
        assert!(e.contains("--restore") && !e.contains("cannot read"), "{e}");
        // The throughput bench pins the complete-graph hot path.
        let e = sweep_throughput(&args(&["--n", "64", "--topology", "ring:4"])).unwrap_err();
        assert!(
            e.contains("sweep throughput") && e.contains("--topology"),
            "{e}"
        );
        // Malformed specs are caught at flag parse time.
        let e = run_sf(&args(&["--n", "64", "--topology", "torus:3"])).unwrap_err();
        assert!(e.contains("--topology") && e.contains("torus"), "{e}");
        // An unrealizable graph is caught before the run starts.
        let e = run_sf(&args(&["--n", "64", "--topology", "ring:40"])).unwrap_err();
        assert!(e.contains("bad topology"), "{e}");
    }

    #[test]
    fn parse_faults_accepts_the_full_grammar() {
        let specs: Vec<String> = ["3:flip", "5:noise:0.2", "7:ramp:0.24:10", "9:sleep:0.5:4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let plan: FaultPlan<ScalarState<SsfAgent>> =
            parse_faults(&specs, 4, 0.1, no_corrupt_kinds).unwrap();
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn parse_faults_rejects_malformed_specs() {
        let check = |spec: &str, needle: &str| {
            let e = parse_faults::<ScalarState<SsfAgent>>(
                &[spec.to_string()],
                4,
                0.1,
                no_corrupt_kinds,
            )
            .unwrap_err();
            assert!(e.contains(needle), "`{spec}` → {e}");
        };
        check("nope", "round:kind");
        check("x:flip", "bad round");
        check("3:flip:extra", "arity");
        check("3:noise", "arity");
        check("3:noise:zzz", "number");
        check("3:sleep:0.5", "arity");
        check("3:ramp:0.3:q", "round count");
        check("3:gremlin", "unknown kind");
        // δ beyond the d=4 bound is caught while building the matrix.
        check("3:noise:0.9", "--fault 3:noise:0.9");
    }

    #[test]
    fn ssf_run_with_faults_reports_recovery() {
        let dir = std::env::temp_dir().join("np_cli_fault_test");
        let summary = dir.join("s.json");
        run_ssf(&args(&[
            "--n",
            "64",
            "--delta",
            "0.1",
            "--c1",
            "8",
            "--fault",
            "40:all-wrong",
            "--fault=60:sleep:0.5:3",
            "--metrics-out",
            summary.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&summary).unwrap();
        assert!(text.contains("\"faults\""), "{text}");
        assert!(text.contains("\"label\": \"all-wrong:"), "{text}");
        assert!(text.contains("\"label\": \"sleep:"), "{text}");
        std::fs::remove_file(summary).ok();
    }

    #[test]
    fn sf_rejects_adversary_fault_kinds() {
        let e = run_sf(&args(&["--n", "64", "--fault", "5:all-wrong"])).unwrap_err();
        assert!(e.contains("flip, noise, ramp and sleep"), "{e}");
    }

    #[test]
    fn fault_scheduled_at_round_zero_is_rejected() {
        let e = run_sf(&args(&["--n", "64", "--fault", "0:flip"])).unwrap_err();
        assert!(e.contains("bad fault plan"), "{e}");
    }

    #[test]
    fn baselines_reject_fault_flags() {
        let e = run_baseline("voter", &args(&["--n", "32", "--fault", "3:flip"])).unwrap_err();
        assert!(e.contains("sf and ssf"), "{e}");
    }

    #[test]
    fn trace_flags_rejected_for_push_baseline() {
        let e = run_baseline(
            "push",
            &args(&["--n", "32", "--h", "1", "--trace", "t.jsonl"]),
        )
        .unwrap_err();
        assert!(e.contains("push"), "{e}");
    }

    #[test]
    fn sf_checkpoint_restore_reproduces_the_straight_trace() {
        let dir = std::env::temp_dir().join("np_cli_checkpoint_test");
        std::fs::remove_dir_all(&dir).ok();
        let snap = dir.join("sf.snap");
        let straight = dir.join("straight.jsonl");
        let resumed = dir.join("resumed.jsonl");
        let base = ["--n", "64", "--delta", "0.1", "--seed", "9"];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            args(&v)
        };
        // Straight run, tracing; also drops checkpoints along the way.
        run_sf(&with(&[
            "--trace",
            straight.to_str().unwrap(),
            "--checkpoint",
            snap.to_str().unwrap(),
            "--checkpoint-every",
            "8",
        ]))
        .unwrap();
        // Restore the last checkpoint and finish the run: the full trace
        // must be byte-identical to the straight run's.
        run_sf(&with(&[
            "--restore",
            snap.to_str().unwrap(),
            "--trace",
            resumed.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&straight).unwrap(),
            std::fs::read(&resumed).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        let e = run_sf(&args(&["--n", "64", "--checkpoint-every", "8"])).unwrap_err();
        assert!(e.contains("requires --checkpoint"), "{e}");
        let e = run_sf(&args(&[
            "--n",
            "64",
            "--checkpoint",
            "x.snap",
            "--checkpoint-every",
            "0",
        ]))
        .unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        let e = run_baseline("voter", &args(&["--n", "32", "--restore", "x.snap"])).unwrap_err();
        assert!(e.contains("sf and ssf"), "{e}");
        let e = run_sf(&args(&["--n", "64", "--restore", "/no/such/file.snap"])).unwrap_err();
        assert!(e.contains("cannot read snapshot"), "{e}");
    }

    #[test]
    fn sweep_run_and_resume_via_cli() {
        let dir = std::env::temp_dir().join("np_cli_sweep_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.txt");
        std::fs::write(
            &spec,
            "protocol = sf\nn = 32\ndelta = 0.1\nruns = 2\nseed = 3\n",
        )
        .unwrap();
        let out = dir.join("out");
        sweep_run(&args(&[
            spec.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--checkpoint-every",
            "8",
        ]))
        .unwrap();
        let report = std::fs::read_to_string(out.join("report.json")).unwrap();
        assert!(report.contains("\"schema\": \"np-bench/v1\""));
        // Re-running without --resume refuses; with --resume it skips.
        let e = sweep_run(&args(&[
            spec.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(e.contains("--resume"), "{e}");
        sweep_run(&args(&[
            spec.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--resume",
        ]))
        .unwrap();
        let e = sweep_run(&args(&["--out", out.to_str().unwrap()])).unwrap_err();
        assert!(e.contains("missing SPEC"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn theory_prints_for_valid_and_degenerate_inputs() {
        theory_cmd(&args(&["--n", "1024", "--delta", "0.2"])).unwrap();
        // δ too high for SF/SSF bounds: still succeeds, printing n/a.
        theory_cmd(&args(&["--n", "1024", "--delta", "0.45"])).unwrap();
    }

    #[test]
    fn reduce_parses_and_derives() {
        reduce_cmd(&args(&["--rows", "0.9,0.1;0.2,0.8"])).unwrap();
        assert!(reduce_cmd(&args(&[])).is_err());
        assert!(reduce_cmd(&args(&["--rows", "0.9,x;0.2,0.8"])).is_err());
        assert!(reduce_cmd(&args(&["--rows", "0.3,0.7;0.7,0.3"])).is_err());
    }

    #[test]
    fn opinion_names() {
        assert_eq!(opinion_name(Opinion::Zero), "0");
        assert_eq!(opinion_name(Opinion::One), "1");
    }
}
