//! Library portion of the `noisy-pull` CLI: flag parsing and subcommand
//! implementations, exposed so they can be unit-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
