//! `noisy-pull` — command-line interface for the noisy PULL reproduction.
//!
//! ```text
//! noisy-pull run sf --n 1024 --delta 0.2 --seed 42
//! noisy-pull run ssf --n 1024 --delta 0.1 --adversary poisoned-memory
//! noisy-pull run baseline voter --n 512 --budget 2000
//! noisy-pull theory --n 65536 --h 1 --delta 0.2
//! noisy-pull reduce --rows "0.9,0.1;0.2,0.8"
//! ```

use np_cli::args::Args;
use np_cli::commands;

const USAGE: &str =
    "noisy-pull — protocols from 'Fast and Robust Information Spreading in the Noisy PULL Model'

USAGE:
    noisy-pull <COMMAND> [FLAGS]

COMMANDS:
    run sf          run Algorithm SF (Source Filter)
    run ssf         run Algorithm SSF (Self-stabilizing Source Filter)
    run baseline X  run a baseline: voter | majority | trusting-copy | mean-estimator | push
    sweep run SPEC  run a checkpointed parameter sweep from a spec file
    sweep throughput  measure SF rounds/sec (threads 1/4, --seeds runs) into BENCH_throughput.json
    cluster         run SF/SSF on the event-driven node runtime (np_net):
                    no global round barrier; nodes exchange PullRequest/
                    PullReply messages over a transport
    theory          evaluate the Theorem 3/4/5 closed-form bounds
    reduce          derive the Theorem 8 artificial-noise matrix
    help            show this message

COMMON FLAGS:
    --n N           population size            (default 1024)
    --h H           sample size / fan-out      (default n)
    --s0 K --s1 K   sources preferring 0 / 1   (default 0 / 1)
    --delta D       uniform noise level        (default 0.2; SSF needs < 0.25)
    --seed S        RNG seed                   (default 42)
    --c1 C          analysis constant          (default 1 for SF, 16 for SSF)
    --exact         use the literal per-sample channel
    --backend B     (sf/ssf) simulation engine: per-agent (default) |
                    mean-field — class-count dynamics, distributionally
                    equivalent under the aggregated channel, scales to
                    n = 10^8; incompatible with --exact, --fault,
                    --restore, --checkpoint, --digest, --adversary
    --threads T     worker threads for the round loop (>= 1; overrides
                    the NOISY_PULL_THREADS environment variable)
    --digest        print a FNV-1a digest of the final outcome (round +
                    opinions) — identical across thread counts
    --trace PATH    write a per-round JSONL trace (correct count, margin,
                    stage occupancy, weak-opinion accuracy) — identical
                    across thread counts
    --metrics-out PATH   write an end-of-run summary JSON (np-run-summary/v1);
                    faulted runs gain a per-event recovery section
    --adversary A   SSF initial corruption: none | all-wrong | poisoned-memory |
                    random-desync | split-brain | fake-consensus
    --fault SPEC    (sf/ssf, repeatable) inject a fault just before round R:
                      R:flip               flip every source's preference
                      R:noise:D            switch to uniform noise level D
                      R:ramp:D:ROUNDS      ramp noise from --delta to D
                      R:sleep:FRAC:ROUNDS  put a FRAC of agents to sleep
                      R:ADVERSARY[:FRAC]   (ssf) re-apply an --adversary
                                           strategy to a FRAC of agents
                    e.g. --fault 40:all-wrong:0.5 --fault 60:ramp:0.2:10
    --budget R      round budget for baselines (default 1000)
    --budget-intervals I   SSF budget in update intervals (default 10)
    --rows \"a,b;c,d\"       reduce: the channel matrix, row-major

SNAPSHOTS (sf/ssf):
    --checkpoint PATH      write an np-snap/v1 snapshot every K rounds
    --checkpoint-every K   snapshot cadence (default 32; needs --checkpoint)
    --restore PATH         resume a run from a snapshot; pass the same
                           flags as the original run (--fault plans are
                           re-attached at the saved cursor)

SWEEPS:
    sweep run SPEC --out DIR [--resume] [--threads T]
                   [--checkpoint-every K] [--stop-after N]
        SPEC is `key = value[, value...]` lines (# comments):
        protocol/n/delta accept comma grids; h, s0, s1, c1, runs, seed,
        budget-intervals, backend are scalars (backend: per-agent |
        mean-field — counts jobs run atomically, without checkpoints).
        Progress lives in DIR/manifest.jsonl
        (np-manifest/v1); finished sweeps aggregate to DIR/report.json
        (np-bench/v1), byte-identical however the sweep was interrupted,
        resumed or threaded. --stop-after N exits after N checkpoint
        writes (the CI kill switch).
    sweep throughput [--n N] [--rounds R] [--delta D] [--seed S]

CLUSTER:
    cluster [--protocol sf|ssf] [--transport sim|tcp] [--n N] [--h H]
            [--s0 K] [--s1 K] [--delta D] [--seed S] [--c1 C]
            [--budget-intervals I] [--metrics-out PATH]
        sim (default): deterministic simulated-time scheduler — virtual
        clock, byte-identical `cluster digest` per seed. tcp: real
        length-prefixed sockets on 127.0.0.1, one thread per node,
        wall-clock timing (digest not reproducible by design).
        Timing: --tick-us T (round length, default 1000), --latency-us L
        (default 50), --jitter-us J (default 100), --stagger-us B (boot
        spread, default tick), --drop R (per-message drop rate).
        Transport faults: --partition-at ROUND [--partition-split K]
        [--heal-at ROUND] — sever links across {0..K} vs {K..n}, then
        heal; SSF re-converges, measured from the heal point.
        Rejects round-engine flags (--topology, --backend, --fault,
        --restore/--checkpoint) with an explanation.
";

fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv {
        [] => {
            println!("{USAGE}");
            Ok(())
        }
        [cmd, rest @ ..] => {
            let sub = cmd.as_str();
            match sub {
                "help" | "--help" | "-h" => {
                    println!("{USAGE}");
                    Ok(())
                }
                "run" => match rest {
                    [what, flags @ ..] => {
                        let args = Args::parse(flags.iter().cloned()).map_err(|e| e.to_string())?;
                        match what.as_str() {
                            "sf" => commands::run_sf(&args),
                            "ssf" => commands::run_ssf(&args),
                            "baseline" => match args.positional() {
                                [name, ..] => commands::run_baseline(name, &args),
                                [] => Err("run baseline: missing baseline name".into()),
                            },
                            other => {
                                Err(format!("unknown protocol `{other}`; try sf, ssf, baseline"))
                            }
                        }
                    }
                    [] => Err("run: missing protocol (sf | ssf | baseline <name>)".into()),
                },
                "sweep" => match rest {
                    [what, flags @ ..] => {
                        let args = Args::parse(flags.iter().cloned()).map_err(|e| e.to_string())?;
                        match what.as_str() {
                            "run" => commands::sweep_run(&args),
                            "throughput" => commands::sweep_throughput(&args),
                            other => Err(format!(
                                "unknown sweep subcommand `{other}`; try run, throughput"
                            )),
                        }
                    }
                    [] => Err("sweep: missing subcommand (run SPEC | throughput)".into()),
                },
                "cluster" => {
                    let args = Args::parse(rest.iter().cloned()).map_err(|e| e.to_string())?;
                    commands::cluster_cmd(&args)
                }
                "theory" => {
                    let args = Args::parse(rest.iter().cloned()).map_err(|e| e.to_string())?;
                    commands::theory_cmd(&args)
                }
                "reduce" => {
                    let args = Args::parse(rest.iter().cloned()).map_err(|e| e.to_string())?;
                    commands::reduce_cmd(&args)
                }
                other => Err(format!("unknown command `{other}`; see `noisy-pull help`")),
            }
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = dispatch(&argv) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_paths_succeed() {
        dispatch(&v(&[])).unwrap();
        dispatch(&v(&["help"])).unwrap();
        dispatch(&v(&["--help"])).unwrap();
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch(&v(&["frobnicate"])).is_err());
        assert!(dispatch(&v(&["run"])).is_err());
        assert!(dispatch(&v(&["run", "nope"])).is_err());
        assert!(dispatch(&v(&["run", "baseline"])).is_err());
    }

    #[test]
    fn end_to_end_sf_run() {
        dispatch(&v(&[
            "run", "sf", "--n", "64", "--delta", "0.1", "--seed", "3",
        ]))
        .unwrap();
    }

    #[test]
    fn end_to_end_sf_run_with_threads_and_digest() {
        dispatch(&v(&[
            "run",
            "sf",
            "--n",
            "64",
            "--delta",
            "0.1",
            "--seed",
            "3",
            "--threads",
            "2",
            "--digest",
        ]))
        .unwrap();
    }

    #[test]
    fn end_to_end_faulted_ssf_run() {
        dispatch(&v(&[
            "run",
            "ssf",
            "--n",
            "64",
            "--delta",
            "0.1",
            "--c1",
            "8",
            "--fault",
            "20:split-brain:0.5",
            "--fault",
            "40:sleep:0.25:2",
        ]))
        .unwrap();
    }

    #[test]
    fn end_to_end_theory_and_reduce() {
        dispatch(&v(&["theory", "--n", "256"])).unwrap();
        dispatch(&v(&["reduce", "--rows", "0.95,0.05;0.1,0.9"])).unwrap();
    }
}
