//! A small, dependency-free flag parser for the CLI.
//!
//! Supports `--flag value`, `--flag=value` and boolean `--flag` forms;
//! unknown flags are errors (typos should not silently become defaults).
//! Boolean switches are declared in [`BOOLEAN_SWITCHES`] so that
//! `--exact positional` parses the positional as positional, not as the
//! switch's value.

use std::collections::BTreeMap;
use std::fmt;

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

/// Flags that never take a value. A bare occurrence means `true`;
/// `--flag=false` is also accepted.
pub const BOOLEAN_SWITCHES: &[&str] = &["exact", "digest", "resume"];

/// Parsed flags: a map from flag name (without dashes) to the raw values
/// it was given, in order (`"true"` for bare boolean flags), plus the
/// list of positional arguments. Single-value accessors read the *last*
/// occurrence; repeatable flags (e.g. `--fault`) read them all with
/// [`Args::get_all`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    flags: BTreeMap<String, Vec<String>>,
    positional: Vec<String>,
    consumed: std::cell::RefCell<std::collections::BTreeSet<String>>,
}

impl Args {
    /// Parses raw argument strings (without the program/subcommand names).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] for malformed flags (e.g. `---x`, a dangling
    /// `--flag` at the end when the next token is another flag is fine —
    /// it becomes boolean).
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = raw.into_iter().map(Into::into).collect();
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(body) = t.strip_prefix("--") {
                if body.is_empty() || body.starts_with('-') {
                    return Err(ArgsError(format!("malformed flag `{t}`")));
                }
                if let Some((k, v)) = body.split_once('=') {
                    flags
                        .entry(k.to_string())
                        .or_insert_with(Vec::new)
                        .push(v.to_string());
                } else if !BOOLEAN_SWITCHES.contains(&body)
                    && i + 1 < tokens.len()
                    && !tokens[i + 1].starts_with("--")
                {
                    flags
                        .entry(body.to_string())
                        .or_insert_with(Vec::new)
                        .push(tokens[i + 1].clone());
                    i += 1;
                } else {
                    flags
                        .entry(body.to_string())
                        .or_insert_with(Vec::new)
                        .push("true".to_string());
                }
            } else {
                positional.push(t.clone());
            }
            i += 1;
        }
        Ok(Args {
            flags,
            positional,
            consumed: Default::default(),
        })
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    fn raw(&self, name: &str) -> Option<&str> {
        let v = self
            .flags
            .get(name)
            .and_then(|vals| vals.last())
            .map(String::as_str);
        if v.is_some() {
            self.consumed.borrow_mut().insert(name.to_string());
        }
        v
    }

    /// Every value a repeatable flag was given, in command-line order
    /// (empty when the flag is absent).
    pub fn get_all(&self, name: &str) -> Vec<String> {
        match self.flags.get(name) {
            None => Vec::new(),
            Some(vals) => {
                self.consumed.borrow_mut().insert(name.to_string());
                vals.clone()
            }
        }
    }

    /// A string flag with a default.
    pub fn str_or(&self, name: &str, default: &str) -> String {
        self.raw(name).unwrap_or(default).to_string()
    }

    /// A typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.raw(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError(format!("flag --{name}: cannot parse `{v}`"))),
        }
    }

    /// A typed flag with no default: `None` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the value does not parse as `T`.
    pub fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgsError> {
        match self.raw(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgsError(format!("flag --{name}: cannot parse `{v}`"))),
        }
    }

    /// A boolean switch (present means true).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if an explicit value is not `true`/`false`.
    pub fn switch(&self, name: &str) -> Result<bool, ArgsError> {
        match self.raw(name) {
            None => Ok(false),
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            Some(v) => Err(ArgsError(format!(
                "flag --{name}: expected true/false, got `{v}`"
            ))),
        }
    }

    /// Fails if any flag was never read — catches typos like `--detla`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] listing unknown flags.
    pub fn finish(&self) -> Result<(), ArgsError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<&String> = self
            .flags
            .keys()
            .filter(|k| !consumed.contains(*k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgsError(format!(
                "unknown flag(s): {}",
                unknown
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_flag_forms() {
        let args = Args::parse(["--n", "100", "--delta=0.2", "--exact", "pos"]).unwrap();
        assert_eq!(args.get_or("n", 0usize).unwrap(), 100);
        assert_eq!(args.get_or("delta", 0.0f64).unwrap(), 0.2);
        assert!(args.switch("exact").unwrap());
        assert_eq!(args.positional(), &["pos".to_string()]);
        args.finish().unwrap();
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = Args::parse::<_, String>([]).unwrap();
        assert_eq!(args.get_or("n", 42usize).unwrap(), 42);
        assert!(!args.switch("exact").unwrap());
        args.finish().unwrap();
    }

    #[test]
    fn bad_values_are_errors() {
        let args = Args::parse(["--n", "abc"]).unwrap();
        assert!(args.get_or("n", 0usize).is_err());
        let args = Args::parse(["--exact=yes"]).unwrap();
        assert!(args.switch("exact").is_err());
    }

    #[test]
    fn declared_switch_does_not_swallow_positional() {
        let args = Args::parse(["--exact", "pos"]).unwrap();
        assert!(args.switch("exact").unwrap());
        assert_eq!(args.positional(), &["pos".to_string()]);
        args.finish().unwrap();
        let args = Args::parse(["--exact=false"]).unwrap();
        assert!(!args.switch("exact").unwrap());
    }

    #[test]
    fn malformed_flags_are_rejected() {
        assert!(Args::parse(["---x"]).is_err());
        assert!(Args::parse(["--"]).is_err());
    }

    #[test]
    fn boolean_flag_before_another_flag() {
        // Even undeclared flags become boolean when followed by a flag.
        let args = Args::parse(["--series", "--n", "10"]).unwrap();
        assert!(args.switch("series").unwrap());
        assert_eq!(args.get_or("n", 0usize).unwrap(), 10);
    }

    #[test]
    fn unknown_flags_are_caught_by_finish() {
        let args = Args::parse(["--detla", "0.2"]).unwrap();
        let err = args.finish().unwrap_err();
        assert!(err.to_string().contains("--detla"));
    }

    #[test]
    fn optional_flags_distinguish_absent_from_present() {
        let args = Args::parse(["--threads", "4"]).unwrap();
        assert_eq!(args.get_opt::<usize>("threads").unwrap(), Some(4));
        assert_eq!(args.get_opt::<usize>("budget").unwrap(), None);
        assert!(Args::parse(["--threads", "x"])
            .unwrap()
            .get_opt::<usize>("threads")
            .is_err());
    }

    #[test]
    fn negative_numbers_as_values() {
        let args = Args::parse(["--x", "-3"]).unwrap();
        assert_eq!(args.get_or("x", 0i64).unwrap(), -3);
    }

    #[test]
    fn repeated_flags_accumulate_in_order() {
        let args = Args::parse([
            "--fault",
            "5:flip",
            "--fault=9:sleep:0.5:3",
            "--fault",
            "2:noise:0.4",
        ])
        .unwrap();
        assert_eq!(
            args.get_all("fault"),
            vec!["5:flip", "9:sleep:0.5:3", "2:noise:0.4"]
        );
        assert!(args.get_all("missing").is_empty());
        args.finish().unwrap();
    }

    #[test]
    fn single_value_accessors_read_the_last_occurrence() {
        let args = Args::parse(["--n", "8", "--n", "16"]).unwrap();
        assert_eq!(args.get_or("n", 0usize).unwrap(), 16);
        args.finish().unwrap();
    }
}
