//! Integration tests driving the real `noisy-pull` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_noisy-pull"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "exit {:?} for {args:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn run_err(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "expected failure for {args:?}");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_prints_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("USAGE"));
    assert!(out.contains("run sf"));
    let bare = run_ok(&[]);
    assert!(bare.contains("USAGE"));
}

#[test]
fn sf_run_reports_consensus() {
    let out = run_ok(&["run", "sf", "--n", "128", "--delta", "0.1", "--seed", "4"]);
    assert!(out.contains("SF:"), "{out}");
    assert!(out.contains("consensus settled at round"), "{out}");
}

#[test]
fn ssf_run_with_adversary() {
    let out = run_ok(&[
        "run",
        "ssf",
        "--n",
        "128",
        "--delta",
        "0.1",
        "--c1",
        "8",
        "--adversary",
        "poisoned-memory",
        "--seed",
        "2",
    ]);
    assert!(out.contains("consensus settled"), "{out}");
}

#[test]
fn baseline_voter_reports_failure_under_noise() {
    let out = run_ok(&["run", "baseline", "voter", "--n", "64", "--budget", "50"]);
    assert!(out.contains("zealot-voter"), "{out}");
}

#[test]
fn push_baseline_runs() {
    let out = run_ok(&[
        "run", "baseline", "push", "--n", "64", "--h", "1", "--delta", "0.1",
    ]);
    assert!(out.contains("push-spreading"), "{out}");
}

#[test]
fn theory_evaluates_bounds() {
    let out = run_ok(&["theory", "--n", "4096", "--h", "1", "--delta", "0.2"]);
    assert!(out.contains("Theorem 3"), "{out}");
    assert!(out.contains("Theorem 4"), "{out}");
    assert!(out.contains("Theorem 5"), "{out}");
}

#[test]
fn reduce_prints_matrices() {
    let out = run_ok(&["reduce", "--rows", "0.9,0.1;0.2,0.8"]);
    assert!(out.contains("artificial noise P"), "{out}");
    assert!(out.contains("composed N·P"), "{out}");
}

#[test]
fn errors_exit_nonzero_with_message() {
    let err = run_err(&["run", "sf", "--n", "64", "--bogus", "x"]);
    assert!(err.contains("--bogus"), "{err}");
    let err = run_err(&["frobnicate"]);
    assert!(err.contains("unknown command"), "{err}");
    let err = run_err(&["run", "ssf", "--adversary", "gremlin", "--n", "64"]);
    assert!(err.contains("gremlin"), "{err}");
    let err = run_err(&["reduce", "--rows", "0.3,0.7;0.7,0.3"]);
    assert!(
        err.contains("not δ-upper bounded") || err.contains("reduction"),
        "{err}"
    );
}

#[test]
fn cluster_sim_run_is_deterministic() {
    let args = [
        "cluster", "--n", "48", "--delta", "0.05", "--c1", "1", "--seed", "9",
    ];
    let first = run_ok(&args);
    assert!(first.contains("cluster digest:"), "{first}");
    assert!(first.contains("converged at round"), "{first}");
    let second = run_ok(&args);
    assert_eq!(first, second, "sim cluster output must be byte-identical");
}

#[test]
fn cluster_partition_heals_and_reconverges() {
    let out = run_ok(&[
        "cluster",
        "--n",
        "48",
        "--delta",
        "0.05",
        "--c1",
        "1",
        "--seed",
        "11",
        "--partition-at",
        "3",
        "--heal-at",
        "6",
        "--budget-intervals",
        "40",
    ]);
    assert!(out.contains("re-converged"), "{out}");
    assert!(out.contains("converged at round"), "{out}");
}

#[test]
fn cluster_writes_run_summary() {
    let dir = std::env::temp_dir().join("np_cli_cluster_summary_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cluster.json");
    let out = run_ok(&[
        "cluster",
        "--n",
        "32",
        "--delta",
        "0.05",
        "--c1",
        "1",
        "--seed",
        "5",
        "--metrics-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.contains("cluster summary:"), "{out}");
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"schema\": \"np-run-summary/v1\""), "{json}");
    assert!(json.contains("\"protocol\": \"ssf-cluster-sim\""), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cluster_rejects_round_engine_flags() {
    let err = run_err(&["cluster", "--topology", "ring:2"]);
    assert!(err.contains("does not support --topology"), "{err}");
    let err = run_err(&["cluster", "--backend", "mean-field"]);
    assert!(err.contains("does not support --backend"), "{err}");
    let err = run_err(&["cluster", "--protocol", "push"]);
    assert!(err.contains("does not support --protocol push"), "{err}");
    let err = run_err(&["cluster", "--fault", "3:flip"]);
    assert!(err.contains("does not support --fault"), "{err}");
    let err = run_err(&["cluster", "--restore", "snap.bin"]);
    assert!(err.contains("--restore"), "{err}");
    let err = run_err(&["cluster", "--heal-at", "4"]);
    assert!(err.contains("--heal-at requires --partition-at"), "{err}");
    let err = run_err(&["cluster", "--transport", "quic"]);
    assert!(err.contains("unknown transport"), "{err}");
}

#[test]
fn cluster_tcp_run_converges() {
    let out = run_ok(&[
        "cluster",
        "--transport",
        "tcp",
        "--n",
        "16",
        "--delta",
        "0.05",
        "--c1",
        "1",
        "--seed",
        "3",
        "--tick-us",
        "2000",
        "--budget-intervals",
        "30",
    ]);
    assert!(out.contains("cluster[tcp]"), "{out}");
    assert!(out.contains("converged at round"), "{out}");
}
