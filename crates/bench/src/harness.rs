//! Canonical experiment drivers: build a world, run it, report when the
//! system *settled* on the correct consensus.
//!
//! The settle round is the first round from which consensus held
//! continuously to the end of the run — the measurement the paper's
//! Definition 2 calls for (reach consensus *and stay*), robust against
//! transient all-correct configurations early in a run.

use std::time::{Duration, Instant};

use noisy_pull::adversary::SsfAdversary;
use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_engine::channel::ChannelKind;
use np_engine::metrics::RunOutcome;
use np_engine::population::PopulationConfig;
use np_engine::protocol::Protocol;
use np_engine::runner::{run_batch, suggested_threads};
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;
use np_stats::estimate::{Running, Summary};
use np_stats::seeds::SeedSequence;

use crate::report::PerfPoint;

/// Result of one measured run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measured {
    /// First round from which correct consensus held to the end of the
    /// run, if it did.
    pub settled_round: Option<u64>,
    /// Rounds executed.
    pub budget: u64,
}

impl Measured {
    /// Returns `true` if the run ended in (settled) consensus.
    pub fn converged(&self) -> bool {
        self.settled_round.is_some()
    }
}

/// Picks the cheaper of the two distribution-identical channels: literal
/// sampling for tiny `h`, aggregated binomial counts otherwise.
pub fn auto_channel(h: usize) -> ChannelKind {
    if h <= 8 {
        ChannelKind::Exact
    } else {
        ChannelKind::Aggregated
    }
}

/// Steps `world` for `budget` rounds and reports the settle round.
pub fn run_settled<P: Protocol>(world: &mut World<P>, budget: u64) -> Measured {
    let mut last_bad: u64 = 0;
    for r in 1..=budget {
        world.step();
        if !world.is_consensus() {
            last_bad = r;
        }
    }
    let settled_round = (budget > 0 && last_bad < budget).then_some(last_bad + 1);
    Measured {
        settled_round,
        budget,
    }
}

/// A fully specified SF experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfSetup {
    /// Population size.
    pub n: usize,
    /// Sources preferring 0.
    pub s0: usize,
    /// Sources preferring 1.
    pub s1: usize,
    /// Sample size.
    pub h: usize,
    /// Uniform noise level.
    pub delta: f64,
    /// Tuning constant `c₁` for Eq. (19).
    pub c1: f64,
}

impl SfSetup {
    /// Single-source shorthand with `h = n`.
    pub fn single_source_full_sample(n: usize, delta: f64, c1: f64) -> Self {
        SfSetup {
            n,
            s0: 0,
            s1: 1,
            h: n,
            delta,
            c1,
        }
    }

    /// The derived population config.
    ///
    /// # Panics
    ///
    /// Panics on invalid population parameters (experiment code chooses
    /// valid grids).
    pub fn config(&self) -> PopulationConfig {
        PopulationConfig::new(self.n, self.s0, self.s1, self.h).expect("valid experiment grid")
    }

    /// The derived SF parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid `delta`/`c1`.
    pub fn params(&self) -> SfParams {
        SfParams::derive(&self.config(), self.delta, self.c1).expect("valid experiment grid")
    }

    /// Runs one seeded execution for the full schedule.
    ///
    /// The world runs single-threaded: experiment parallelism lives at
    /// the batch level ([`Self::run_many`]), and stacking intra-round
    /// threads on top of batch threads would only oversubscribe cores.
    /// Outcomes are thread-count-invariant either way.
    pub fn run(&self, seed: u64) -> Measured {
        let config = self.config();
        let params = self.params();
        let noise = NoiseMatrix::uniform(2, self.delta).expect("valid delta");
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            auto_channel(self.h),
            seed,
        )
        .expect("alphabets match");
        world.set_threads(1);
        run_settled(&mut world, params.total_rounds())
    }

    /// Runs `runs` seeded executions in parallel.
    pub fn run_many(&self, master_seed: u64, runs: usize) -> Vec<Measured> {
        let setup = *self;
        run_batch(
            SeedSequence::new(master_seed),
            runs,
            suggested_threads(),
            move |seed| setup.run(seed),
        )
    }
}

/// A fully specified SSF experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsfSetup {
    /// Population size.
    pub n: usize,
    /// Sources preferring 0.
    pub s0: usize,
    /// Sources preferring 1.
    pub s1: usize,
    /// Sample size.
    pub h: usize,
    /// Uniform noise level (must be < ¼).
    pub delta: f64,
    /// Tuning constant `c₁` for Eq. (30).
    pub c1: f64,
    /// Initial-state corruption strategy.
    pub adversary: SsfAdversary,
    /// Round budget in units of the update interval `⌈m/h⌉`.
    pub budget_intervals: u64,
}

impl SsfSetup {
    /// Single-source shorthand: `h = n`, no adversary, 8-interval budget.
    pub fn single_source_full_sample(n: usize, delta: f64, c1: f64) -> Self {
        SsfSetup {
            n,
            s0: 0,
            s1: 1,
            h: n,
            delta,
            c1,
            adversary: SsfAdversary::None,
            budget_intervals: 8,
        }
    }

    /// The derived population config.
    ///
    /// # Panics
    ///
    /// Panics on invalid population parameters.
    pub fn config(&self) -> PopulationConfig {
        PopulationConfig::new(self.n, self.s0, self.s1, self.h).expect("valid experiment grid")
    }

    /// The derived SSF parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid `delta`/`c1`.
    pub fn params(&self) -> SsfParams {
        SsfParams::derive(&self.config(), self.delta, self.c1).expect("valid experiment grid")
    }

    /// Runs one seeded execution: corrupt initial states per the
    /// adversary, then run for the interval budget.
    pub fn run(&self, seed: u64) -> Measured {
        let config = self.config();
        let params = self.params();
        let correct = config.correct_opinion();
        let m = params.m();
        let noise = NoiseMatrix::uniform(4, self.delta).expect("valid delta");
        let mut world = World::new(
            &SelfStabilizingSourceFilter::new(params),
            config,
            &noise,
            auto_channel(self.h),
            seed,
        )
        .expect("alphabets match");
        // Single-threaded for the same reason as `SfSetup::run`: the
        // batch level owns the parallelism.
        world.set_threads(1);
        let adversary = self.adversary;
        world.corrupt_agents(|id, agent, rng| {
            adversary.corrupt(agent, correct, m, id, rng);
        });
        let budget = self.budget_intervals * params.update_interval();
        run_settled(&mut world, budget)
    }

    /// Runs `runs` seeded executions in parallel.
    pub fn run_many(&self, master_seed: u64, runs: usize) -> Vec<Measured> {
        let setup = *self;
        run_batch(
            SeedSequence::new(master_seed),
            runs,
            suggested_threads(),
            move |seed| setup.run(seed),
        )
    }
}

/// One seeded benchmark run: the engine's [`RunOutcome`] plus the run's
/// wall-clock cost. The outcome is thread-count-invariant; the wall time
/// of course is not (it feeds the perf trajectory, never byte-compared
/// artifacts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunRecord {
    /// The per-run seed drawn from the batch's [`SeedSequence`].
    pub seed: u64,
    /// The engine outcome.
    pub outcome: RunOutcome,
    /// Wall-clock time of this run (measured inside the batch worker, so
    /// it includes scheduler contention — representative of batch
    /// throughput, not of an isolated run).
    pub wall: Duration,
}

/// Runs `runs` seeded jobs in parallel (batch-level parallelism via
/// [`run_batch`]), recording each seed's outcome and wall time. The
/// outcomes depend only on `(master_seed, runs, job)`; the timings vary
/// run to run.
pub fn run_outcomes<F>(master_seed: u64, runs: usize, job: F) -> Vec<RunRecord>
where
    F: Fn(u64) -> RunOutcome + Sync,
{
    run_batch(
        SeedSequence::new(master_seed),
        runs,
        suggested_threads(),
        |seed| {
            let start = Instant::now();
            let outcome = job(seed);
            RunRecord {
                seed,
                outcome,
                wall: start.elapsed(),
            }
        },
    )
}

/// Aggregates one batch of [`RunRecord`]s into a perf-trajectory point
/// for [`crate::report::save_bench_json`].
pub fn perf_point(label: &str, n: usize, records: &[RunRecord]) -> PerfPoint {
    let mut rounds = Running::new();
    let mut wall = Running::new();
    let mut converged = 0usize;
    for record in records {
        if let Some(r) = record.outcome.rounds() {
            converged += 1;
            rounds.push(r as f64);
        }
        wall.push(record.wall.as_secs_f64() * 1e3);
    }
    PerfPoint {
        label: label.to_string(),
        n,
        runs: records.len(),
        converged,
        mean_rounds: rounds.mean().ok(),
        mean_wall_ms: wall.mean().unwrap_or(0.0),
        median_wall_ms: None,
        p95_wall_ms: None,
        backend: None,
        degree: None,
        convergence_rate: None,
        messages_total: None,
    }
}

/// Aggregates a batch of measurements: success rate plus a [`Summary`] of
/// the settle rounds of the successful runs (`None` if none succeeded).
pub fn summarize(measured: &[Measured]) -> (f64, Option<Summary>) {
    if measured.is_empty() {
        return (0.0, None);
    }
    let settled: Vec<f64> = measured
        .iter()
        .filter_map(|m| m.settled_round.map(|r| r as f64))
        .collect();
    let rate = settled.len() as f64 / measured.len() as f64;
    let summary = Summary::from_values(&settled).ok();
    (rate, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_setup_runs_and_converges() {
        let setup = SfSetup::single_source_full_sample(128, 0.15, 1.0);
        let m = setup.run(3);
        assert!(m.converged(), "{m:?}");
        assert!(m.settled_round.unwrap() <= m.budget);
    }

    #[test]
    fn sf_run_many_is_deterministic() {
        let setup = SfSetup::single_source_full_sample(64, 0.1, 1.0);
        let a = setup.run_many(9, 4);
        let b = setup.run_many(9, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn ssf_setup_with_adversary_converges() {
        let setup = SsfSetup {
            n: 128,
            s0: 0,
            s1: 1,
            h: 128,
            delta: 0.1,
            c1: 8.0,
            adversary: SsfAdversary::PoisonedMemory,
            budget_intervals: 10,
        };
        let m = setup.run(5);
        assert!(m.converged(), "{m:?}");
    }

    #[test]
    fn summarize_reports_rates() {
        let ms = [
            Measured {
                settled_round: Some(10),
                budget: 100,
            },
            Measured {
                settled_round: None,
                budget: 100,
            },
        ];
        let (rate, summary) = summarize(&ms);
        assert_eq!(rate, 0.5);
        assert_eq!(summary.unwrap().mean(), 10.0);
        let (zero_rate, none) = summarize(&[]);
        assert_eq!(zero_rate, 0.0);
        assert!(none.is_none());
    }

    #[test]
    fn run_outcomes_are_seed_deterministic() {
        let job = |seed: u64| {
            let setup = SfSetup::single_source_full_sample(64, 0.1, 1.0);
            let config = setup.config();
            let params = setup.params();
            let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
            let mut world = World::new(
                &SourceFilter::new(params),
                config,
                &noise,
                ChannelKind::Aggregated,
                seed,
            )
            .unwrap();
            world.set_threads(1);
            world.run_until_consensus(params.total_rounds())
        };
        let a = run_outcomes(7, 4, job);
        let b = run_outcomes(7, 4, job);
        assert_eq!(a.len(), 4);
        let outcomes_a: Vec<_> = a.iter().map(|r| r.outcome).collect();
        let outcomes_b: Vec<_> = b.iter().map(|r| r.outcome).collect();
        assert_eq!(outcomes_a, outcomes_b);
        let seeds: Vec<_> = a.iter().map(|r| r.seed).collect();
        let sequence = SeedSequence::new(7);
        let expected: Vec<_> = (0..4).map(|i| sequence.seed_at(i)).collect();
        assert_eq!(seeds, expected);
    }

    #[test]
    fn perf_point_aggregates_converged_runs_only() {
        let records = [
            RunRecord {
                seed: 1,
                outcome: RunOutcome::Converged { rounds: 10 },
                wall: Duration::from_millis(4),
            },
            RunRecord {
                seed: 2,
                outcome: RunOutcome::TimedOut {
                    budget: 100,
                    correct_at_end: 40,
                },
                wall: Duration::from_millis(8),
            },
            RunRecord {
                seed: 3,
                outcome: RunOutcome::Converged { rounds: 20 },
                wall: Duration::from_millis(6),
            },
        ];
        let point = perf_point("n=64", 64, &records);
        assert_eq!(point.label, "n=64");
        assert_eq!(point.n, 64);
        assert_eq!(point.runs, 3);
        assert_eq!(point.converged, 2);
        assert_eq!(point.mean_rounds, Some(15.0));
        assert!((point.mean_wall_ms - 6.0).abs() < 1e-9);
    }

    #[test]
    fn perf_point_with_no_convergence_has_null_mean_rounds() {
        let records = [RunRecord {
            seed: 1,
            outcome: RunOutcome::TimedOut {
                budget: 5,
                correct_at_end: 3,
            },
            wall: Duration::from_millis(1),
        }];
        let point = perf_point("stuck", 8, &records);
        assert_eq!(point.converged, 0);
        assert_eq!(point.mean_rounds, None);
    }

    #[test]
    fn run_settled_reports_first_stable_round() {
        // A world that is in consensus from the start (sources majority,
        // no noise) settles at round 1.
        use np_baselines::majority::HMajority;
        let config = PopulationConfig::new(16, 0, 12, 16).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.0).unwrap();
        let mut world = World::new(&HMajority, config, &noise, ChannelKind::Aggregated, 1).unwrap();
        let m = run_settled(&mut world, 10);
        assert!(m.converged());
        assert!(m.settled_round.unwrap() <= 3);
    }
}
