//! Experiment harness for the noisy PULL reproduction.
//!
//! One binary per figure/claim of the paper lives in `src/bin/` (see the
//! experiment index in `DESIGN.md` and results in `EXPERIMENTS.md`);
//! Criterion micro-benchmarks of the hot paths live in `benches/`.
//!
//! The library part provides what they share:
//!
//! * [`report`] — aligned console tables plus CSV output under
//!   `target/experiments/`.
//! * [`harness`] — canonical "run protocol X to consensus and report the
//!   convergence round" drivers for SF, SSF and the baselines, with
//!   multi-seed batching.
//!
//! Run all experiments with:
//!
//! ```text
//! for exp in exp_fig1 exp_logtime exp_speedup_h exp_noise_sweep exp_bias_sweep \
//!            exp_self_stab exp_lb_tightness exp_weak_opinion exp_boosting \
//!            exp_reduction exp_baselines exp_conflict; do
//!     cargo run --release -p np-bench --bin $exp
//! done
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
