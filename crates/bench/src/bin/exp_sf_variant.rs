//! EXP-VARIANT — testing the Remark in §2.1: does the "more natural"
//! alternating-display variant (SF-ALT) work as well as SF?
//!
//! Same schedule, same budgets: we compare end-to-end success and
//! weak-opinion accuracy. Expected: SF-ALT converges too (confirming the
//! paper's plausibility claim), with slightly lower weak-opinion accuracy
//! at equal `m` — the alternating background contributes `Bernoulli(½)`
//! variance per observation where SF's within-phase background is
//! deterministic.

use noisy_pull::params::SfParams;
use noisy_pull::sf::SourceFilter;
use noisy_pull::sf_alternating::AlternatingSourceFilter;
use np_bench::harness::run_settled;
use np_bench::report::{fmt_f64, Table};
use np_engine::channel::ChannelKind;
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

struct VariantStats {
    success: f64,
    settle_mean: f64,
    weak_accuracy: f64,
}

fn measure<F, P>(make_world: F, params: SfParams, listening_rounds: u64, runs: u64) -> VariantStats
where
    P: np_engine::protocol::Protocol,
    F: Fn(u64) -> (World<P>, Box<dyn Fn(&P::Agent) -> Option<Opinion>>),
{
    let mut wins = 0u64;
    let mut settle_acc = 0.0;
    let mut weak_correct = 0u64;
    let mut weak_total = 0u64;
    for seed in 0..runs {
        // Weak accuracy pass.
        let (mut world, weak_of) = make_world(seed);
        world.run(listening_rounds);
        for agent in world.iter_agents() {
            if let Some(w) = weak_of(agent) {
                weak_correct += u64::from(w == Opinion::One);
                weak_total += 1;
            }
        }
        // Fresh end-to-end pass (same seed, full schedule).
        let (mut world, _) = make_world(seed);
        let m = run_settled(&mut world, params.total_rounds());
        if let Some(r) = m.settled_round {
            wins += 1;
            settle_acc += r as f64;
        }
    }
    VariantStats {
        success: wins as f64 / runs as f64,
        settle_mean: if wins > 0 {
            settle_acc / wins as f64
        } else {
            f64::NAN
        },
        weak_accuracy: weak_correct as f64 / weak_total.max(1) as f64,
    }
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let sizes: &[usize] = if quick { &[256] } else { &[256, 1024, 4096] };
    let runs = if quick { 5 } else { 15 };
    let delta = 0.2;
    let c1 = 1.0;

    let mut table = Table::new(
        "EXP-VARIANT: SF vs SF-ALT (alternating displays, §2.1 Remark), h = n, single source",
        &["n", "variant", "success", "settle_mean", "weak_accuracy"],
    );
    for &n in sizes {
        let config = PopulationConfig::new(n, 0, 1, n).expect("grid");
        let params = SfParams::derive(&config, delta, c1).expect("grid");
        let noise = NoiseMatrix::uniform(2, delta).expect("grid");
        let listening = 2 * params.phase_len();

        let sf = measure(
            |seed| {
                let world = World::new(
                    &SourceFilter::new(params),
                    config,
                    &noise,
                    ChannelKind::Aggregated,
                    0xFA ^ seed,
                )
                .expect("alphabets match");
                (
                    world,
                    Box::new(|a: &noisy_pull::sf::SfAgent| a.weak_opinion()),
                )
            },
            params,
            listening,
            runs,
        );
        table.push_row(&[
            &n,
            &"SF",
            &fmt_f64(sf.success),
            &fmt_f64(sf.settle_mean),
            &fmt_f64(sf.weak_accuracy),
        ]);

        let alt = measure(
            |seed| {
                let world = World::new(
                    &AlternatingSourceFilter::new(params),
                    config,
                    &noise,
                    ChannelKind::Aggregated,
                    0xFA ^ seed,
                )
                .expect("alphabets match");
                (
                    world,
                    Box::new(|a: &noisy_pull::sf_alternating::AltSfAgent| a.weak_opinion()),
                )
            },
            params,
            listening,
            runs,
        );
        table.push_row(&[
            &n,
            &"SF-ALT",
            &fmt_f64(alt.success),
            &fmt_f64(alt.settle_mean),
            &fmt_f64(alt.weak_accuracy),
        ]);
    }
    table.emit("sf_variant");
    println!(
        "expected: SF-ALT succeeds too (the Remark's plausibility claim \
         holds) with weak accuracy a little below SF's at equal m — the \
         price of a stochastic instead of deterministic neutral background."
    );
}
