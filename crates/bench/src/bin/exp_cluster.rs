//! EXP-CLUSTER — the node runtime under transport conditions.
//!
//! Every other bench in this repo runs the round engine: a global
//! barrier, all agents stepping in lockstep. The [`np_net`] runtime has
//! no barrier — each node keeps a local round clock and pull replies
//! race real (simulated) network latency, jitter and loss. This
//! experiment maps what that asynchrony costs: SSF on the deterministic
//! simulated-time transport across a latency × drop grid, single
//! source, δ = 0.05.
//!
//! Per point we record the convergence rate across seeds, the mean
//! all-correct local round, the median/p95 *virtual* completion time
//! (the scheduler clock, in ms — reproducible, unlike wall time), and
//! the total message count actually put on the wire (`messages_total`,
//! measured at the transport rather than derived as n·h·rounds — drops
//! and skipped rounds make the closed form wrong here). The committed
//! artifact is `BENCH_cluster.json` (np-bench/v1).
//!
//! Expected shape: latency well under the tick is free — nodes close
//! rounds with a full sample and the runtime tracks the round engine.
//! Message loss thins each round's sample instead of failing it (the
//! protocol's "breathe before speaking" rule tolerates empty rounds),
//! so convergence survives heavy drop at a modest cost in rounds; only
//! when the jittered round trip approaches the tick do replies go stale
//! and the settle round drift up.

use noisy_pull::params::SsfParams;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_bench::report::{fmt_f64, save_bench_json, wall_quantiles, PerfPoint, Table};
use np_engine::runner::{run_batch, suggested_threads};
use np_net::cluster::{ClusterConfig, ClusterReport};
use np_net::faults::NetFaultPlan;
use np_net::sim::SimCluster;
use np_stats::estimate::Running;
use np_stats::seeds::SeedSequence;

const SSF_C1: f64 = 1.0;
/// Round budget, in SSF update intervals.
const BUDGET_INTERVALS: u64 = 30;
const DELTA: f64 = 0.05;
const MASTER_SEED: u64 = 0x90a1;

/// One seeded simulated-time cluster run.
fn run_cluster(n: usize, latency_us: u64, drop: f64, seed: u64) -> ClusterReport {
    let mut cfg = ClusterConfig::new(n, 0, 1, (n as f64).ln().ceil() as usize, DELTA, seed);
    cfg.min_latency_ns = latency_us * 1_000;
    cfg.jitter_ns = cfg.min_latency_ns;
    cfg.drop_rate = drop;
    let pop = cfg.population().expect("valid grid");
    let params = SsfParams::derive(&pop, DELTA, SSF_C1).expect("valid grid");
    let protocol = SelfStabilizingSourceFilter::new(params);
    let budget = BUDGET_INTERVALS * params.update_interval();
    let mut cluster =
        SimCluster::new(&cfg, &protocol, &NetFaultPlan::new()).expect("valid cluster");
    cluster.run_until_correct(budget).expect("sim never fails");
    cluster.report()
}

/// Runs one batch of seeds and aggregates it into a perf point.
fn measure_point(n: usize, runs: usize, latency_us: u64, drop: f64) -> PerfPoint {
    let label = format!("ssf cluster lat={latency_us}us drop={drop}");
    let master = SeedSequence::new(MASTER_SEED).child_of_label(&label);
    let reports = run_batch(master, runs, suggested_threads(), move |seed| {
        run_cluster(n, latency_us, drop, seed)
    });
    let mut rounds = Running::new();
    let mut virtual_ms = Vec::with_capacity(reports.len());
    let mut converged = 0usize;
    let mut messages = 0u64;
    for r in &reports {
        messages += r.messages_total;
        if r.converged {
            converged += 1;
            if let Some(at) = r.convergence_round {
                rounds.push(at as f64);
            }
            // Virtual scheduler time, not wall time: a pure function of
            // the seed, so the quantiles are reproducible.
            virtual_ms.push(r.elapsed_ms);
        }
    }
    let (median, p95) = match wall_quantiles(&virtual_ms) {
        Some((m, p)) => (Some(m), Some(p)),
        None => (None, None),
    };
    let mean = virtual_ms.iter().sum::<f64>() / virtual_ms.len().max(1) as f64;
    PerfPoint {
        label,
        n,
        runs,
        converged,
        mean_rounds: rounds.mean().ok(),
        mean_wall_ms: mean,
        median_wall_ms: median,
        p95_wall_ms: p95,
        backend: Some("sim-cluster".to_string()),
        degree: None,
        convergence_rate: Some(converged as f64 / runs.max(1) as f64),
        messages_total: Some(messages),
    }
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 64 } else { 128 };
    let runs = if quick { 4 } else { 8 };
    // Tick is 1 ms; the last latency row (250 + U[0,250] µs each way)
    // pushes the worst-case round trip to the full tick, so late
    // requests in a round can come back stale.
    let latencies_us = [50u64, 150, 250];
    let drops = [0.0, 0.2, 0.5];

    let mut points = Vec::new();
    let mut table = Table::new(
        &format!("EXP-CLUSTER: node runtime over latency x drop (n = {n}, {runs} seeds)"),
        &["point", "rate", "settle_mean", "virtual_ms_p50", "messages"],
    );
    for &latency_us in &latencies_us {
        for &drop in &drops {
            let point = measure_point(n, runs, latency_us, drop);
            let rate = point.convergence_rate.unwrap_or(0.0);
            let median = point.median_wall_ms.unwrap_or(0.0);
            let messages = point.messages_total.unwrap_or(0);
            match point.mean_rounds {
                Some(mean) => table.push_row(&[
                    &point.label,
                    &fmt_f64(rate),
                    &fmt_f64(mean),
                    &fmt_f64(median),
                    &messages,
                ]),
                None => table.push_row(&[
                    &point.label,
                    &fmt_f64(rate),
                    &"-",
                    &fmt_f64(median),
                    &messages,
                ]),
            }
            points.push(point);
        }
    }

    table.emit("cluster");
    match save_bench_json("cluster", &points) {
        Ok(path) => println!("[bench] {}", path.display()),
        Err(e) => println!("[bench] write failed: {e}"),
    }
    println!(
        "expected shape: sub-tick latency rows all converge with settle \
         rounds near the round engine's; drop rows converge late rather \
         than failing (thinned samples, skipped rounds); the 250 us row \
         adds stale replies without breaking convergence."
    );
}
