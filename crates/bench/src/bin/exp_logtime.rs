//! EXP-T4-N — claim C2 of Theorem 4: with `h = n`, constant noise and a
//! single source, SF spreads information in `O(log n)` rounds.
//!
//! We sweep `n` over powers of two and report the measured settle round
//! (first round from which full correct consensus held to the end). The
//! diagnostic column `settle / ln n` must stay bounded (flat-ish) as `n`
//! grows — that is the logarithmic-time signature. For contrast, the
//! `Ω(n)` lower bound at `h = O(1)` would make `settle / ln n` grow like
//! `n / ln n`.

use np_bench::harness::{summarize, SfSetup};
use np_bench::report::{fmt_f64, Table};

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let sizes: &[usize] = if quick {
        &[256, 512, 1024, 2048]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192, 16384]
    };
    let runs = if quick { 5 } else { 20 };
    let delta = 0.2;
    let c1 = 1.0;

    let mut table = Table::new(
        "EXP-T4-N: SF settle round vs n (h = n, δ = 0.2, single source)",
        &[
            "n",
            "runs",
            "success",
            "settle_mean",
            "settle_p50",
            "schedule_len",
            "settle/ln(n)",
        ],
    );
    for &n in sizes {
        let setup = SfSetup::single_source_full_sample(n, delta, c1);
        let measured = setup.run_many(0x51F0 ^ n as u64, runs);
        let (rate, summary) = summarize(&measured);
        let schedule = setup.params().total_rounds();
        match summary {
            Some(s) => {
                let per_log = s.mean() / (n as f64).ln();
                table.push_row(&[
                    &n,
                    &runs,
                    &fmt_f64(rate),
                    &fmt_f64(s.mean()),
                    &fmt_f64(s.median()),
                    &schedule,
                    &fmt_f64(per_log),
                ]);
            }
            None => {
                table.push_row(&[&n, &runs, &fmt_f64(rate), &"-", &"-", &schedule, &"-"]);
            }
        }
    }
    table.emit("logtime");
    println!("expected shape: success ≈ 1 everywhere; settle/ln(n) bounded (no growth with n).");
}
