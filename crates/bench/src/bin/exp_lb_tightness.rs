//! EXP-LB — tightness against the Theorem 3 lower bound.
//!
//! The paper's headline: SF's upper bound matches Boczkowski et al.'s
//! `Ω(nδ/(h·s²·(1−δ|Σ|)²))` lower bound up to a `log n` factor (in the
//! regime `δ ≥ (s0+s1)/√n`, `s0, s1 ≤ √n`). We measure SF's settle time
//! across a `(n, h, δ, s)` grid and report
//! `ratio = settle / lower_bound` and `ratio / ln n`: the latter should
//! stay within a bounded band across the entire grid, while `ratio`
//! itself may grow logarithmically.

use noisy_pull::theory::lower_bound_rounds;
use np_bench::harness::{summarize, SfSetup};
use np_bench::report::{fmt_f64, Table};

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let runs = if quick { 4 } else { 10 };
    let c1 = 1.0;

    // Grid chosen inside the theorem's tightness regime:
    // δ ≥ (s0+s1)/√n and s ≤ √n.
    let grid: &[(usize, usize, f64, usize)] = if quick {
        &[(512, 512, 0.2, 1), (512, 64, 0.2, 1), (512, 512, 0.3, 2)]
    } else {
        &[
            (512, 512, 0.2, 1),
            (512, 64, 0.2, 1),
            (1024, 1024, 0.2, 1),
            (1024, 128, 0.2, 1),
            (1024, 1024, 0.3, 1),
            (1024, 1024, 0.1, 1),
            (2048, 2048, 0.2, 1),
            (2048, 2048, 0.2, 2),
            (2048, 2048, 0.2, 4),
            (4096, 4096, 0.2, 1),
        ]
    };

    let mut table = Table::new(
        "EXP-LB: measured SF settle vs Theorem 3 lower bound",
        &[
            "n",
            "h",
            "delta",
            "s",
            "success",
            "settle_mean",
            "lower_bound",
            "ratio",
            "ratio/ln(n)",
        ],
    );
    for &(n, h, delta, s) in grid {
        let setup = SfSetup {
            n,
            s0: 0,
            s1: s,
            h,
            delta,
            c1,
        };
        let measured = setup.run_many(
            0x1B ^ (n as u64)
                .wrapping_mul(31)
                .wrapping_add(h as u64)
                .wrapping_add((delta * 100.0) as u64),
            runs,
        );
        let (rate, summary) = summarize(&measured);
        let lb = lower_bound_rounds(n, h, s, delta, 2).expect("valid grid");
        match summary {
            Some(sm) => {
                let ratio = sm.mean() / lb.max(1.0);
                table.push_row(&[
                    &n,
                    &h,
                    &fmt_f64(delta),
                    &s,
                    &fmt_f64(rate),
                    &fmt_f64(sm.mean()),
                    &fmt_f64(lb),
                    &fmt_f64(ratio),
                    &fmt_f64(ratio / (n as f64).ln()),
                ]);
            }
            None => {
                table.push_row(&[
                    &n,
                    &h,
                    &fmt_f64(delta),
                    &s,
                    &fmt_f64(rate),
                    &"-",
                    &fmt_f64(lb),
                    &"-",
                    &"-",
                ]);
            }
        }
    }
    table.emit("lb_tightness");
    println!(
        "expected shape: ratio/ln(n) bounded across the grid — measured time \
         sits within an O(log n) factor of the lower bound (Theorem 4 remark)."
    );
}
