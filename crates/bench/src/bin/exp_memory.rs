//! EXP-MEM — the `O(log T + log h)` bits-per-agent claim of Theorems 4
//! and 5.
//!
//! For each population size we derive the schedules and count the
//! information-theoretic state bits of one SF and one SSF agent (see
//! `noisy_pull::memory`). The paper's claim manifests as the
//! `bits / (log₂T + log₂h)` column staying bounded while `n` — and with it
//! `T·h`, the total number of messages an agent handles — grows by orders
//! of magnitude.

use noisy_pull::memory::{paper_yardstick_bits, sf_state_bits, ssf_state_bits};
use noisy_pull::params::{SfParams, SsfParams};
use np_bench::report::{fmt_f64, Table};
use np_engine::population::PopulationConfig;

fn main() {
    let mut table = Table::new(
        "EXP-MEM: agent state size vs the O(log T + log h) yardstick",
        &[
            "n",
            "h",
            "sf_T",
            "sf_bits",
            "sf_yard",
            "sf_ratio",
            "ssf_bits",
            "ssf_yard",
            "ssf_ratio",
        ],
    );
    for exp in [8usize, 10, 12, 14, 16, 18, 20] {
        let n = 1usize << exp;
        for h in [1usize, n] {
            let config = PopulationConfig::new(n, 0, 1, h).expect("grid");
            let sf = SfParams::derive(&config, 0.2, 1.0).expect("grid");
            let sf_bits = sf_state_bits(&sf);
            let sf_yard = paper_yardstick_bits(sf.total_rounds(), h);

            let ssf = SsfParams::derive(&config, 0.1, 16.0).expect("grid");
            let ssf_bits = ssf_state_bits(&ssf);
            let ssf_yard = paper_yardstick_bits(10 * ssf.update_interval(), h);

            table.push_row(&[
                &n,
                &h,
                &sf.total_rounds(),
                &sf_bits,
                &sf_yard,
                &fmt_f64(sf_bits as f64 / sf_yard as f64),
                &ssf_bits,
                &ssf_yard,
                &fmt_f64(ssf_bits as f64 / ssf_yard as f64),
            ]);
        }
    }
    table.emit("memory_bits");
    println!(
        "expected shape: both ratio columns bounded (≈ 2–5) across a 4096× \
         range of n — agent state is O(log T + log h) bits, not O(T) or O(n)."
    );
}
