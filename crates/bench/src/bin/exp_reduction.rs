//! EXP-RED — Theorem 8 / Proposition 16 (claim C5), verified two ways:
//!
//! 1. **Algebraically, at scale**: for many random δ-upper-bounded noise
//!    matrices across alphabet sizes, the derived artificial noise `P`
//!    must be stochastic and `N·P` exactly `f(δ)`-uniform, with
//!    `‖N⁻¹‖∞ ≤ (d−1)/(1−dδ)` (Corollary 14).
//! 2. **Empirically**: push a million messages per displayed symbol
//!    through the two-stage channel (real noise `N`, then artificial
//!    noise `P`) and check the total-variation distance between the
//!    observed distribution and the δ′-uniform row is within sampling
//!    error.

use np_bench::report::{fmt_f64, Table};
use np_engine::streams::StreamRng;
use np_linalg::noise::{inverse_norm_bound, NoiseMatrix};
use np_linalg::norm::operator_inf_norm;
use np_linalg::stochastic::is_stochastic;
use np_stats::alias::RowSamplers;
use np_stats::hist::Histogram;
use rand::{Rng, SeedableRng};

/// Random δ-upper-bounded noise matrix: off-diagonals uniform in
/// `[0, max_delta]`, diagonal absorbs the remainder.
#[allow(clippy::needless_range_loop)] // (i, j) index the matrix symmetrically
fn random_upper_bounded(rng: &mut StreamRng, d: usize, max_delta: f64) -> NoiseMatrix {
    let mut rows = vec![vec![0.0; d]; d];
    for i in 0..d {
        let mut off = 0.0;
        for j in 0..d {
            if i != j {
                let x = rng.gen_range(0.0..=max_delta);
                rows[i][j] = x;
                off += x;
            }
        }
        rows[i][i] = 1.0 - off;
    }
    NoiseMatrix::from_rows(rows).expect("constructed stochastic")
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let trials = if quick { 50 } else { 500 };
    let channel_uses: u64 = if quick { 100_000 } else { 1_000_000 };
    let mut rng = StreamRng::seed_from_u64(0x8ED);

    // Part 1: algebraic verification over random matrices.
    let mut table = Table::new(
        "EXP-RED part 1: Proposition 16 over random δ-upper-bounded matrices",
        &[
            "d",
            "trials",
            "P_stochastic",
            "NP_uniform",
            "norm_bound_ok",
            "max_uniform_err",
        ],
    );
    for d in [2usize, 3, 4, 8] {
        let max_delta = 0.9 / d as f64; // keep δ safely below 1/d
        let mut stochastic_ok = 0;
        let mut uniform_ok = 0;
        let mut norm_ok = 0;
        let mut max_err = 0.0f64;
        for _ in 0..trials {
            let n = random_upper_bounded(&mut rng, d, max_delta);
            let delta = n.upper_bound_level().expect("constructed within class");
            let red = n.artificial_noise().expect("Proposition 16 applies");
            if is_stochastic(red.artificial().as_matrix(), 1e-9) {
                stochastic_ok += 1;
            }
            let composed = n.compose(red.artificial()).expect("same dims");
            let target = NoiseMatrix::uniform(d, red.uniform_level()).expect("valid level");
            let err = composed
                .as_matrix()
                .max_abs_diff(target.as_matrix())
                .expect("same dims");
            max_err = max_err.max(err);
            if err < 1e-7 {
                uniform_ok += 1;
            }
            let inv = n.inverse().expect("Corollary 14");
            if operator_inf_norm(&inv) <= inverse_norm_bound(d, delta).expect("valid") + 1e-7 {
                norm_ok += 1;
            }
        }
        table.push_row(&[
            &d,
            &trials,
            &format!("{stochastic_ok}/{trials}"),
            &format!("{uniform_ok}/{trials}"),
            &format!("{norm_ok}/{trials}"),
            &format!("{max_err:.2e}"),
        ]);
    }
    table.emit("reduction_algebraic");

    // Part 2: empirical channel equivalence.
    let mut table2 = Table::new(
        "EXP-RED part 2: two-stage channel vs exact δ'-uniform row (TV distance)",
        &["d", "displayed", "uses", "tv_distance", "3σ_sampling_bound"],
    );
    for d in [2usize, 4] {
        let n = random_upper_bounded(&mut rng, d, 0.8 / d as f64);
        let red = n.artificial_noise().expect("applies");
        let n_rows: Vec<Vec<f64>> = (0..d)
            .map(|s| n.observation_distribution(s).to_vec())
            .collect();
        let p_rows: Vec<Vec<f64>> = (0..d)
            .map(|s| red.artificial().observation_distribution(s).to_vec())
            .collect();
        let n_sampler = RowSamplers::new(&n_rows).expect("valid rows");
        let p_sampler = RowSamplers::new(&p_rows).expect("valid rows");
        let target = NoiseMatrix::uniform(d, red.uniform_level()).expect("valid level");
        for displayed in 0..d {
            let mut hist = Histogram::new(d);
            for _ in 0..channel_uses {
                let through_real = n_sampler.observe(&mut rng, displayed);
                let through_artificial = p_sampler.observe(&mut rng, through_real);
                hist.record(through_artificial);
            }
            let tv = hist
                .tv_distance_to(target.observation_distribution(displayed))
                .expect("same support");
            // TV of an empirical distribution concentrates around
            // √(d / (2·uses)); 3× that is a generous pass band.
            let bound = 3.0 * (d as f64 / (2.0 * channel_uses as f64)).sqrt();
            table2.push_row(&[
                &d,
                &displayed,
                &channel_uses,
                &format!("{tv:.5}"),
                &fmt_f64(bound),
            ]);
        }
    }
    table2.emit("reduction_empirical");
    println!(
        "expected: all counters equal trials in part 1; every TV distance \
         below its sampling bound in part 2."
    );
}
