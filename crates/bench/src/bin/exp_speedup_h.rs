//! EXP-T4-H — claim C1 of Theorem 4: sample size linearly accelerates
//! information spreading (`T ∝ 1/h` until the `log n` floor).
//!
//! Fixed `n`, δ and a single source; `h` sweeps over powers of two. The
//! diagnostic column `settle × h` should be roughly constant while the
//! `1/h` term dominates, then flatten into the additive `Θ(log n)` floor
//! at large `h` (so `settle × h` starts growing once `settle` hits the
//! floor — both regimes are visible in the table).

use np_bench::harness::{summarize, SfSetup};
use np_bench::report::{fmt_f64, Table};

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 256 } else { 512 };
    let runs = if quick { 5 } else { 15 };
    let delta = 0.2;
    let c1 = 1.0;
    let hs: Vec<usize> = (0..).map(|k| 1usize << k).take_while(|&h| h <= n).collect();

    let mut table = Table::new(
        "EXP-T4-H: SF settle round vs h (n fixed, δ = 0.2, single source)",
        &[
            "h",
            "runs",
            "success",
            "settle_mean",
            "schedule_len",
            "settle*h",
            "halving_ratio",
        ],
    );
    let mut prev_mean: Option<f64> = None;
    for &h in &hs {
        let setup = SfSetup {
            n,
            s0: 0,
            s1: 1,
            h,
            delta,
            c1,
        };
        let measured = setup.run_many(0xA11CE ^ h as u64, runs);
        let (rate, summary) = summarize(&measured);
        let schedule = setup.params().total_rounds();
        match summary {
            Some(s) => {
                let ratio = prev_mean
                    .map(|p| fmt_f64(p / s.mean()))
                    .unwrap_or_else(|| "-".to_string());
                table.push_row(&[
                    &h,
                    &runs,
                    &fmt_f64(rate),
                    &fmt_f64(s.mean()),
                    &schedule,
                    &fmt_f64(s.mean() * h as f64),
                    &ratio,
                ]);
                prev_mean = Some(s.mean());
            }
            None => {
                table.push_row(&[&h, &runs, &fmt_f64(rate), &"-", &schedule, &"-", &"-"]);
                prev_mean = None;
            }
        }
    }
    table.emit("speedup_h");
    println!(
        "expected shape: halving_ratio ≈ 2 while the 1/h term dominates \
         (doubling h halves the time), decaying toward 1 at the log-n floor."
    );
}
