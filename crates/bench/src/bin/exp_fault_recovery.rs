//! EXP-T5-MID — mid-run fault injection: re-convergence time under the
//! [`np_engine::faults`] subsystem.
//!
//! Two sweeps, both on SSF with a single source and `h = n`:
//!
//! 1. **Adversary strategy.** Every [`SsfAdversary`] corruption strategy
//!    is re-applied to the whole population mid-run (two update intervals
//!    in, once the honest configuration has settled) and we measure the
//!    rounds from injection back to stable consensus. Theorem 5 says the
//!    recovery time is independent of the corruption — the rows should
//!    all land within a few update intervals of each other.
//! 2. **Noise-ramp depth.** The uniform noise level ramps from the base
//!    δ = 0.1 to a deeper level over two update intervals and *stays*
//!    there; recovery time should grow with the target depth and fall off
//!    a cliff as it approaches the δ < ¼ threshold.
//!
//! Recovery times are read from the recorded trace via
//! [`recovery_times`], the same metric the CLI reports; the aggregated
//! points land in `BENCH_fault_recovery.json` (np-bench/v1), with
//! `mean_rounds` = mean recovery rounds over recovered runs and
//! `converged` = how many runs re-converged.

use std::sync::Arc;
use std::time::Instant;

use noisy_pull::adversary::SsfAdversary;
use noisy_pull::params::SsfParams;
use noisy_pull::ssf::{SelfStabilizingSourceFilter, SsfAgent};
use np_bench::harness::auto_channel;
use np_bench::report::{fmt_f64, save_bench_json, PerfPoint, Table};
use np_engine::faults::{recovery_times, FaultEvent, FaultPlan};
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::protocol::ScalarState;
use np_engine::runner::{run_batch, suggested_threads};
use np_engine::streams::StreamRng;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;
use np_stats::estimate::Running;
use np_stats::seeds::SeedSequence;

const DELTA: f64 = 0.1;
const C1: f64 = 8.0;
/// Inject after this many update intervals (enough for the honest
/// configuration to settle first).
const INJECT_INTERVALS: u64 = 3;
/// Total budget, in update intervals.
const BUDGET_INTERVALS: u64 = 12;

type SsfState = ScalarState<SsfAgent>;

fn corrupt_event(adversary: SsfAdversary, correct: Opinion, m: u64) -> FaultEvent<SsfState> {
    FaultEvent::Corrupt {
        frac: 1.0,
        label: adversary.name().to_string(),
        fault: Arc::new(
            move |state: &mut SsfState, id: usize, rng: &mut StreamRng| {
                adversary.corrupt(&mut state.agents_mut()[id], correct, m, id, rng);
            },
        ),
    }
}

/// One seeded faulted run: (recovery rounds if re-converged, wall ms).
fn run_one(n: usize, event: FaultEvent<SsfState>, seed: u64) -> (Option<u64>, f64) {
    let config = PopulationConfig::new(n, 0, 1, n).expect("valid grid");
    let params = SsfParams::derive(&config, DELTA, C1).expect("valid grid");
    let noise = NoiseMatrix::uniform(4, DELTA).expect("valid delta");
    let mut world = World::new(
        &SelfStabilizingSourceFilter::new(params),
        config,
        &noise,
        auto_channel(n),
        seed,
    )
    .expect("alphabets match");
    // Single-threaded: the batch level owns the parallelism.
    world.set_threads(1);
    let interval = params.update_interval();
    world
        .set_fault_plan(FaultPlan::new().at(INJECT_INTERVALS * interval, event))
        .expect("plan is sound");
    world.record_trace();
    let start = Instant::now();
    world.run(BUDGET_INTERVALS * interval);
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let trace = world.take_trace().expect("trace was recorded");
    let recovery = recovery_times(trace.rounds())
        .first()
        .and_then(|r| r.recovery_rounds());
    (recovery, wall)
}

/// Runs a batch for one point and aggregates it.
fn measure_point(
    label: &str,
    n: usize,
    runs: usize,
    master_seed: u64,
    event: FaultEvent<SsfState>,
) -> PerfPoint {
    let results = run_batch(
        SeedSequence::new(master_seed),
        runs,
        suggested_threads(),
        move |seed| run_one(n, event.clone(), seed),
    );
    let mut rounds = Running::new();
    let mut wall = Running::new();
    let mut converged = 0usize;
    for (recovery, ms) in &results {
        if let Some(r) = recovery {
            converged += 1;
            rounds.push(*r as f64);
        }
        wall.push(*ms);
    }
    PerfPoint {
        label: label.to_string(),
        n,
        runs,
        converged,
        mean_rounds: rounds.mean().ok(),
        mean_wall_ms: wall.mean().unwrap_or(0.0),
        median_wall_ms: None,
        p95_wall_ms: None,
        backend: None,
        degree: None,
        convergence_rate: None,
        messages_total: None,
    }
}

fn push_point(table: &mut Table, interval: u64, point: &PerfPoint) {
    let rate = point.converged as f64 / point.runs.max(1) as f64;
    match point.mean_rounds {
        Some(mean) => table.push_row(&[
            &point.label,
            &point.n,
            &point.runs,
            &fmt_f64(rate),
            &fmt_f64(mean),
            &fmt_f64(mean / interval as f64),
        ]),
        None => table.push_row(&[
            &point.label,
            &point.n,
            &point.runs,
            &fmt_f64(rate),
            &"-",
            &"-",
        ]),
    }
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 256 } else { 1024 };
    let runs = if quick { 4 } else { 10 };
    let config = PopulationConfig::new(n, 0, 1, n).expect("valid grid");
    let params = SsfParams::derive(&config, DELTA, C1).expect("valid grid");
    let interval = params.update_interval();
    let correct = config.correct_opinion();
    let m = params.m();

    let mut points = Vec::new();
    let mut table = Table::new(
        &format!(
            "EXP-T5-MID: mid-run fault recovery (SSF, n = {n}, h = n, δ = {DELTA}, \
             inject @ {INJECT_INTERVALS} intervals, interval = {interval} rounds)"
        ),
        &[
            "fault",
            "n",
            "runs",
            "recovered",
            "recovery_mean",
            "recovery/interval",
        ],
    );

    for adversary in SsfAdversary::ALL {
        if adversary == SsfAdversary::None {
            continue;
        }
        let label = format!("adv:{}", adversary.name());
        let point = measure_point(
            &label,
            n,
            runs,
            0x7A57 ^ (adversary.name().len() as u64) << 5,
            corrupt_event(adversary, correct, m),
        );
        push_point(&mut table, interval, &point);
        points.push(point);
    }

    for depth in [0.15, 0.20, 0.24] {
        let label = format!("ramp:{depth}");
        let point = measure_point(
            &label,
            n,
            runs,
            0xFA17 ^ (depth * 1000.0) as u64,
            FaultEvent::RampNoise {
                from: DELTA,
                to: depth,
                over: 2 * interval,
            },
        );
        push_point(&mut table, interval, &point);
        points.push(point);
    }

    table.emit("fault_recovery");
    match save_bench_json("fault_recovery", &points) {
        Ok(path) => println!("[bench] {}", path.display()),
        Err(e) => println!("[bench] write failed: {e}"),
    }
    println!(
        "expected shape: every adversary row recovers within ~2–4 update \
         intervals (Theorem 5: recovery is corruption-independent); ramp \
         rows recover slower as the target depth approaches δ = 1/4."
    );
}
