//! EXP-T5 — Theorem 5: SSF converges from *any* adversarially corrupted
//! initial configuration and then keeps the consensus.
//!
//! For every corruption strategy in [`noisy_pull::adversary::SsfAdversary`]
//! we run SSF with a single source and `h = n`, for a budget of several
//! update intervals, and require the system to settle on the correct
//! consensus *and hold it to the end of the budget* (the settle metric is
//! exactly Definition 2's reach-and-stay). The settle round should land
//! within ~3 update intervals regardless of the strategy: one cycle to
//! flush fake memory, one to form honest weak opinions, one for opinions
//! to follow.

use noisy_pull::adversary::SsfAdversary;
use np_bench::harness::{summarize, SsfSetup};
use np_bench::report::{fmt_f64, Table};

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let sizes: &[usize] = if quick { &[256] } else { &[256, 1024, 4096] };
    let runs = if quick { 5 } else { 12 };
    let delta = 0.1;
    let c1 = 16.0;
    let budget_intervals = 10;

    let mut table = Table::new(
        "EXP-T5: SSF self-stabilization (h = n, δ = 0.1, single source)",
        &[
            "n",
            "adversary",
            "runs",
            "success",
            "settle_mean",
            "update_interval",
            "settle/interval",
        ],
    );
    for &n in sizes {
        for adversary in SsfAdversary::ALL {
            let setup = SsfSetup {
                n,
                s0: 0,
                s1: 1,
                h: n,
                delta,
                c1,
                adversary,
                budget_intervals,
            };
            let measured = setup.run_many(0x55F ^ (n as u64) << 3, runs);
            let (rate, summary) = summarize(&measured);
            let interval = setup.params().update_interval();
            match summary {
                Some(s) => {
                    table.push_row(&[
                        &n,
                        &adversary,
                        &runs,
                        &fmt_f64(rate),
                        &fmt_f64(s.mean()),
                        &interval,
                        &fmt_f64(s.mean() / interval as f64),
                    ]);
                }
                None => {
                    table.push_row(&[&n, &adversary, &runs, &fmt_f64(rate), &"-", &interval, &"-"]);
                }
            }
        }
    }
    table.emit("self_stab");
    println!(
        "expected shape: success = 1 for every adversary; settle within \
         ~2–4 update intervals, independent of the corruption strategy."
    );
}
