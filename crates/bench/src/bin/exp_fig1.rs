//! FIG1 — reproduces Figure 1 of the paper: the noise-level map `f(δ)` of
//! Definition 7, plotted for two alphabet sizes.
//!
//! The paper plots `f` for two values of `d`; we use `d = 2` (Algorithm
//! SF's alphabet) and `d = 4` (Algorithm SSF's alphabet), which are the
//! two instances the protocols actually use. Expected shape: `f(0) = 0`,
//! continuous and increasing, `f(δ) → 1/d` as `δ → 1/d` (Claim 15).

use np_bench::report::{fmt_f64, Table};
use np_linalg::noise::f_delta;

fn main() {
    let mut table = Table::new(
        "Figure 1: f(δ) for d = 2 and d = 4 (Definition 7)",
        &["delta", "f(delta) d=2", "f(delta) d=4"],
    );
    let steps = 50;
    for k in 0..steps {
        // Sweep δ over [0, 0.5): f for d = 2 is defined on all of it; for
        // d = 4 only below 0.25.
        let delta = 0.5 * k as f64 / steps as f64;
        let f2 = f_delta(2, delta).expect("δ < 1/2");
        let f4 = if delta < 0.25 {
            fmt_f64(f_delta(4, delta).expect("δ < 1/4"))
        } else {
            "-".to_string()
        };
        table.push_row(&[&fmt_f64(delta), &fmt_f64(f2), &f4]);
    }
    table.emit("fig1_f_delta");

    // Sanity summary mirroring Claim 15.
    println!("checks:");
    println!("  f(0) = {} (expect 0)", f_delta(2, 0.0).unwrap());
    println!(
        "  f(0.4999) = {} for d=2 (expect → 0.5)",
        fmt_f64(f_delta(2, 0.4999).unwrap())
    );
    println!(
        "  f(0.2499) = {} for d=4 (expect → 0.25)",
        fmt_f64(f_delta(4, 0.2499).unwrap())
    );
}
