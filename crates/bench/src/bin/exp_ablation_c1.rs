//! EXP-ABLATE — sensitivity to the analysis constant `c₁`.
//!
//! The theorems hold "for `c₁` large enough" (the paper's proofs use
//! constants up to 2916·c₁); this ablation measures where reliability
//! actually begins at simulable scales. For SF we sweep `c₁` and report
//! the success rate and cost (schedule length); for SSF we additionally
//! measure *persistence* — the fraction of runs whose consensus, once
//! reached, survives to the end of the budget — which is exactly the
//! property that needs the larger constants (see the discussion in
//! `noisy_pull::params`).

use np_bench::harness::{summarize, SfSetup, SsfSetup};
use np_bench::report::{fmt_f64, Table};

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 256 } else { 1024 };
    let runs = if quick { 5 } else { 16 };
    let c1s = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

    let mut sf_table = Table::new(
        "EXP-ABLATE (SF): success vs c₁ (n fixed, h = n, δ = 0.2, single source)",
        &["c1", "m", "schedule_len", "success", "settle_mean"],
    );
    for &c1 in &c1s {
        let setup = SfSetup::single_source_full_sample(n, 0.2, c1);
        let params = setup.params();
        let measured = setup.run_many(0xAB1 ^ (c1 * 100.0) as u64, runs);
        let (rate, summary) = summarize(&measured);
        match summary {
            Some(s) => sf_table.push_row(&[
                &fmt_f64(c1),
                &params.m(),
                &params.total_rounds(),
                &fmt_f64(rate),
                &fmt_f64(s.mean()),
            ]),
            None => sf_table.push_row(&[
                &fmt_f64(c1),
                &params.m(),
                &params.total_rounds(),
                &fmt_f64(rate),
                &"-",
            ]),
        }
    }
    sf_table.emit("ablation_c1_sf");

    let mut ssf_table = Table::new(
        "EXP-ABLATE (SSF): success & persistence vs c₁ (h = n, δ = 0.1, 10-interval budget)",
        &["c1", "m", "interval", "settled&held", "ever_consensus"],
    );
    for &c1 in &c1s {
        let setup = SsfSetup::single_source_full_sample(n, 0.1, c1);
        let setup = SsfSetup {
            budget_intervals: 10,
            ..setup
        };
        let params = setup.params();
        let measured = setup.run_many(0xAB2 ^ (c1 * 100.0) as u64, runs);
        let (held_rate, _) = summarize(&measured);
        // "Ever reached consensus" is measured separately: run each seed
        // and check whether a consensus configuration occurred at any
        // round, held or not.
        let ever = ever_consensus_rate(&setup, 0xAB3 ^ (c1 * 100.0) as u64, runs);
        ssf_table.push_row(&[
            &fmt_f64(c1),
            &params.m(),
            &params.update_interval(),
            &fmt_f64(held_rate),
            &fmt_f64(ever),
        ]);
    }
    ssf_table.emit("ablation_c1_ssf");
    println!(
        "expected shape: SF reliable from c₁ ≈ 1; SSF *reaches* consensus \
         from small c₁ (ever_consensus ≈ 1) but only *holds* it once \
         c₁ ≈ 8–16 — the settled&held column climbing to 1 is the \
         small-scale shadow of the paper's 2916·c₁ constant."
    );
}

fn ever_consensus_rate(setup: &SsfSetup, master: u64, runs: usize) -> f64 {
    use noisy_pull::ssf::SelfStabilizingSourceFilter;
    use np_engine::channel::ChannelKind;
    use np_engine::runner::{run_batch, suggested_threads};
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;
    use np_stats::seeds::SeedSequence;

    let setup = *setup;
    let results = run_batch(
        SeedSequence::new(master),
        runs,
        suggested_threads(),
        move |seed| {
            let config = setup.config();
            let params = setup.params();
            let noise = NoiseMatrix::uniform(4, setup.delta).expect("valid");
            let mut world = World::new(
                &SelfStabilizingSourceFilter::new(params),
                config,
                &noise,
                ChannelKind::Aggregated,
                seed,
            )
            .expect("alphabets match");
            let budget = setup.budget_intervals * params.update_interval();
            let mut ever = false;
            for _ in 0..budget {
                world.step();
                ever |= world.is_consensus();
            }
            ever
        },
    );
    results.iter().filter(|&&e| e).count() as f64 / results.len() as f64
}
