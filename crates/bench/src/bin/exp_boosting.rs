//! EXP-BOOST — Lemma 33: each Majority-Boosting sub-phase multiplies the
//! correct-opinion margin by ≥ 1.2 (w.h.p.) until it reaches
//! `n/√(8πe) ≈ 0.12·n`, after which one more sub-phase completes the
//! takeover.
//!
//! We plant a controlled initial margin `A₀` (exactly `n/2 + A₀` agents
//! holding the correct opinion), skip straight to the boosting phase via
//! [`noisy_pull::sf::SfAgent::force_boost_stage`], and record the margin
//! at every sub-phase boundary.

use noisy_pull::params::SfParams;
use noisy_pull::sf::SourceFilter;
use np_bench::report::{fmt_f64, Table};
use np_engine::channel::ChannelKind;
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 1024 } else { 4096 };
    let delta = 0.2;
    let c1 = 1.0;
    let margins: &[usize] = &[
        (2.0 * (n as f64).ln().sqrt() * (n as f64).sqrt()) as usize / 2, // ≈ √(n ln n)
        n / 64,
        n / 16,
    ];

    let config = PopulationConfig::new(n, 0, 1, n).expect("grid");
    let params = SfParams::derive(&config, delta, c1).expect("grid");
    let noise = NoiseMatrix::uniform(2, delta).expect("grid");

    let mut table = Table::new(
        "EXP-BOOST: margin after each boosting sub-phase (δ = 0.2, h = n)",
        &["A0", "subphase", "margin", "growth", "margin/n"],
    );
    for &a0 in margins {
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            0xB005 ^ a0 as u64,
        )
        .expect("alphabets match");
        // Plant the margin: the first n/2 + a0 agents (including the
        // source) start correct, the rest wrong.
        let cutoff = n / 2 + a0;
        world.corrupt_agents(|id, agent, _| {
            let opinion = if id < cutoff {
                Opinion::One
            } else {
                Opinion::Zero
            };
            agent.force_boost_stage(opinion);
        });
        let mut prev_margin = a0 as f64;
        table.push_row(&[
            &a0,
            &0,
            &fmt_f64(prev_margin),
            &"-",
            &fmt_f64(prev_margin / n as f64),
        ]);
        let max_subphases = 12u64.min(params.num_short_subphases());
        for sub in 1..=max_subphases {
            world.run(params.subphase_len());
            let margin = world.correct_count() as f64 - n as f64 / 2.0;
            let growth = if prev_margin.abs() > 1e-9 {
                fmt_f64(margin / prev_margin)
            } else {
                "-".to_string()
            };
            table.push_row(&[
                &a0,
                &sub,
                &fmt_f64(margin),
                &growth,
                &fmt_f64(margin / n as f64),
            ]);
            prev_margin = margin;
            if margin >= n as f64 / 2.0 {
                break;
            }
        }
    }
    table.emit("boosting");
    println!(
        "expected shape: growth ≥ 1.2 per sub-phase (Lemma 33) while \
         margin/n < 1/√(8πe) ≈ 0.12, then saturation at margin = n/2."
    );
}
