//! EXP-WEAK — Lemmas 28 and 36 (claim C6): after the listening phases,
//! each agent's weak opinion is correct with probability
//! `≥ ½ + Ω(√(log n / n))`, and weak opinions are mutually independent.
//!
//! We run SF through exactly its two listening phases (and SSF through two
//! update intervals), harvest all non-source weak opinions across many
//! seeds, and report the measured advantage `P̂(correct) − ½` against the
//! `√(ln n / n)` yardstick. For independence we estimate the pairwise
//! correlation between agents' weak-opinion indicators across seeds — it
//! should be statistically indistinguishable from zero.

use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use noisy_pull::theory::{sf_weak_opinion_model, ssf_weak_opinion_model};
use np_bench::report::{fmt_f64, Table};
use np_engine::channel::ChannelKind;
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;
use np_stats::estimate::wilson_interval;

/// Collects one weak-opinion sample matrix: rows = seeds, cols = agents
/// (non-source), entries = 1 if the weak opinion is correct.
fn sf_weak_matrix(n: usize, delta: f64, c1: f64, seeds: u64) -> Vec<Vec<u8>> {
    let config = PopulationConfig::new(n, 0, 1, n).expect("grid");
    let params = SfParams::derive(&config, delta, c1).expect("grid");
    let noise = NoiseMatrix::uniform(2, delta).expect("grid");
    let mut rows = Vec::new();
    for seed in 0..seeds {
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            0xEA ^ seed,
        )
        .expect("alphabets match");
        world.run(2 * params.phase_len());
        let row: Vec<u8> = world
            .iter_agents()
            .skip(config.num_sources())
            .map(|a| u8::from(a.weak_opinion() == Some(Opinion::One)))
            .collect();
        rows.push(row);
    }
    rows
}

fn ssf_weak_matrix(n: usize, delta: f64, c1: f64, seeds: u64) -> Vec<Vec<u8>> {
    let config = PopulationConfig::new(n, 0, 1, n).expect("grid");
    let params = SsfParams::derive(&config, delta, c1).expect("grid");
    let noise = NoiseMatrix::uniform(4, delta).expect("grid");
    let mut rows = Vec::new();
    for seed in 0..seeds {
        let mut world = World::new(
            &SelfStabilizingSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            0x55EA ^ seed,
        )
        .expect("alphabets match");
        world.run(2 * params.update_interval() + 1);
        let row: Vec<u8> = world
            .iter_agents()
            .skip(config.num_sources())
            .map(|a| u8::from(a.weak_opinion() == Opinion::One))
            .collect();
        rows.push(row);
    }
    rows
}

/// Mean pairwise correlation across a sample of agent pairs (seeds as
/// observations).
fn mean_pairwise_correlation(matrix: &[Vec<u8>]) -> f64 {
    let seeds = matrix.len();
    let agents = matrix[0].len();
    let mut acc = 0.0;
    let mut pairs = 0usize;
    // A fixed stride sample of pairs keeps this O(agents).
    for i in (0..agents.saturating_sub(1)).step_by(7) {
        let j = i + 1;
        let (mut si, mut sj, mut sij) = (0.0, 0.0, 0.0);
        for row in matrix {
            let a = row[i] as f64;
            let b = row[j] as f64;
            si += a;
            sj += b;
            sij += a * b;
        }
        let n = seeds as f64;
        let (mi, mj) = (si / n, sj / n);
        let cov = sij / n - mi * mj;
        let var_i = mi * (1.0 - mi);
        let var_j = mj * (1.0 - mj);
        if var_i > 0.0 && var_j > 0.0 {
            acc += cov / (var_i * var_j).sqrt();
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        acc / pairs as f64
    }
}

fn emit_for(
    label: &str,
    csv: &str,
    matrix_fn: impl Fn(usize, u64) -> Vec<Vec<u8>>,
    model_fn: impl Fn(usize) -> f64,
    sizes: &[usize],
    seeds: u64,
) {
    let mut table = Table::new(
        &format!("EXP-WEAK ({label}): weak-opinion advantage vs √(ln n / n)"),
        &[
            "n",
            "samples",
            "P(correct)",
            "model_P",
            "wilson_lo",
            "advantage",
            "sqrt(ln n/n)",
            "adv/yardstick",
            "mean_pair_corr",
        ],
    );
    for &n in sizes {
        let matrix = matrix_fn(n, seeds);
        let total: u64 = matrix.iter().map(|r| r.len() as u64).sum();
        let correct: u64 = matrix
            .iter()
            .map(|r| r.iter().map(|&x| x as u64).sum::<u64>())
            .sum();
        let p = correct as f64 / total as f64;
        let (lo, _) = wilson_interval(correct, total, 3.29).expect("valid counts");
        let adv = p - 0.5;
        let yard = ((n as f64).ln() / n as f64).sqrt();
        let corr = mean_pairwise_correlation(&matrix);
        table.push_row(&[
            &n,
            &total,
            &fmt_f64(p),
            &fmt_f64(model_fn(n)),
            &fmt_f64(lo),
            &fmt_f64(adv),
            &fmt_f64(yard),
            &fmt_f64(adv / yard),
            &fmt_f64(corr),
        ]);
    }
    table.emit(csv);
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let sizes: &[usize] = if quick {
        &[256, 512]
    } else {
        &[256, 512, 1024, 2048, 4096]
    };
    let seeds = if quick { 20 } else { 60 };
    let delta = 0.2;

    emit_for(
        "SF, δ = 0.2, c1 = 1",
        "weak_opinion_sf",
        |n, s| sf_weak_matrix(n, delta, 1.0, s),
        |n| {
            let config = PopulationConfig::new(n, 0, 1, n).expect("grid");
            let params = SfParams::derive(&config, delta, 1.0).expect("grid");
            sf_weak_opinion_model(n, 0, 1, delta, params.m()).expect("grid")
        },
        sizes,
        seeds,
    );
    emit_for(
        "SSF, δ = 0.1, c1 = 4",
        "weak_opinion_ssf",
        |n, s| ssf_weak_matrix(n, 0.1, 4.0, s),
        |n| {
            let config = PopulationConfig::new(n, 0, 1, n).expect("grid");
            let params = SsfParams::derive(&config, 0.1, 4.0).expect("grid");
            ssf_weak_opinion_model(n, 0, 1, 0.1, params.m()).expect("grid")
        },
        sizes,
        seeds,
    );
    println!(
        "expected shape: P(correct) matches model_P (the Claim 29/37 \
         evidence model) to within sampling error; advantage > 0 with \
         Wilson lower bound above 0.5; adv/yardstick bounded below across n \
         (the Ω(√(ln n/n)) claim); mean pairwise correlation ≈ 0 \
         (independence, Lemmas 28/36(i))."
    );
}
