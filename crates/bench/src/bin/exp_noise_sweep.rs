//! EXP-T4-D — Theorem 4's dependence on the noise level δ.
//!
//! With `h = n` and a single source, the message budget (and hence the
//! time) grows like `δ/(1−2δ)²` plus lower-order terms. We sweep δ and
//! compare measured settle rounds against the Theorem 4 formula evaluated
//! with constant 1 — shapes should track (monotone growth, sharp blow-up
//! approaching δ = ½), with success staying at 1 throughout.

use noisy_pull::theory::sf_upper_bound_rounds;
use np_bench::harness::{summarize, SfSetup};
use np_bench::report::{fmt_f64, Table};

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 512 } else { 2048 };
    let runs = if quick { 5 } else { 15 };
    let c1 = 1.0;
    let deltas = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45];

    let mut table = Table::new(
        "EXP-T4-D: SF settle round vs δ (h = n, single source)",
        &[
            "delta",
            "runs",
            "success",
            "settle_mean",
            "schedule_len",
            "thm4_formula",
            "settle/formula",
        ],
    );
    for &delta in &deltas {
        let setup = SfSetup::single_source_full_sample(n, delta, c1);
        let measured = setup.run_many(0xD0_5EED ^ (delta * 1000.0) as u64, runs);
        let (rate, summary) = summarize(&measured);
        let schedule = setup.params().total_rounds();
        let formula = sf_upper_bound_rounds(n, n, 0, 1, delta).expect("valid grid");
        match summary {
            Some(s) => {
                table.push_row(&[
                    &fmt_f64(delta),
                    &runs,
                    &fmt_f64(rate),
                    &fmt_f64(s.mean()),
                    &schedule,
                    &fmt_f64(formula),
                    &fmt_f64(s.mean() / formula),
                ]);
            }
            None => {
                table.push_row(&[
                    &fmt_f64(delta),
                    &runs,
                    &fmt_f64(rate),
                    &"-",
                    &schedule,
                    &fmt_f64(formula),
                    &"-",
                ]);
            }
        }
    }
    table.emit("noise_sweep");
    println!(
        "expected shape: settle_mean grows monotonically in δ and blows up \
         toward δ = 0.5; settle/formula stays within a bounded band."
    );
}
