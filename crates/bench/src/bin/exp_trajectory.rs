//! EXP-TRAJ — per-round opinion trajectories for plotting.
//!
//! Dumps the full time series of correct-opinion counts for three
//! representative runs:
//!
//! * SF from a clean start (the three-phase anatomy is visible: noisy
//!   plateau during listening, staircase jumps at boosting sub-phase
//!   boundaries, saturation at `n`);
//! * SSF recovering from a poisoned-memory adversary (flat at 0 until the
//!   first honest update cycle completes, then a two-step recovery);
//! * the zealot voter under the same noise (fluctuates forever).
//!
//! These are the series a paper figure would plot; CSVs land in
//! `target/experiments/`.

use noisy_pull::adversary::SsfAdversary;
use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_baselines::voter::ZealotVoter;
use np_bench::report::Table;
use np_engine::channel::ChannelKind;
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::protocol::Protocol;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

fn record<P: Protocol>(mut world: World<P>, rounds: u64, label: &str, csv: &str) {
    world.record_series();
    world.run(rounds);
    let series = world.series().expect("recording enabled");
    let correct = world.config().correct_opinion();
    // The full series goes to CSV only — hundreds of rows have no place on
    // the console.
    let mut full = Table::new(label, &["round", "correct_count"]);
    for r in 0..series.len() {
        full.push_row(&[&(r + 1), &series.count(r, correct)]);
    }
    match full.save_csv(&np_bench::report::experiments_dir(), csv) {
        Ok(path) => println!(
            "{label}: {} rounds, final correct = {}/{} → {}",
            series.len(),
            series.count(series.len() - 1, correct),
            world.config().n(),
            path.display()
        ),
        Err(e) => println!("{label}: CSV write failed: {e}"),
    }
}

fn main() {
    let n = 1024;

    // SF, clean start, δ = 0.2.
    let config = PopulationConfig::new(n, 0, 1, n).expect("grid");
    let sf_params = SfParams::derive(&config, 0.2, 1.0).expect("grid");
    let noise2 = NoiseMatrix::uniform(2, 0.2).expect("grid");
    let world = World::new(
        &SourceFilter::new(sf_params),
        config,
        &noise2,
        ChannelKind::Aggregated,
        0x7249,
    )
    .expect("alphabets match");
    record(
        world,
        sf_params.total_rounds(),
        "EXP-TRAJ: SF trajectory",
        "trajectory_sf",
    );

    // SSF under the poisoned-memory adversary, δ = 0.1.
    let ssf_params = SsfParams::derive(&config, 0.1, 16.0).expect("grid");
    let noise4 = NoiseMatrix::uniform(4, 0.1).expect("grid");
    let mut world = World::new(
        &SelfStabilizingSourceFilter::new(ssf_params),
        config,
        &noise4,
        ChannelKind::Aggregated,
        0x724A,
    )
    .expect("alphabets match");
    let m = ssf_params.m();
    world.corrupt_agents(|id, agent, rng| {
        SsfAdversary::PoisonedMemory.corrupt(agent, Opinion::One, m, id, rng);
    });
    record(
        world,
        6 * ssf_params.update_interval(),
        "EXP-TRAJ: SSF recovery trajectory",
        "trajectory_ssf",
    );

    // Zealot voter, same binary noise, same budget as SF.
    let world = World::new(
        &ZealotVoter,
        config,
        &noise2,
        ChannelKind::Aggregated,
        0x724B,
    )
    .expect("alphabets match");
    record(
        world,
        sf_params.total_rounds(),
        "EXP-TRAJ: zealot-voter trajectory",
        "trajectory_voter",
    );

    println!(
        "\nexpected shapes: SF — plateau, staircase, saturation at n; \
         SSF — zero until the poisoned memories flush, then a two-step \
         recovery to n; voter — noisy wandering, never saturating."
    );
}
