//! EXP-TOPO — graph-restricted PULL: convergence over degree × δ.
//!
//! The paper's analysis (and every other bench in this repo) lives on the
//! complete graph: each of the `h` observations is drawn from the whole
//! population. The [`np_engine::topology`] subsystem restricts sampling
//! to a neighborhood; this experiment maps what that restriction costs.
//!
//! Both protocols (SF and SSF, single source, `h = n` draws with
//! replacement from the neighborhood) run on ring lattices of increasing
//! degree — ring:2/8/32, i.e. degrees 4/16/64 — plus the complete graph
//! as the reference row, across four uniform noise levels up to the
//! δ < ¼ threshold. Each point records the convergence rate and the mean
//! settle round; the committed artifact is `BENCH_topology.json`
//! (np-bench/v1 with the trailing `degree`/`convergence_rate` keys).
//!
//! Expected shape: the complete graph and the degree-64 ring converge
//! everywhere below threshold; as the degree drops, the δ-cliff slides
//! left — sparse neighborhoods re-sample the same few displays, so the
//! effective noise a weak-opinion estimator sees is higher than δ and
//! the degree-4 ring gives up well before δ = 0.20.

use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_bench::harness::{auto_channel, run_settled, Measured};
use np_bench::report::{fmt_f64, save_bench_json, PerfPoint, Table};
use np_engine::population::PopulationConfig;
use np_engine::runner::{run_batch, suggested_threads};
use np_engine::topology::{Topology, TopologySpec};
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;
use np_stats::estimate::Running;
use np_stats::seeds::SeedSequence;

const SF_C1: f64 = 1.0;
const SSF_C1: f64 = 8.0;
/// SSF round budget, in update intervals.
const SSF_BUDGET_INTERVALS: u64 = 8;
const MASTER_SEED: u64 = 0x7090;

/// One seeded SF run on `topo`.
fn run_sf(n: usize, delta: f64, topo: TopologySpec, seed: u64) -> Measured {
    let config = PopulationConfig::new(n, 0, 1, n).expect("valid grid");
    let params = SfParams::derive(&config, delta, SF_C1).expect("valid grid");
    let noise = NoiseMatrix::uniform(2, delta).expect("valid delta");
    let mut world = World::new(
        &SourceFilter::new(params),
        config,
        &noise,
        auto_channel(n),
        seed,
    )
    .expect("alphabets match");
    // Single-threaded: the batch level owns the parallelism.
    world.set_threads(1);
    world.set_topology(topo).expect("realizable topology");
    run_settled(&mut world, params.total_rounds())
}

/// One seeded SSF run on `topo`.
fn run_ssf(n: usize, delta: f64, topo: TopologySpec, seed: u64) -> Measured {
    let config = PopulationConfig::new(n, 0, 1, n).expect("valid grid");
    let params = SsfParams::derive(&config, delta, SSF_C1).expect("valid grid");
    let noise = NoiseMatrix::uniform(4, delta).expect("valid delta");
    let mut world = World::new(
        &SelfStabilizingSourceFilter::new(params),
        config,
        &noise,
        auto_channel(n),
        seed,
    )
    .expect("alphabets match");
    world.set_threads(1);
    world.set_topology(topo).expect("realizable topology");
    run_settled(&mut world, SSF_BUDGET_INTERVALS * params.update_interval())
}

/// Runs one batch and aggregates it into a degree-tagged perf point.
fn measure_point(
    protocol: &str,
    n: usize,
    runs: usize,
    delta: f64,
    topo: TopologySpec,
) -> PerfPoint {
    let label = format!("{protocol} {} d={delta}", topo.label());
    let master = SeedSequence::new(MASTER_SEED).child_of_label(&label);
    let results = run_batch(master, runs, suggested_threads(), move |seed| {
        if protocol == "sf" {
            run_sf(n, delta, topo, seed)
        } else {
            run_ssf(n, delta, topo, seed)
        }
    });
    let mut rounds = Running::new();
    let mut converged = 0usize;
    for m in &results {
        if let Some(r) = m.settled_round {
            converged += 1;
            rounds.push(r as f64);
        }
    }
    // Ring degrees are uniform and the complete graph's is n - 1, so the
    // minimum degree is *the* degree of every point in this sweep.
    let degree = Topology::build(topo, n, 0)
        .expect("realizable topology")
        .min_degree() as u64;
    PerfPoint {
        label,
        n,
        runs,
        converged,
        mean_rounds: rounds.mean().ok(),
        mean_wall_ms: 0.0,
        median_wall_ms: None,
        p95_wall_ms: None,
        backend: None,
        degree: Some(degree.max(1)),
        convergence_rate: Some(converged as f64 / runs.max(1) as f64),
        messages_total: None,
    }
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 128 } else { 256 };
    let runs = if quick { 4 } else { 8 };
    let topologies = [
        TopologySpec::Ring { k: 2 },
        TopologySpec::Ring { k: 8 },
        TopologySpec::Ring { k: 32 },
        TopologySpec::Complete,
    ];
    let deltas = [0.10, 0.15, 0.20, 0.24];

    let mut points = Vec::new();
    let mut table = Table::new(
        &format!("EXP-TOPO: convergence over degree x delta (n = {n}, h = n, {runs} runs)"),
        &["point", "degree", "delta", "rate", "settle_mean"],
    );
    for protocol in ["sf", "ssf"] {
        for &topo in &topologies {
            for &delta in &deltas {
                let point = measure_point(protocol, n, runs, delta, topo);
                let rate = point.convergence_rate.unwrap_or(0.0);
                let degree = point.degree.unwrap_or(0);
                match point.mean_rounds {
                    Some(mean) => table.push_row(&[
                        &point.label,
                        &degree,
                        &delta,
                        &fmt_f64(rate),
                        &fmt_f64(mean),
                    ]),
                    None => table.push_row(&[&point.label, &degree, &delta, &fmt_f64(rate), &"-"]),
                }
                points.push(point);
            }
        }
    }

    table.emit("topology");
    match save_bench_json("topology", &points) {
        Ok(path) => println!("[bench] {}", path.display()),
        Err(e) => println!("[bench] write failed: {e}"),
    }
    println!(
        "expected shape: complete-graph rows converge at every delta below \
         1/4; ring rows lose convergence as the degree drops, with the \
         cliff moving from delta = 0.20 toward 0.10 on the degree-4 ring."
    );
}
