//! EXP-PUSH — the PULL/PUSH separation of §1.5, measured.
//!
//! At `h = 1` and constant noise, PULL spreading is `Ω(n)` (Theorem 3)
//! while PUSH spreading is polylogarithmic (Feinerman–Haeupler–Korman):
//! reception in PUSH is a *reliable event* even when content is noisy.
//! We run SF (PULL) and the simplified PushSpreading protocol (PUSH) at
//! `h = 1` across population sizes and report the *dissemination* part of
//! each schedule — SF's listening phases (`2⌈m/h⌉`, which grow like
//! `n·δ·log n`) versus PUSH's spreading stage (`S·R ≈ log²n / log log n`)
//! — alongside measured settle rounds. The majority-amplification stage
//! costs the same in both models and is excluded from the headline
//! column (it is reported for completeness).

use np_baselines::push_spreading::{PushSpreading, PushSpreadingParams};
use np_bench::harness::{summarize, SfSetup};
use np_bench::report::{fmt_f64, Table};
use np_engine::population::PopulationConfig;
use np_engine::push::PushWorld;
use np_engine::runner::{run_batch, suggested_threads};
use np_linalg::noise::NoiseMatrix;
use np_stats::seeds::SeedSequence;

fn push_success_and_settle(n: usize, delta: f64, runs: usize, master: u64) -> (f64, f64) {
    let params = PushSpreadingParams::derive(n, 1, delta);
    let config = PopulationConfig::new(n, 0, 1, 1).expect("grid");
    let noise = NoiseMatrix::uniform(2, delta).expect("grid");
    let results = run_batch(
        SeedSequence::new(master),
        runs,
        suggested_threads(),
        move |seed| {
            let mut world = PushWorld::new(&PushSpreading::new(params), config, &noise, seed)
                .expect("alphabets match");
            let mut last_bad = 0u64;
            for r in 1..=params.total_rounds() {
                world.step();
                if !world.is_consensus() {
                    last_bad = r;
                }
            }
            world.is_consensus().then_some(last_bad + 1)
        },
    );
    let settled: Vec<f64> = results.iter().filter_map(|r| r.map(|x| x as f64)).collect();
    let rate = settled.len() as f64 / results.len() as f64;
    let mean = if settled.is_empty() {
        f64::NAN
    } else {
        settled.iter().sum::<f64>() / settled.len() as f64
    };
    (rate, mean)
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    let runs = if quick { 3 } else { 8 };
    let delta = 0.1;

    let mut table = Table::new(
        "EXP-PUSH: PULL(1) vs PUSH(1) at δ = 0.1, single source",
        &[
            "n",
            "pull_dissem",
            "push_dissem",
            "dissem_ratio",
            "pull_total",
            "push_total",
            "pull_success",
            "pull_settle",
            "push_success",
            "push_settle",
        ],
    );
    for &n in sizes {
        // PULL side: SF at h = 1. Dissemination = the two listening
        // phases.
        let sf = SfSetup {
            n,
            s0: 0,
            s1: 1,
            h: 1,
            delta,
            c1: 1.0,
        };
        let sf_params = sf.params();
        let pull_dissem = 2 * sf_params.phase_len();
        let measured = sf.run_many(0x9053 ^ n as u64, runs);
        let (pull_rate, pull_summary) = summarize(&measured);
        let pull_settle = pull_summary.map(|s| s.mean()).unwrap_or(f64::NAN);

        // PUSH side.
        let push_params = PushSpreadingParams::derive(n, 1, delta);
        let push_dissem = push_params.spreading_rounds();
        let (push_rate, push_settle) = push_success_and_settle(n, delta, runs, 0x9054 ^ n as u64);

        table.push_row(&[
            &n,
            &pull_dissem,
            &push_dissem,
            &fmt_f64(pull_dissem as f64 / push_dissem as f64),
            &sf_params.total_rounds(),
            &push_params.total_rounds(),
            &fmt_f64(pull_rate),
            &fmt_f64(pull_settle),
            &fmt_f64(push_rate),
            &fmt_f64(push_settle),
        ]);
    }
    table.emit("push_pull");
    println!(
        "expected shape: pull_dissem grows ~linearly in n while push_dissem \
         grows ~logarithmically, so dissem_ratio diverges — the exponential \
         PULL/PUSH separation of §1.5. Both models succeed in every run."
    );
}
