//! EXP-SCALE — the aggregated channel's headline: simulate the paper's
//! `h = n` regime at populations where the literal model would exchange
//! `Θ(n²)` messages per round.
//!
//! At `n = 131072` and `h = n`, one round of the literal model is ~17
//! billion noisy messages; the aggregated channel simulates it exactly
//! (same joint distribution) in `O(n)` work. This binary runs SF
//! end-to-end at increasing scales across a seed batch and reports both
//! a human-readable table and the machine-readable perf trajectory
//! (`BENCH_scale.json` at the workspace root) — demonstrating that the
//! `O(log n)` convergence claim is measurable at six-figure populations
//! on a laptop.

use noisy_pull::sf::SourceFilter;
use np_bench::harness::{perf_point, run_outcomes, SfSetup};
use np_bench::report::{fmt_f64, save_bench_json, Table};
use np_engine::channel::ChannelKind;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let (sizes, runs): (&[usize], usize) = if quick {
        (&[1 << 14], 2)
    } else {
        (&[1 << 14, 1 << 15, 1 << 16, 1 << 17], 4)
    };
    let delta = 0.2;

    let mut table = Table::new(
        "EXP-SCALE: SF at h = n on large populations (δ = 0.2, single source)",
        &[
            "n",
            "messages/round",
            "schedule_len",
            "runs",
            "converged",
            "mean_settle",
            "mean_wall_ms",
        ],
    );
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let setup = SfSetup::single_source_full_sample(n, delta, 1.0);
        let params = setup.params();
        let records = run_outcomes(0x5CA1E, runs, |seed| {
            let config = setup.config();
            let noise = NoiseMatrix::uniform(2, delta).expect("grid");
            let mut world = World::new(
                &SourceFilter::new(params),
                config,
                &noise,
                ChannelKind::Aggregated,
                seed,
            )
            .expect("alphabets match");
            // Batch-level parallelism owns the cores (see `SfSetup::run`).
            world.set_threads(1);
            world.run_until_stable_consensus(params.total_rounds(), 1)
        });
        let point = perf_point(&format!("n={n}"), n, &records);
        table.push_row(&[
            &n,
            &format!("{:.1e}", (n as f64) * (n as f64)),
            &params.total_rounds(),
            &point.runs,
            &point.converged,
            &point.mean_rounds.map_or_else(|| "-".to_string(), fmt_f64),
            &fmt_f64(point.mean_wall_ms),
        ]);
        points.push(point);
    }
    table.emit("scale");
    match save_bench_json("scale", &points) {
        Ok(path) => println!("[bench] {}", path.display()),
        Err(e) => println!("[bench] write failed: {e}"),
    }
    println!(
        "expected: every run converges at every size; settle grows \
         ~logarithmically while messages/round grows quadratically — the \
         aggregated channel makes the h = n regime a laptop workload."
    );
}
