//! EXP-SCALE — the aggregated channel's headline: simulate the paper's
//! `h = n` regime at populations where the literal model would exchange
//! `Θ(n²)` messages per round.
//!
//! At `n = 131072` and `h = n`, one round of the literal model is ~17
//! billion noisy messages; the aggregated channel simulates it exactly
//! (same joint distribution) in `O(n)` work. Above that, the mean-field
//! counts backend ([`np_engine::counts::CountsWorld`]) drops the cost to
//! `O(states)` per round — distribution-identical class-count dynamics —
//! which pushes the same experiment to `n = 10⁷` and `10⁸`. This binary
//! runs SF end-to-end across both backends and seed batches and reports
//! a human-readable table plus the machine-readable perf trajectory
//! (`BENCH_scale.json` at the workspace root): the `O(log n)` convergence
//! claim measured from `n = 2¹⁴` to `n = 10⁸` on a laptop.

use noisy_pull::sf::SourceFilter;
use np_bench::harness::{perf_point, run_outcomes, SfSetup};
use np_bench::report::{fmt_f64, save_bench_json, PerfPoint, Table};
use np_engine::channel::ChannelKind;
use np_engine::counts::CountsWorld;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

const DELTA: f64 = 0.2;

fn per_agent_point(n: usize, runs: usize) -> (PerfPoint, u64) {
    let setup = SfSetup::single_source_full_sample(n, DELTA, 1.0);
    let params = setup.params();
    let records = run_outcomes(0x5CA1E, runs, |seed| {
        let config = setup.config();
        let noise = NoiseMatrix::uniform(2, DELTA).expect("grid");
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .expect("alphabets match");
        // Batch-level parallelism owns the cores (see `SfSetup::run`).
        world.set_threads(1);
        world.run_until_stable_consensus(params.total_rounds(), 1)
    });
    let mut point = perf_point(&format!("n={n}"), n, &records);
    point.backend = Some("per-agent".to_string());
    (point, params.total_rounds())
}

fn mean_field_point(n: usize, runs: usize) -> (PerfPoint, u64) {
    let setup = SfSetup::single_source_full_sample(n, DELTA, 1.0);
    let params = setup.params();
    let records = run_outcomes(0x5CA1E, runs, |seed| {
        let config = setup.config();
        let noise = NoiseMatrix::uniform(2, DELTA).expect("grid");
        // The counts backend is single-threaded by construction: one
        // round is O(states) work, so there is nothing to parallelize.
        let mut world = CountsWorld::new(&SourceFilter::new(params), config, &noise, seed)
            .expect("alphabets match");
        world.run_until_stable_consensus(params.total_rounds(), 1)
    });
    let mut point = perf_point(&format!("n={n}"), n, &records);
    point.backend = Some("mean-field".to_string());
    (point, params.total_rounds())
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    // Per-agent covers the classic sizes; mean-field overlaps at 2¹⁷
    // (sanity: same rounds, much lower wall) and extends to 10⁷–10⁸.
    let (agent_sizes, field_sizes, runs): (&[usize], &[usize], usize) = if quick {
        (&[1 << 14], &[1 << 14, 10_000_000], 2)
    } else {
        (
            &[1 << 14, 1 << 15, 1 << 16, 1 << 17],
            &[1 << 17, 10_000_000, 100_000_000],
            4,
        )
    };

    let mut table = Table::new(
        "EXP-SCALE: SF at h = n on large populations (δ = 0.2, single source)",
        &[
            "backend",
            "n",
            "messages/round",
            "schedule_len",
            "runs",
            "converged",
            "mean_settle",
            "mean_wall_ms",
        ],
    );
    let mut points = Vec::with_capacity(agent_sizes.len() + field_sizes.len());
    let mut push = |table: &mut Table, point: PerfPoint, schedule: u64| {
        table.push_row(&[
            &point.backend.clone().unwrap_or_default(),
            &point.n,
            &format!("{:.1e}", (point.n as f64) * (point.n as f64)),
            &schedule,
            &point.runs,
            &point.converged,
            &point.mean_rounds.map_or_else(|| "-".to_string(), fmt_f64),
            &fmt_f64(point.mean_wall_ms),
        ]);
        points.push(point);
    };
    for &n in agent_sizes {
        let (point, schedule) = per_agent_point(n, runs);
        push(&mut table, point, schedule);
    }
    for &n in field_sizes {
        let (point, schedule) = mean_field_point(n, runs);
        push(&mut table, point, schedule);
    }
    table.emit("scale");
    match save_bench_json("scale", &points) {
        Ok(path) => println!("[bench] {}", path.display()),
        Err(e) => println!("[bench] write failed: {e}"),
    }
    println!(
        "expected: every run converges at every size; settle grows \
         ~logarithmically while messages/round grows quadratically. The \
         aggregated channel makes h = n a laptop workload to n = 131072; \
         the mean-field counts backend carries the same distribution to \
         n = 10^8, with n = 10^7 settling in well under 10 s of \
         single-thread wall clock."
    );
}
