//! EXP-SCALE — the aggregated channel's headline: simulate the paper's
//! `h = n` regime at populations where the literal model would exchange
//! `Θ(n²)` messages per round.
//!
//! At `n = 131072` and `h = n`, one round of the literal model is ~17
//! billion noisy messages; the aggregated channel simulates it exactly
//! (same joint distribution) in `O(n)` work. This binary runs SF
//! end-to-end at increasing scales and reports wall-clock time per run —
//! demonstrating that the `O(log n)` convergence claim is measurable at
//! six-figure populations on a laptop.

use noisy_pull::sf::SourceFilter;
use np_bench::harness::SfSetup;
use np_bench::report::{fmt_f64, Table};
use np_engine::channel::ChannelKind;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let sizes: &[usize] = if quick {
        &[1 << 14]
    } else {
        &[1 << 14, 1 << 15, 1 << 16, 1 << 17]
    };
    let delta = 0.2;

    let mut table = Table::new(
        "EXP-SCALE: SF at h = n on large populations (δ = 0.2, single source)",
        &[
            "n",
            "messages/round",
            "schedule_len",
            "consensus",
            "settle_round",
            "wall_ms",
        ],
    );
    for &n in sizes {
        let setup = SfSetup::single_source_full_sample(n, delta, 1.0);
        let config = setup.config();
        let params = setup.params();
        let noise = NoiseMatrix::uniform(2, delta).expect("grid");
        let start = std::time::Instant::now();
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            0x5CA1E,
        )
        .expect("alphabets match");
        let mut last_bad = 0u64;
        for r in 1..=params.total_rounds() {
            world.step();
            if !world.is_consensus() {
                last_bad = r;
            }
        }
        let wall = start.elapsed().as_millis();
        let consensus = world.is_consensus();
        table.push_row(&[
            &n,
            &format!("{:.1e}", (n as f64) * (n as f64)),
            &params.total_rounds(),
            &consensus,
            &(last_bad + 1),
            &fmt_f64(wall as f64),
        ]);
    }
    table.emit("scale");
    println!(
        "expected: consensus = true at every size; settle grows ~logarithmically \
         while messages/round grows quadratically — the aggregated channel \
         makes the h = n regime a laptop workload."
    );
}
