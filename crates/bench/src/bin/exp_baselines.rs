//! EXP-BASE — SF/SSF against the natural baselines (claim C3 and §1.5).
//!
//! Single source, `h = n`, δ = 0.15 (0.1 for the 4-symbol protocols).
//! Every protocol gets the *same* round budget — twice SF's schedule — and
//! we report the rate of settled correct consensus plus the mean settle
//! round. Expected outcome: SF and SSF succeed in every run; the zealot
//! voter and h-majority essentially never settle (the voter churns under
//! noise, majority locks into the initial coin flips); trusting-copy gets
//! poisoned by corrupted "informed" flags; the mean-estimator ablation
//! tracks its own initial majority instead of the source.

use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_baselines::majority::HMajority;
use np_baselines::mean_estimator::MeanEstimator;
use np_baselines::trusting_copy::TrustingCopy;
use np_baselines::voter::ZealotVoter;
use np_bench::harness::{run_settled, summarize, Measured};
use np_bench::report::{fmt_f64, Table};
use np_engine::channel::ChannelKind;
use np_engine::population::PopulationConfig;
use np_engine::protocol::Protocol;
use np_engine::runner::{run_batch, suggested_threads};
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;
use np_stats::seeds::SeedSequence;

fn run_protocol<P: Protocol + Sync>(
    proto: &P,
    config: PopulationConfig,
    delta: f64,
    budget: u64,
    runs: usize,
    master_seed: u64,
) -> Vec<Measured> {
    let noise = NoiseMatrix::uniform(proto.alphabet_size(), delta).expect("valid delta");
    run_batch(
        SeedSequence::new(master_seed),
        runs,
        suggested_threads(),
        move |seed| {
            let mut world = World::new(proto, config, &noise, ChannelKind::Aggregated, seed)
                .expect("alphabets match");
            run_settled(&mut world, budget)
        },
    )
}

fn push(table: &mut Table, name: &str, budget: u64, measured: &[Measured]) {
    let (rate, summary) = summarize(measured);
    match summary {
        Some(s) => table.push_row(&[
            &name,
            &budget,
            &fmt_f64(rate),
            &fmt_f64(s.mean()),
            &fmt_f64(s.median()),
        ]),
        None => table.push_row(&[&name, &budget, &fmt_f64(rate), &"-", &"-"]),
    }
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 256 } else { 1024 };
    let runs = if quick { 5 } else { 12 };
    let delta2 = 0.15; // binary-alphabet protocols
    let delta4 = 0.1; // 4-symbol protocols (must stay below 1/4)

    for (scenario, s0, s1) in [("single source", 0usize, 1usize), ("conflicting 5v4", 4, 5)] {
        let config2 = PopulationConfig::new(n, s0, s1, n).expect("grid");
        let sf_params = SfParams::derive(&config2, delta2, 1.0).expect("grid");
        let budget = 2 * sf_params.total_rounds();

        let mut table = Table::new(
            &format!("EXP-BASE ({scenario}): protocols under the same budget, n = {n}, h = n"),
            &["protocol", "budget", "success", "settle_mean", "settle_p50"],
        );

        // SF (δ = 0.15).
        let sf = run_protocol(
            &SourceFilter::new(sf_params),
            config2,
            delta2,
            budget,
            runs,
            0xBA5E,
        );
        push(&mut table, "SF", budget, &sf);

        // SSF (δ = 0.1, c1 = 16 — see SsfParams::derive docs on constants).
        let ssf_params = SsfParams::derive(&config2, delta4, 16.0).expect("grid");
        let ssf = run_protocol(
            &SelfStabilizingSourceFilter::new(ssf_params),
            config2,
            delta4,
            budget,
            runs,
            0xBA5F,
        );
        push(&mut table, "SSF", budget, &ssf);

        // Zealot voter (δ = 0.15).
        let voter = run_protocol(&ZealotVoter, config2, delta2, budget, runs, 0xBA60);
        push(&mut table, "zealot-voter", budget, &voter);

        // h-majority (δ = 0.15).
        let maj = run_protocol(&HMajority, config2, delta2, budget, runs, 0xBA61);
        push(&mut table, "h-majority", budget, &maj);

        // Trusting copy (4-symbol, δ = 0.1).
        let tc = run_protocol(&TrustingCopy, config2, delta4, budget, runs, 0xBA62);
        push(&mut table, "trusting-copy", budget, &tc);

        // Mean estimator (δ = 0.15).
        let me = run_protocol(
            &MeanEstimator::new(delta2),
            config2,
            delta2,
            budget,
            runs,
            0xBA63,
        );
        push(&mut table, "mean-estimator", budget, &me);

        let name = if s0 == 0 {
            "baselines_single"
        } else {
            "baselines_conflict"
        };
        table.emit(name);
    }
    println!(
        "expected: SF and SSF at success = 1; every baseline far below \
         (voter churns, majority locks into noise, trusting-copy is \
         poisoned, mean-estimator follows its own initial majority)."
    );
}
