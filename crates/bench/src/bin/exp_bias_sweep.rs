//! EXP-T4-S — Theorem 4's dependence on the source bias `s`.
//!
//! The dominant `n·δ/(min{s², n}(1−2δ)²)` term means quadrupling the bias
//! should cut the message budget (and the listening time) by ~16× until
//! `s² ≥ n` caps the gain. We sweep `s = s1` (all sources agreeing) with
//! `h = n` and report settle rounds alongside the budget `m`.

use np_bench::harness::{summarize, SfSetup};
use np_bench::report::{fmt_f64, Table};

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 512 } else { 2048 };
    let runs = if quick { 5 } else { 15 };
    let delta = 0.2;
    let c1 = 1.0;
    let biases: &[usize] = if quick {
        &[1, 2, 4, 8, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };

    let mut table = Table::new(
        "EXP-T4-S: SF settle round vs bias s (h = n, δ = 0.2, agreeing sources)",
        &["s", "runs", "success", "m", "settle_mean", "schedule_len"],
    );
    for &s in biases {
        let setup = SfSetup {
            n,
            s0: 0,
            s1: s,
            h: n,
            delta,
            c1,
        };
        let measured = setup.run_many(0xB1A5 ^ s as u64, runs);
        let (rate, summary) = summarize(&measured);
        let params = setup.params();
        match summary {
            Some(sm) => {
                table.push_row(&[
                    &s,
                    &runs,
                    &fmt_f64(rate),
                    &params.m(),
                    &fmt_f64(sm.mean()),
                    &params.total_rounds(),
                ]);
            }
            None => {
                table.push_row(&[
                    &s,
                    &runs,
                    &fmt_f64(rate),
                    &params.m(),
                    &"-",
                    &params.total_rounds(),
                ]);
            }
        }
    }
    table.emit("bias_sweep");
    println!(
        "expected shape: m (and the schedule) shrink rapidly with s — \
         roughly 1/s² on the dominant term — then flatten at the h·log n floor."
    );
}
