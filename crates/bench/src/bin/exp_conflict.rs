//! EXP-CONFLICT — claim C3: convergence to the *plurality* among
//! conflicting sources, even at the minimal bias `s = 1`.
//!
//! We fix `s1 = s0 + 1` (bias 1) and grow the total number of sources
//! toward `√n`. Both protocols must keep converging to opinion 1 — the
//! strict-majority preference — even though almost half the sources argue
//! for 0. The message budget `m` grows with `s0 + s1` (the `(s0+s1)/s²`
//! term of Eq. (19)): more conflicting sources genuinely slow SF down,
//! visible in the schedule column.

use np_bench::harness::{summarize, SfSetup, SsfSetup};
use np_bench::report::{fmt_f64, Table};

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 512 } else { 2048 };
    let runs = if quick { 5 } else { 12 };
    let totals: &[usize] = if quick {
        &[1, 5, 17]
    } else {
        &[1, 3, 9, 17, 33, 45]
    };

    let mut table = Table::new(
        "EXP-CONFLICT: bias-1 plurality consensus vs number of conflicting sources",
        &[
            "s0+s1",
            "s0",
            "s1",
            "protocol",
            "success",
            "settle_mean",
            "schedule_len",
        ],
    );
    for &total in totals {
        let s1 = total / 2 + 1;
        let s0 = total - s1;
        assert_eq!(s1 - s0, 1, "bias must be exactly 1");

        let sf = SfSetup {
            n,
            s0,
            s1,
            h: n,
            delta: 0.15,
            c1: 1.0,
        };
        let measured = sf.run_many(0xC0F ^ total as u64, runs);
        let (rate, summary) = summarize(&measured);
        let schedule = sf.params().total_rounds();
        match summary {
            Some(s) => table.push_row(&[
                &total,
                &s0,
                &s1,
                &"SF",
                &fmt_f64(rate),
                &fmt_f64(s.mean()),
                &schedule,
            ]),
            None => table.push_row(&[&total, &s0, &s1, &"SF", &fmt_f64(rate), &"-", &schedule]),
        }

        let ssf = SsfSetup {
            n,
            s0,
            s1,
            h: n,
            delta: 0.1,
            c1: 16.0,
            adversary: noisy_pull::adversary::SsfAdversary::None,
            budget_intervals: 10,
        };
        let measured = ssf.run_many(0xC1F ^ total as u64, runs);
        let (rate, summary) = summarize(&measured);
        let budget = 10 * ssf.params().update_interval();
        match summary {
            Some(s) => table.push_row(&[
                &total,
                &s0,
                &s1,
                &"SSF",
                &fmt_f64(rate),
                &fmt_f64(s.mean()),
                &budget,
            ]),
            None => table.push_row(&[&total, &s0, &s1, &"SSF", &fmt_f64(rate), &"-", &budget]),
        }
    }
    table.emit("conflict");
    println!(
        "expected: success = 1 for both protocols at every source count — \
         plurality wins at bias 1; SF's schedule grows with s0+s1 \
         (the (s0+s1)/s² term), while SSF's budget is bias-independent \
         (Theorem 5 does not use s)."
    );
}
