//! EXP-REPLACE — model robustness: sampling with vs. without replacement.
//!
//! The paper's model draws each agent's `h` samples *with* replacement.
//! Several of its motivating scenarios (an ant sensing the combined force
//! of all carriers) are closer to "observe everyone exactly once". This
//! experiment runs SF under both sampling modes and compares settle
//! times and weak-opinion accuracy.
//!
//! Expectation: indistinguishable for `h ≪ n` (collisions are rare), and
//! a small *improvement* without replacement at `h = n` — drawing the
//! whole population removes the sampling variance, leaving only channel
//! noise — so the paper's with-replacement analysis is, if anything,
//! conservative for the load-sensing story.

use noisy_pull::params::SfParams;
use noisy_pull::sf::SourceFilter;
use np_bench::harness::run_settled;
use np_bench::report::{fmt_f64, Table};
use np_engine::channel::{Channel, ChannelKind, SamplingMode};
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

fn measure(
    config: PopulationConfig,
    params: SfParams,
    mode: SamplingMode,
    runs: u64,
) -> (f64, f64, f64) {
    let noise = NoiseMatrix::uniform(2, params.delta()).expect("grid");
    let mut wins = 0u64;
    let mut settle_acc = 0.0;
    let mut weak_correct = 0u64;
    let mut weak_total = 0u64;
    for seed in 0..runs {
        // Weak-opinion pass.
        let channel = Channel::with_sampling(&noise, ChannelKind::Aggregated, mode);
        let mut world =
            World::with_channel(&SourceFilter::new(params), config, channel, 0x8E ^ seed)
                .expect("alphabets match");
        world.run(2 * params.phase_len());
        for agent in world.iter_agents() {
            weak_correct += u64::from(agent.weak_opinion() == Some(Opinion::One));
            weak_total += 1;
        }
        // End-to-end pass.
        let channel = Channel::with_sampling(&noise, ChannelKind::Aggregated, mode);
        let mut world =
            World::with_channel(&SourceFilter::new(params), config, channel, 0x8E ^ seed)
                .expect("alphabets match");
        let m = run_settled(&mut world, params.total_rounds());
        if let Some(r) = m.settled_round {
            wins += 1;
            settle_acc += r as f64;
        }
    }
    (
        wins as f64 / runs as f64,
        if wins > 0 {
            settle_acc / wins as f64
        } else {
            f64::NAN
        },
        weak_correct as f64 / weak_total as f64,
    )
}

fn main() {
    let quick = std::env::var("NP_QUICK").is_ok();
    let n = if quick { 512 } else { 2048 };
    let runs = if quick { 5 } else { 12 };
    let delta = 0.2;
    let hs = [(n as f64).sqrt() as usize, n / 4, n];

    let mut table = Table::new(
        "EXP-REPLACE: SF under with- vs without-replacement sampling (single source)",
        &["h", "mode", "success", "settle_mean", "weak_accuracy"],
    );
    for &h in &hs {
        let config = PopulationConfig::new(n, 0, 1, h).expect("grid");
        let params = SfParams::derive(&config, delta, 1.0).expect("grid");
        for (mode, label) in [
            (SamplingMode::WithReplacement, "with"),
            (SamplingMode::WithoutReplacement, "without"),
        ] {
            let (success, settle, weak) = measure(config, params, mode, runs);
            table.push_row(&[
                &h,
                &label,
                &fmt_f64(success),
                &fmt_f64(settle),
                &fmt_f64(weak),
            ]);
        }
    }
    table.emit("replacement");
    println!(
        "expected shape: the two modes agree at h ≪ n; at h = n the \
         without-replacement weak accuracy is slightly higher (sampling \
         variance vanishes; only channel noise remains)."
    );
}
