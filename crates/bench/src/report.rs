//! Aligned console tables, CSV files, and hand-rolled JSON writers for
//! experiment output.
//!
//! Every experiment binary prints one or more [`Table`]s and mirrors them
//! as CSV under `target/experiments/` so plots can be regenerated without
//! re-running simulations. The observability layer adds three JSON
//! artifacts: per-round JSONL traces ([`trace_jsonl`]), end-of-run
//! summaries ([`RunSummary`]), and the repo's perf-trajectory files
//! ([`save_bench_json`] → `BENCH_<name>.json` at the workspace root).
//! (All hand-rolled: no serialization crate is in the approved offline
//! dependency set — see DESIGN.md §2.)
//!
//! Traces and summaries are built from [`RoundMetrics`] only — pure
//! trajectory data — so their bytes are identical across thread counts.
//! Wall-clock numbers are allowed only in the bench perf points, which are
//! never byte-compared.

use std::fmt::Display;
use std::io::Write;
use std::path::{Path, PathBuf};

use np_engine::faults::FaultRecovery;
use np_engine::metrics::RoundMetrics;
use np_engine::population::PopulationConfig;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use np_bench::report::Table;
///
/// let mut t = Table::new("demo", &["n", "rounds"]);
/// t.push_row(&[&1024, &42.5]);
/// let text = t.render();
/// assert!(text.contains("rounds"));
/// assert!(t.to_csv().starts_with("n,rounds\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends one row; each cell is rendered with `Display`.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of columns.
    pub fn push_row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (header + rows, comma-separated; cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_cell(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| csv_cell(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `dir/<name>.csv`, creating the
    /// directory if needed, and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// Convenience wrapper: prints the table and saves it under
    /// [`experiments_dir`]`()/<name>.csv`, reporting the path on stdout.
    /// I/O failures are reported but not fatal (the console output is the
    /// primary artifact).
    pub fn emit(&self, name: &str) {
        self.print();
        match self.save_csv(&experiments_dir(), name) {
            Ok(path) => println!("[csv] {}\n", path.display()),
            Err(e) => println!("[csv] write failed: {e}\n"),
        }
    }
}

fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The standard output directory for experiment CSVs:
/// `target/experiments/` relative to the workspace root (falls back to the
/// current directory's `target/experiments`).
pub fn experiments_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("target").join("experiments")
}

/// The workspace root (two levels above `crates/bench`); the home of the
/// committed `BENCH_*.json` perf-trajectory files.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number. Rust's shortest-roundtrip `Display`
/// is deterministic, so equal values render to equal bytes; non-finite
/// values (not representable in JSON) become `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders one round's metrics as a single JSON object — one line of the
/// JSONL trace, without the trailing newline.
///
/// Schema (stable field order):
/// `{"round":…,"correct":…,"margin":…,"stages":[[id,count],…],`
/// `"weak_formed":…,"weak_correct":…}` — stages sorted by id, empty
/// stages omitted. Rounds where fault events were injected carry one
/// extra trailing field, `"faults":["label",…]`; fault-free rounds
/// render byte-identically to the pre-fault schema.
pub fn round_json(m: &RoundMetrics) -> String {
    let stages: Vec<String> = m
        .stages
        .iter()
        .map(|&(id, count)| format!("[{id},{count}]"))
        .collect();
    let faults = if m.faults.is_empty() {
        String::new()
    } else {
        let labels: Vec<String> = m.faults.iter().map(|l| json_string(l)).collect();
        format!(",\"faults\":[{}]", labels.join(","))
    };
    format!(
        "{{\"round\":{},\"correct\":{},\"margin\":{},\"stages\":[{}],\
         \"weak_formed\":{},\"weak_correct\":{}{}}}",
        m.round,
        m.correct,
        json_f64(m.margin()),
        stages.join(","),
        m.weak_formed,
        m.weak_correct,
        faults
    )
}

/// Renders a recorded trace as JSONL: one [`round_json`] line per round,
/// each newline-terminated. Trajectory data only, so the bytes are
/// identical for every thread count.
pub fn trace_jsonl(rounds: &[RoundMetrics]) -> String {
    let mut out = String::new();
    for m in rounds {
        out.push_str(&round_json(m));
        out.push('\n');
    }
    out
}

/// Writes a recorded trace to `path` as JSONL, creating parent
/// directories if needed.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn save_trace_jsonl(path: &Path, rounds: &[RoundMetrics]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, trace_jsonl(rounds))
}

/// End-of-run summary: the machine-readable counterpart of a CLI run's
/// console report. Trajectory data only — no thread count, no timings —
/// so two runs of the same seed produce byte-identical summaries
/// regardless of parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Protocol label (e.g. `"sf"`, `"ssf"`).
    pub protocol: String,
    /// Population size.
    pub n: usize,
    /// Sample size.
    pub h: usize,
    /// Sources preferring 0.
    pub s0: usize,
    /// Sources preferring 1.
    pub s1: usize,
    /// Master seed.
    pub seed: u64,
    /// Completed rounds.
    pub rounds: u64,
    /// Whether the run ended in correct consensus.
    pub consensus: bool,
    /// Agents holding the correct opinion at the end.
    pub final_correct: usize,
    /// Final margin over `n/2` (the paper's `A_ℓ`).
    pub final_margin: f64,
    /// Agents whose weak opinion had formed at the end.
    pub weak_formed: usize,
    /// Of those, how many weak opinions were correct.
    pub weak_correct: usize,
    /// Per-event fault recovery results (empty for fault-free runs, in
    /// which case the JSON rendering is unchanged from the pre-fault
    /// schema).
    pub faults: Vec<FaultRecovery>,
}

impl RunSummary {
    /// Builds a summary from the run's final [`RoundMetrics`] snapshot.
    pub fn from_final_metrics(
        protocol: &str,
        config: &PopulationConfig,
        seed: u64,
        last: &RoundMetrics,
    ) -> Self {
        RunSummary {
            protocol: protocol.to_string(),
            n: config.n(),
            h: config.h(),
            s0: config.s0(),
            s1: config.s1(),
            seed,
            rounds: last.round,
            consensus: last.correct == last.n,
            final_correct: last.correct,
            final_margin: last.margin(),
            weak_formed: last.weak_formed,
            weak_correct: last.weak_correct,
            faults: Vec::new(),
        }
    }

    /// Attaches per-event fault recovery results (from
    /// [`np_engine::faults::recovery_times`]) to the summary.
    #[must_use]
    pub fn with_faults(mut self, faults: Vec<FaultRecovery>) -> Self {
        self.faults = faults;
        self
    }

    /// Renders the summary as a single pretty-printed JSON object with a
    /// schema tag, newline-terminated. Runs with fault events gain a
    /// `"faults"` array of per-event recovery records; fault-free
    /// summaries render byte-identically to the pre-fault schema.
    pub fn to_json(&self) -> String {
        let faults = if self.faults.is_empty() {
            String::new()
        } else {
            let entries: Vec<String> = self
                .faults
                .iter()
                .map(|f| {
                    format!(
                        "    {{\"round\": {}, \"label\": {}, \
                         \"recovered_round\": {}, \"recovery_rounds\": {}}}",
                        f.round,
                        json_string(&f.label),
                        f.recovered_round
                            .map_or("null".to_string(), |r| r.to_string()),
                        f.recovery_rounds()
                            .map_or("null".to_string(), |r| r.to_string())
                    )
                })
                .collect();
            format!(",\n  \"faults\": [\n{}\n  ]", entries.join(",\n"))
        };
        format!(
            "{{\n  \"schema\": \"np-run-summary/v1\",\n  \"protocol\": {},\n  \
             \"n\": {},\n  \"h\": {},\n  \"s0\": {},\n  \"s1\": {},\n  \
             \"seed\": {},\n  \"rounds\": {},\n  \"consensus\": {},\n  \
             \"final_correct\": {},\n  \"final_margin\": {},\n  \
             \"weak_formed\": {},\n  \"weak_correct\": {}{}\n}}\n",
            json_string(&self.protocol),
            self.n,
            self.h,
            self.s0,
            self.s1,
            self.seed,
            self.rounds,
            self.consensus,
            self.final_correct,
            json_f64(self.final_margin),
            self.weak_formed,
            self.weak_correct,
            faults
        )
    }

    /// Writes the JSON rendering to `path`, creating parent directories
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// One point of a perf trajectory: a batch of seeded runs at one
/// configuration, aggregated. Wall-clock means are allowed here — bench
/// artifacts record performance and are never byte-compared.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// Point label (e.g. `"n=16384"`).
    pub label: String,
    /// Population size at this point.
    pub n: usize,
    /// Seeded runs at this point.
    pub runs: usize,
    /// How many of them converged.
    pub converged: usize,
    /// Mean rounds-to-settle over converged runs (`null` if none).
    pub mean_rounds: Option<f64>,
    /// Mean wall-clock per run, milliseconds.
    pub mean_wall_ms: f64,
    /// Median wall-clock per run, milliseconds. Present only for benches
    /// that record per-seed wall samples (throughput); omitted from the
    /// JSON when absent so legacy artifacts stay schema-valid.
    pub median_wall_ms: Option<f64>,
    /// 95th-percentile wall-clock per run, milliseconds (nearest-rank
    /// over the per-seed samples). Paired with `median_wall_ms`: both
    /// present or both absent.
    pub p95_wall_ms: Option<f64>,
    /// Simulation backend that produced this point: `"per-agent"` or
    /// `"mean-field"`. Omitted from the JSON when absent so legacy
    /// artifacts (which predate the mean-field counts engine) stay
    /// schema-valid.
    pub backend: Option<String>,
    /// Graph degree at this point (topology benches only). Omitted from
    /// the JSON when absent so complete-graph artifacts stay
    /// schema-valid.
    pub degree: Option<u64>,
    /// Fraction of runs that converged, `converged / runs` (topology
    /// benches only, where partial convergence is the interesting
    /// signal). Omitted from the JSON when absent.
    pub convergence_rate: Option<f64>,
    /// Total peer-to-peer messages put on the wire across the point's
    /// runs (cluster benches only, where message complexity is measured
    /// rather than derived as `n·h·rounds`). Omitted from the JSON when
    /// absent so round-engine artifacts stay schema-valid.
    pub messages_total: Option<u64>,
}

/// Nearest-rank quantiles of per-run wall samples: `(median, p95)`.
/// Returns `None` for an empty slice.
pub fn wall_quantiles(samples_ms: &[f64]) -> Option<(f64, f64)> {
    if samples_ms.is_empty() {
        return None;
    }
    let mut sorted = samples_ms.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = |q: f64| {
        let k = (q * sorted.len() as f64).ceil() as usize;
        sorted[k.max(1) - 1]
    };
    Some((rank(0.5), rank(0.95)))
}

impl PerfPoint {
    fn to_json(&self) -> String {
        let mut body = format!(
            "    {{\"label\": {}, \"n\": {}, \"runs\": {}, \"converged\": {}, \
             \"mean_rounds\": {}, \"mean_wall_ms\": {}",
            json_string(&self.label),
            self.n,
            self.runs,
            self.converged,
            self.mean_rounds.map_or("null".to_string(), json_f64),
            json_f64(self.mean_wall_ms)
        );
        if let (Some(median), Some(p95)) = (self.median_wall_ms, self.p95_wall_ms) {
            body.push_str(&format!(
                ", \"median_wall_ms\": {}, \"p95_wall_ms\": {}",
                json_f64(median),
                json_f64(p95)
            ));
        }
        if let Some(backend) = &self.backend {
            body.push_str(&format!(", \"backend\": {}", json_string(backend)));
        }
        if let Some(degree) = self.degree {
            body.push_str(&format!(", \"degree\": {degree}"));
        }
        if let Some(rate) = self.convergence_rate {
            body.push_str(&format!(", \"convergence_rate\": {}", json_f64(rate)));
        }
        if let Some(messages) = self.messages_total {
            body.push_str(&format!(", \"messages_total\": {messages}"));
        }
        body.push('}');
        body
    }
}

/// Renders a perf trajectory as the `BENCH_*.json` document.
pub fn bench_json(bench: &str, points: &[PerfPoint]) -> String {
    let body: Vec<String> = points.iter().map(PerfPoint::to_json).collect();
    format!(
        "{{\n  \"schema\": \"np-bench/v1\",\n  \"bench\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        json_string(bench),
        body.join(",\n")
    )
}

/// Writes the perf trajectory to `BENCH_<name>.json` at the workspace
/// root (the committed bench-history location) and returns the path.
///
/// # Errors
///
/// Propagates I/O errors from the write.
pub fn save_bench_json(name: &str, points: &[PerfPoint]) -> std::io::Result<PathBuf> {
    let path = workspace_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, bench_json(name, points))?;
    Ok(path)
}

/// Formats an `f64` with a sensible number of digits for tables.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_columns_panics() {
        let _ = Table::new("t", &[]);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn wrong_row_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(&[&1]);
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "v"]);
        t.push_row(&[&"x", &1]);
        t.push_row(&[&"longer", &22]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(&[&"plain"]);
        t.push_row(&[&"with,comma"]);
        t.push_row(&[&"with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert!(csv.starts_with("a\n"));
    }

    #[test]
    fn save_csv_roundtrip() {
        let dir = std::env::temp_dir().join("np_bench_report_test");
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(&[&1, &2]);
        let path = t.save_csv(&dir, "unit").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.12345), "0.1235");
        assert_eq!(fmt_f64(6.54321), "6.54");
        assert_eq!(fmt_f64(123.456), "123.5");
        assert_eq!(fmt_f64(-0.5), "-0.5000");
    }

    #[test]
    fn experiments_dir_ends_correctly() {
        let d = experiments_dir();
        assert!(d.ends_with("target/experiments"));
    }

    fn metrics() -> RoundMetrics {
        RoundMetrics {
            round: 3,
            n: 8,
            correct: 5,
            stages: vec![(0, 7), (u32::MAX, 1)],
            weak_formed: 6,
            weak_correct: 4,
            faults: Vec::new(),
        }
    }

    #[test]
    fn round_json_matches_schema() {
        assert_eq!(
            round_json(&metrics()),
            "{\"round\":3,\"correct\":5,\"margin\":1,\
             \"stages\":[[0,7],[4294967295,1]],\
             \"weak_formed\":6,\"weak_correct\":4}"
        );
    }

    #[test]
    fn round_json_appends_fault_labels_only_when_present() {
        let mut m = metrics();
        m.faults = vec![
            "split-brain:4".to_string(),
            "ramp-noise:0.1->0.3/5".to_string(),
        ];
        assert_eq!(
            round_json(&m),
            "{\"round\":3,\"correct\":5,\"margin\":1,\
             \"stages\":[[0,7],[4294967295,1]],\
             \"weak_formed\":6,\"weak_correct\":4,\
             \"faults\":[\"split-brain:4\",\"ramp-noise:0.1->0.3/5\"]}"
        );
        // Fault-free rounds must keep the pre-fault bytes.
        assert!(!round_json(&metrics()).contains("faults"));
    }

    #[test]
    fn summary_faults_render_and_stay_absent_when_empty() {
        let config = PopulationConfig::new(8, 1, 2, 4).unwrap();
        let base = RunSummary::from_final_metrics("ssf", &config, 3, &metrics());
        assert!(!base.to_json().contains("\"faults\""));
        let summary = base.with_faults(vec![
            FaultRecovery {
                round: 5,
                label: "flip-sources:1".to_string(),
                recovered_round: Some(12),
            },
            FaultRecovery {
                round: 20,
                label: "sleep:3/4r".to_string(),
                recovered_round: None,
            },
        ]);
        let json = summary.to_json();
        assert!(json.contains(
            "{\"round\": 5, \"label\": \"flip-sources:1\", \
             \"recovered_round\": 12, \"recovery_rounds\": 7}"
        ));
        assert!(json.contains(
            "{\"round\": 20, \"label\": \"sleep:3/4r\", \
             \"recovered_round\": null, \"recovery_rounds\": null}"
        ));
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn trace_jsonl_is_one_line_per_round() {
        let text = trace_jsonl(&[metrics(), metrics()]);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(trace_jsonl(&[]).is_empty());
    }

    #[test]
    fn fractional_margin_renders_with_decimal() {
        let mut m = metrics();
        m.n = 9;
        assert!(round_json(&m).contains("\"margin\":0.5"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn run_summary_round_trips_fields() {
        let config = PopulationConfig::new(8, 1, 2, 4).unwrap();
        let summary = RunSummary::from_final_metrics("sf", &config, 42, &metrics());
        assert_eq!(summary.n, 8);
        assert_eq!(summary.h, 4);
        assert_eq!(summary.s0, 1);
        assert_eq!(summary.s1, 2);
        assert!(!summary.consensus);
        let json = summary.to_json();
        assert!(json.contains("\"schema\": \"np-run-summary/v1\""));
        assert!(json.contains("\"protocol\": \"sf\""));
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"consensus\": false"));
        assert!(json.contains("\"final_margin\": 1"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn summary_reports_consensus_when_all_correct() {
        let config = PopulationConfig::new(8, 0, 1, 4).unwrap();
        let mut m = metrics();
        m.correct = 8;
        let summary = RunSummary::from_final_metrics("ssf", &config, 1, &m);
        assert!(summary.consensus);
        assert!(summary.to_json().contains("\"consensus\": true"));
    }

    #[test]
    fn trace_and_summary_files_round_trip() {
        let dir = std::env::temp_dir().join("np_bench_json_test");
        let trace_path = dir.join("t.jsonl");
        save_trace_jsonl(&trace_path, &[metrics()]).unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert_eq!(trace, round_json(&metrics()) + "\n");
        let config = PopulationConfig::new(8, 1, 2, 4).unwrap();
        let summary = RunSummary::from_final_metrics("sf", &config, 7, &metrics());
        let summary_path = dir.join("s.json");
        summary.save(&summary_path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&summary_path).unwrap(),
            summary.to_json()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_json_document_shape() {
        let points = vec![
            PerfPoint {
                label: "n=64".to_string(),
                n: 64,
                runs: 4,
                converged: 4,
                mean_rounds: Some(12.5),
                mean_wall_ms: 3.25,
                median_wall_ms: None,
                p95_wall_ms: None,
                backend: None,
                degree: None,
                convergence_rate: None,
                messages_total: None,
            },
            PerfPoint {
                label: "n=128".to_string(),
                n: 128,
                runs: 4,
                converged: 0,
                mean_rounds: None,
                mean_wall_ms: 6.5,
                median_wall_ms: Some(6.25),
                p95_wall_ms: Some(8.0),
                backend: Some("mean-field".to_string()),
                degree: None,
                convergence_rate: None,
                messages_total: None,
            },
        ];
        let doc = bench_json("scale", &points);
        assert!(doc.contains("\"schema\": \"np-bench/v1\""));
        assert!(doc.contains("\"bench\": \"scale\""));
        assert!(doc.contains("\"mean_rounds\": 12.5"));
        assert!(doc.contains("\"mean_rounds\": null"));
        assert_eq!(doc.matches("\"label\"").count(), 2);
        // Backend key is trailing and only present when set.
        assert!(doc.contains("\"p95_wall_ms\": 8, \"backend\": \"mean-field\"}"));
        assert_eq!(doc.matches("\"backend\"").count(), 1);
        // Topology keys stay absent unless set.
        assert!(!doc.contains("degree"));
        assert!(!doc.contains("convergence_rate"));
    }

    #[test]
    fn topology_point_appends_degree_and_rate() {
        let point = PerfPoint {
            label: "sf ring:4 d=0.20".to_string(),
            n: 256,
            runs: 8,
            converged: 6,
            mean_rounds: Some(41.5),
            mean_wall_ms: 2.0,
            median_wall_ms: None,
            p95_wall_ms: None,
            backend: None,
            degree: Some(8),
            convergence_rate: Some(0.75),
            messages_total: None,
        };
        let doc = bench_json("topology", &[point]);
        assert!(doc.contains("\"degree\": 8, \"convergence_rate\": 0.75}"));
    }

    #[test]
    fn cluster_point_appends_messages_total() {
        let point = PerfPoint {
            label: "lat=50us drop=0".to_string(),
            n: 256,
            runs: 8,
            converged: 8,
            mean_rounds: Some(90.0),
            mean_wall_ms: 95.0,
            median_wall_ms: Some(92.0),
            p95_wall_ms: Some(110.0),
            backend: None,
            degree: None,
            convergence_rate: Some(1.0),
            messages_total: Some(4_096_000),
        };
        let doc = bench_json("cluster", &[point]);
        assert!(doc.contains("\"convergence_rate\": 1, \"messages_total\": 4096000}"));
    }

    #[test]
    fn workspace_root_contains_bench_crate() {
        assert!(workspace_root().join("crates").join("bench").is_dir());
    }
}
