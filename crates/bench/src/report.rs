//! Aligned console tables and CSV files for experiment output.
//!
//! Every experiment binary prints one or more [`Table`]s and mirrors them
//! as CSV under `target/experiments/` so plots can be regenerated without
//! re-running simulations. (Hand-rolled: no serialization crate is in the
//! approved offline dependency set — see DESIGN.md §2.)

use std::fmt::Display;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use np_bench::report::Table;
///
/// let mut t = Table::new("demo", &["n", "rounds"]);
/// t.push_row(&[&1024, &42.5]);
/// let text = t.render();
/// assert!(text.contains("rounds"));
/// assert!(t.to_csv().starts_with("n,rounds\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends one row; each cell is rendered with `Display`.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of columns.
    pub fn push_row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (header + rows, comma-separated; cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_cell(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| csv_cell(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `dir/<name>.csv`, creating the
    /// directory if needed, and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// Convenience wrapper: prints the table and saves it under
    /// [`experiments_dir`]`()/<name>.csv`, reporting the path on stdout.
    /// I/O failures are reported but not fatal (the console output is the
    /// primary artifact).
    pub fn emit(&self, name: &str) {
        self.print();
        match self.save_csv(&experiments_dir(), name) {
            Ok(path) => println!("[csv] {}\n", path.display()),
            Err(e) => println!("[csv] write failed: {e}\n"),
        }
    }
}

fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The standard output directory for experiment CSVs:
/// `target/experiments/` relative to the workspace root (falls back to the
/// current directory's `target/experiments`).
pub fn experiments_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("target").join("experiments")
}

/// Formats an `f64` with a sensible number of digits for tables.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_columns_panics() {
        let _ = Table::new("t", &[]);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn wrong_row_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(&[&1]);
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "v"]);
        t.push_row(&[&"x", &1]);
        t.push_row(&[&"longer", &22]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(&[&"plain"]);
        t.push_row(&[&"with,comma"]);
        t.push_row(&[&"with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert!(csv.starts_with("a\n"));
    }

    #[test]
    fn save_csv_roundtrip() {
        let dir = std::env::temp_dir().join("np_bench_report_test");
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(&[&1, &2]);
        let path = t.save_csv(&dir, "unit").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.12345), "0.1235");
        assert_eq!(fmt_f64(6.54321), "6.54");
        assert_eq!(fmt_f64(123.456), "123.5");
        assert_eq!(fmt_f64(-0.5), "-0.5000");
    }

    #[test]
    fn experiments_dir_ends_correctly() {
        let d = experiments_dir();
        assert!(d.ends_with("target/experiments"));
    }
}
