//! Criterion bench: the Theorem 8 pipeline — matrix inversion and
//! artificial-noise derivation across alphabet sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use np_linalg::lu::invert;
use np_linalg::noise::NoiseMatrix;
use np_linalg::Matrix;

fn upper_bounded(d: usize) -> NoiseMatrix {
    // Deterministic δ-upper-bounded matrix with slightly uneven rows.
    let delta = 0.5 / d as f64;
    let mut rows = vec![vec![0.0; d]; d];
    for (i, row) in rows.iter_mut().enumerate() {
        let mut off = 0.0;
        for (j, slot) in row.iter_mut().enumerate() {
            if i != j {
                let x = delta * (0.5 + 0.5 * ((i + j) % 2) as f64);
                *slot = x;
                off += x;
            }
        }
        row[i] = 1.0 - off;
    }
    NoiseMatrix::from_rows(rows).unwrap()
}

fn bench_invert(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_invert");
    for &d in &[2usize, 4, 8, 16] {
        let m: Matrix = upper_bounded(d).into_matrix();
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| invert(&m).unwrap())
        });
    }
    group.finish();
}

fn bench_artificial_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("artificial_noise_derivation");
    for &d in &[2usize, 4, 8] {
        let n = upper_bounded(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| n.artificial_noise().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_invert, bench_artificial_noise);
criterion_main!(benches);
