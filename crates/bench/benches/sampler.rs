//! Criterion bench: the statistical primitives on the hot path — alias
//! sampling, binomial draws across their three regimes, and multinomial
//! splitting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use np_stats::alias::AliasTable;
use np_stats::{binomial, multinomial};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias_sample");
    for &k in &[2usize, 4, 16, 256] {
        let weights: Vec<f64> = (1..=k).map(|i| i as f64).collect();
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| table.sample(&mut rng))
        });
    }
    group.finish();
}

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sample");
    // One point per sampling regime: Bernoulli loop, BINV, mode inversion,
    // and a large-n mode inversion.
    for &(n, p, label) in &[
        (12u64, 0.4, "bernoulli"),
        (1000, 0.005, "binv"),
        (1000, 0.4, "mode"),
        (1 << 20, 0.3, "mode_large"),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, &n| {
            b.iter(|| binomial::sample_unchecked(&mut rng, n, p))
        });
    }
    group.finish();
}

fn bench_multinomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("multinomial_sample");
    for &d in &[2usize, 4, 8] {
        let probs: Vec<f64> = vec![1.0 / d as f64; d];
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| multinomial::sample_unchecked(&mut rng, 1024, &probs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alias, bench_binomial, bench_multinomial);
criterion_main!(benches);
