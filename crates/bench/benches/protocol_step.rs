//! Criterion bench: full world rounds for SF, SSF and the baselines —
//! the end-to-end cost the experiment sweeps pay per simulated round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use noisy_pull::columnar::sf::ColumnarSourceFilter;
use noisy_pull::columnar::ssf::ColumnarSsf;
use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_baselines::majority::HMajority;
use np_baselines::voter::ZealotVoter;
use np_engine::channel::ChannelKind;
use np_engine::population::PopulationConfig;
use np_engine::protocol::{ColumnarProtocol, Protocol};
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

fn bench_world_step<P: Protocol>(
    c: &mut Criterion,
    label: &str,
    proto: &P,
    config: PopulationConfig,
    delta: f64,
) {
    let noise = NoiseMatrix::uniform(proto.alphabet_size(), delta).unwrap();
    let mut group = c.benchmark_group("world_step");
    group.throughput(Throughput::Elements(config.n() as u64));
    group.bench_with_input(BenchmarkId::new(label, config.n()), &(), |b, _| {
        let mut world = World::new(proto, config, &noise, ChannelKind::Aggregated, 7).unwrap();
        b.iter(|| {
            world.step();
            world.round()
        })
    });
    group.finish();
}

fn bench_protocols(c: &mut Criterion) {
    for &n in &[1024usize, 4096] {
        let config = PopulationConfig::new(n, 0, 1, n).unwrap();
        let sf_params = SfParams::derive(&config, 0.2, 1.0).unwrap();
        bench_world_step(c, "sf", &SourceFilter::new(sf_params), config, 0.2);
        let ssf_params = SsfParams::derive(&config, 0.1, 4.0).unwrap();
        bench_world_step(
            c,
            "ssf",
            &SelfStabilizingSourceFilter::new(ssf_params),
            config,
            0.1,
        );
        bench_world_step(c, "voter", &ZealotVoter, config, 0.2);
        bench_world_step(c, "majority", &HMajority, config, 0.2);
    }
}

/// One `World::step` at 1 vs 4 worker threads over the columnar ports —
/// the speedup the per-agent-stream refactor buys on large populations.
/// Trajectories are identical at every thread count, so the two variants
/// measure the same work, only scheduled differently.
fn bench_serial_vs_chunked<P: ColumnarProtocol>(
    c: &mut Criterion,
    label: &str,
    proto: &P,
    config: PopulationConfig,
    delta: f64,
) {
    let noise = NoiseMatrix::uniform(proto.alphabet_size(), delta).unwrap();
    let mut group = c.benchmark_group("world_step_threads");
    group.throughput(Throughput::Elements(config.n() as u64));
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_t{threads}"), config.n()),
            &(),
            |b, _| {
                let mut world =
                    World::new(proto, config, &noise, ChannelKind::Aggregated, 7).unwrap();
                world.set_threads(threads);
                b.iter(|| {
                    world.step();
                    world.round()
                })
            },
        );
    }
    group.finish();
}

fn bench_chunked_scaling(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        let config = PopulationConfig::new(n, 0, 1, n).unwrap();
        let sf_params = SfParams::derive(&config, 0.2, 1.0).unwrap();
        bench_serial_vs_chunked(c, "sf", &ColumnarSourceFilter::new(sf_params), config, 0.2);
        let ssf_params = SsfParams::derive(&config, 0.1, 4.0).unwrap();
        bench_serial_vs_chunked(c, "ssf", &ColumnarSsf::new(ssf_params), config, 0.1);
    }
}

fn bench_push_world(c: &mut Criterion) {
    use np_baselines::push_spreading::{PushSpreading, PushSpreadingParams};
    use np_engine::push::PushWorld;
    let mut group = c.benchmark_group("push_world_step");
    for &n in &[1024usize, 4096] {
        let params = PushSpreadingParams::derive(n, 1, 0.1);
        let config = PopulationConfig::new(n, 0, 1, 1).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("push_spreading", n), &(), |b, _| {
            let mut world =
                PushWorld::new(&PushSpreading::new(params), config, &noise, 11).unwrap();
            b.iter(|| {
                world.step();
                world.round()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_protocols,
    bench_chunked_scaling,
    bench_push_world
);
criterion_main!(benches);
