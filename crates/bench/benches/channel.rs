//! Criterion bench: noisy-channel round throughput, exact vs aggregated.
//!
//! Quantifies the engine's central optimization (DESIGN.md §2): the
//! aggregated channel's cost is independent of `h`, so at `h = n` it wins
//! by orders of magnitude, which is what makes the paper's `h = n`
//! experiments tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use np_engine::channel::{Channel, ChannelKind};
use np_engine::streams::StreamRng;
use np_linalg::noise::NoiseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_channels(c: &mut Criterion) {
    let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
    let mut group = c.benchmark_group("channel_round");
    for &n in &[256usize, 1024] {
        let mut setup = StdRng::seed_from_u64(1);
        let displays: Vec<usize> = (0..n).map(|_| usize::from(setup.gen::<bool>())).collect();
        let mut rng = StreamRng::seed_from_u64(1);
        for &h in &[1usize, 16, n] {
            group.throughput(Throughput::Elements((n * h) as u64));
            for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
                let channel = Channel::new(&noise, kind);
                let mut out = vec![0u64; n * 2];
                group.bench_with_input(
                    BenchmarkId::new(format!("{kind:?}"), format!("n{n}_h{h}")),
                    &h,
                    |b, &h| {
                        b.iter(|| {
                            channel.fill_observations(&displays, h, &mut rng, &mut out);
                            out[0]
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_four_symbol_channel(c: &mut Criterion) {
    // SSF's 4-symbol alphabet costs more per agent in the aggregated path
    // (O(d²) binomials); measure the overhead.
    let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
    let n = 1024usize;
    let mut setup = StdRng::seed_from_u64(2);
    let displays: Vec<usize> = (0..n).map(|_| setup.gen_range(0..4)).collect();
    let mut rng = StreamRng::seed_from_u64(2);
    let channel = Channel::new(&noise, ChannelKind::Aggregated);
    let mut out = vec![0u64; n * 4];
    c.bench_function("channel_round/Aggregated4/n1024_hn", |b| {
        b.iter(|| {
            channel.fill_observations(&displays, n, &mut rng, &mut out);
            out[0]
        })
    });
}

criterion_group!(benches, bench_channels, bench_four_symbol_channel);
criterion_main!(benches);
