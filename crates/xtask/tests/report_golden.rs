//! Golden-byte test for the `np-lint/v1` report: a fixed fixture scan
//! must render to the exact bytes committed at
//! `tests/golden/np_lint_v1.jsonl`.
//!
//! The report is an interface — CI diffs it against baselines, and the
//! header promises byte-stable ordering. Any change to field order,
//! escaping, sorting, or the header must show up as a diff on the golden
//! file and be committed deliberately. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p xtask --test report_golden
//! ```

use std::path::{Path, PathBuf};

use xtask::rules::{BASE_RULES, PHASE_KERNEL_RULES, PROTOCOL_CLOCK_RULES, SNAPSHOT_PATH_RULES};
use xtask::scanner::{analyze_source, FileClass, RuleSet};
use xtask::{artifacts, report};

const LIB: RuleSet = RuleSet::new("library", BASE_RULES);
const CLOCK: RuleSet = RuleSet::new("protocol-clock", PROTOCOL_CLOCK_RULES);
const SNAP: RuleSet = RuleSet::new("snapshot-encode", SNAPSHOT_PATH_RULES);
const KERNELS: RuleSet = RuleSet::in_fns(
    "phase-kernel",
    PHASE_KERNEL_RULES,
    &[
        "fill_exact_chunk",
        "fill_aggregated_chunk",
        "display_chunk",
        "display_chunk_packed",
        "step_chunk",
    ],
);

fn crate_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

/// Scans a fixed fixture set with fixed workspace-relative names and
/// renders the canonical report. Everything here is deterministic: the
/// fixtures are committed, the rule tables are compiled in, and the
/// renderer sorts by (file, line, rule).
fn golden_report() -> String {
    let jobs: &[(&str, &[RuleSet])] = &[
        ("grouped_instant.rs", &[LIB, CLOCK]),
        ("hot_loop_rng_construct.rs", &[KERNELS]),
        ("narrowing_cast.rs", &[LIB, SNAP]),
        ("net_transport_clock.rs", &[LIB, CLOCK]),
        ("renamed_instant.rs", &[LIB, CLOCK]),
        ("stale_allow.rs", &[LIB]),
    ];
    let mut entries: Vec<report::Entry> = Vec::new();
    for (name, sets) in jobs {
        let path = crate_dir().join("tests/fixtures").join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|err| panic!("fixture {} unreadable: {err}", path.display()));
        let rel = format!("crates/xtask/tests/fixtures/{name}");
        for finding in analyze_source(FileClass::LibrarySource, &text, sets) {
            entries.push((rel.clone(), finding));
        }
    }
    report::sort_entries(&mut entries);
    report::render_jsonl(&entries, jobs.len())
}

#[test]
fn np_lint_v1_report_matches_golden_bytes() {
    let rendered = golden_report();
    let golden_path = crate_dir().join("tests/golden/np_lint_v1.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|err| {
        panic!(
            "golden file {} unreadable ({err}); bootstrap with UPDATE_GOLDEN=1",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "np-lint/v1 output drifted from the committed golden bytes; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn report_is_byte_identical_across_renders() {
    assert_eq!(golden_report(), golden_report());
}

#[test]
fn golden_report_validates_against_its_own_schema() {
    let rendered = golden_report();
    match artifacts::validate_text(&rendered) {
        Ok(desc) => assert!(desc.contains("np-lint/v1"), "unexpected schema: {desc}"),
        Err(errs) => panic!("golden report failed schema validation: {errs:?}"),
    }
}

#[test]
fn golden_report_round_trips_as_its_own_baseline() {
    let rendered = golden_report();
    let baseline = report::parse_baseline(&rendered).expect("report parses as baseline");
    assert!(
        !baseline.is_empty(),
        "golden fixtures were supposed to produce findings"
    );
    // Re-derive the entries and confirm none are "new" against the
    // baseline built from the same report.
    let jobs: &[(&str, &[RuleSet])] = &[
        ("grouped_instant.rs", &[LIB, CLOCK]),
        ("hot_loop_rng_construct.rs", &[KERNELS]),
        ("narrowing_cast.rs", &[LIB, SNAP]),
        ("net_transport_clock.rs", &[LIB, CLOCK]),
        ("renamed_instant.rs", &[LIB, CLOCK]),
        ("stale_allow.rs", &[LIB]),
    ];
    let mut entries: Vec<report::Entry> = Vec::new();
    for (name, sets) in jobs {
        let path = crate_dir().join("tests/fixtures").join(name);
        let text = std::fs::read_to_string(&path).expect("fixture");
        let rel = format!("crates/xtask/tests/fixtures/{name}");
        for finding in analyze_source(FileClass::LibrarySource, &text, sets) {
            entries.push((rel.clone(), finding));
        }
    }
    report::sort_entries(&mut entries);
    assert!(report::new_since(&entries, &baseline).is_empty());
}
