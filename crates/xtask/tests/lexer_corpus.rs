//! Corpus and property tests pinning the new lexer's sanitized view of
//! source text against the preserved legacy sanitizer
//! ([`xtask::legacy`]).
//!
//! The token analyzer replaced a line-oriented sanitizer that the whole
//! old rule set depended on. To guarantee the rewrite never *regressed*
//! string/comment stripping, every workspace source file the legacy code
//! could parse correctly (`legacy_comparable`) must sanitize to the exact
//! same per-line view under both implementations — plus proptest sweeps
//! over generated fragments and arbitrary junk.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use xtask::{legacy, lexer};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn sanitizer_matches_legacy_over_the_whole_workspace_corpus() {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "src"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();
    assert!(
        files.len() > 40,
        "corpus unexpectedly small: {}",
        files.len()
    );

    let mut compared = 0usize;
    let mut skipped = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("readable source");
        let lexed = lexer::lex(&text);
        if !lexed.legacy_comparable {
            // The legacy sanitizer misparses this file (multi-line string,
            // nested block comment, exotic literal); comparing against a
            // known-wrong oracle proves nothing.
            skipped.push(file.clone());
            continue;
        }
        let new = lexer::sanitize_lines(&text, &lexed);
        let old = legacy::sanitize_file(&text);
        assert_eq!(
            new.len(),
            old.len(),
            "{}: line counts diverged",
            file.display()
        );
        for (i, (n, o)) in new.iter().zip(&old).enumerate() {
            assert_eq!(
                n,
                o,
                "{}:{}: sanitized views diverged",
                file.display(),
                i + 1
            );
        }
        compared += 1;
    }
    // The corpus check must actually cover most of the workspace, or the
    // comparable-flag could silently rot into "skip everything". Files
    // with multi-line string literals (bench binaries, report writers)
    // are legitimately skipped, so the floor is two thirds, not all.
    assert!(
        compared * 3 >= files.len() * 2,
        "only {compared}/{} files were comparable; skipped: {skipped:?}",
        files.len()
    );
}

/// The fragment pool for the agreement property: plausible lines of
/// Rust-ish source, restricted to constructs the legacy sanitizer handles
/// correctly — the property filters on `legacy_comparable` anyway, but a
/// pool biased toward comparable text exercises the equality check
/// instead of the skip path.
const FRAGMENTS: &[&str] = &[
    "let x = 1;\n",
    "fn f() { y.unwrap(); }\n",
    "let s = \"lit with needle thread_rng\";\n",
    "let e = \"esc \\\" quote\";\n",
    "let c = 'x';\n",
    "let nl = '\\n';\n",
    "// line comment with HashMap\n",
    "/* block comment */ let y = 2;\n",
    "let l: &'static str = \"\";\n",
    "if a == 1.0 { }\n",
    "let r = 0..=n;\n",
    "#[cfg(test)]\n",
    "mod t { use std::time::Instant; }\n",
    "let idx = xs[i % 4] as u32;\n",
    "   \n",
    "} // closing\n",
];

/// Uniform draw from [`FRAGMENTS`] (the vendored proptest has no
/// `prop_oneof`/`Just`, so selection is an index map).
fn fragment() -> impl Strategy<Value = &'static str> {
    any::<u32>().prop_map(|i| FRAGMENTS[i as usize % FRAGMENTS.len()])
}

proptest! {
    /// On generated fragments the two sanitizers agree line-for-line
    /// whenever the legacy one claims competence.
    #[test]
    fn sanitize_agrees_on_generated_fragments(
        parts in proptest::collection::vec(fragment(), 1..24)
    ) {
        let text: String = parts.concat();
        let lexed = lexer::lex(&text);
        prop_assume!(lexed.legacy_comparable);
        let new = lexer::sanitize_lines(&text, &lexed);
        let old = legacy::sanitize_file(&text);
        prop_assert_eq!(new, old);
    }

    /// The lexer and sanitizer must never panic, whatever bytes arrive —
    /// they run over every workspace file on every CI pass. (The vendored
    /// proptest has no char/string strategies, so code points are drawn
    /// as u32 and folded into chars by hand, biased toward the ASCII
    /// punctuation the lexer actually branches on.)
    #[test]
    fn lexer_and_sanitizer_never_panic_on_arbitrary_input(
        raw in proptest::collection::vec(any::<u32>(), 0..300)
    ) {
        const SPICE: &[char] = &['"', '\'', '\\', '/', '*', '#', 'r', 'b', '\n', '[', ']'];
        let text: String = raw
            .into_iter()
            .map(|c| {
                if c % 3 == 0 {
                    SPICE[(c / 3) as usize % SPICE.len()]
                } else {
                    char::from_u32(c % 0x11_0000).unwrap_or('\u{fffd}')
                }
            })
            .collect();
        let lexed = lexer::lex(&text);
        let _ = lexer::sanitize_lines(&text, &lexed);
        let _ = lexer::regions(&lexed.toks);
    }
}
