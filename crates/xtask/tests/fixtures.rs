//! Rule self-tests: every lint rule fires exactly where its bad fixture
//! says — no more, no fewer — stays silent on the clean fixture, and is
//! suppressed by `xtask-allow` directives. Fixtures live in
//! `tests/fixtures/` (a subdirectory, so cargo does not compile them as
//! test targets).
//!
//! The grouped/renamed-import fixtures are additionally checked against
//! the preserved legacy needle scanner ([`xtask::legacy`]) to *prove*
//! they dodge it: the rewrite's motivating false negatives are pinned
//! here as regression tests, not just described in comments.

use xtask::legacy;
use xtask::rules::{
    all_rule_names, BASE_RULES, HOT_LOOP_RULES, HOT_PATH_RULES, PHASE_KERNEL_RULES,
    PROTOCOL_CLOCK_RULES, SNAPSHOT_PATH_RULES, UNKNOWN_ALLOW_MSG,
};
use xtask::scanner::{analyze_source, FileClass, Finding, RuleSet};

/// The base rule set every library file gets, mirroring the driver.
const LIB: RuleSet = RuleSet::new("library", BASE_RULES);
const HOT: RuleSet = RuleSet::new("hot-path", HOT_PATH_RULES);
const CLOCK: RuleSet = RuleSet::new("protocol-clock", PROTOCOL_CLOCK_RULES);
const SNAP: RuleSet = RuleSet::new("snapshot-encode", SNAPSHOT_PATH_RULES);
const LOOP_STEP: RuleSet = RuleSet::in_fns("hot-loop", HOT_LOOP_RULES, &["step"]);
/// The phase-kernel rule set, confined to the kernel function names the
/// driver uses.
const KERNELS: RuleSet = RuleSet::in_fns(
    "phase-kernel",
    PHASE_KERNEL_RULES,
    &[
        "fill_exact_chunk",
        "fill_aggregated_chunk",
        "display_chunk",
        "display_chunk_packed",
        "step_chunk",
    ],
);

fn fixture_text(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("fixture {} unreadable: {err}", path.display()))
}

/// Scans a fixture with the given rule sets, returning `(rule, line)`
/// pairs sorted the way the scanner reports them.
fn analyze(name: &str, class: FileClass, sets: &[RuleSet]) -> Vec<(String, usize)> {
    analyze_source(class, &fixture_text(name), sets)
        .into_iter()
        .map(|f| (f.rule.to_owned(), f.line))
        .collect()
}

fn findings(name: &str, class: FileClass, sets: &[RuleSet]) -> Vec<Finding> {
    analyze_source(class, &fixture_text(name), sets)
}

fn expect(rule: &str, lines: &[usize]) -> Vec<(String, usize)> {
    lines.iter().map(|&l| (rule.to_owned(), l)).collect()
}

#[test]
fn ambient_randomness_fires_exactly_where_expected() {
    let got = analyze("ambient_randomness.rs", FileClass::LibrarySource, &[LIB]);
    assert_eq!(got, expect("ambient-randomness", &[5, 6]));
}

#[test]
fn wall_clock_fires_exactly_where_expected() {
    let got = analyze("wall_clock.rs", FileClass::LibrarySource, &[LIB]);
    assert_eq!(got, expect("wall-clock", &[7]));
}

#[test]
fn hash_iteration_fires_exactly_where_expected() {
    let got = analyze("hash_iteration.rs", FileClass::LibrarySource, &[LIB]);
    assert_eq!(got, expect("hash-iteration", &[5, 6]));
}

#[test]
fn unwrap_fires_exactly_where_expected() {
    let got = analyze("unwrap.rs", FileClass::LibrarySource, &[LIB]);
    assert_eq!(got, expect("unwrap", &[5, 9]));
}

#[test]
fn debug_print_fires_exactly_where_expected() {
    let got = analyze("debug_print.rs", FileClass::LibrarySource, &[LIB]);
    assert_eq!(got, expect("debug-print", &[5, 6, 7]));
}

#[test]
fn float_eq_fires_exactly_where_expected() {
    let got = analyze("float_eq.rs", FileClass::LibrarySource, &[LIB]);
    assert_eq!(got, expect("float-eq", &[5, 9, 13]));
}

#[test]
fn raw_stdrng_fires_only_under_hot_path_rules() {
    let hot = analyze("raw_stdrng.rs", FileClass::LibrarySource, &[LIB, HOT]);
    assert_eq!(hot, expect("raw-stdrng", &[5, 6]));
    // Outside the hot-path scope the rule never runs — and then the
    // fixture's raw-stdrng suppression suppresses nothing, which the
    // stale-allow analysis reports. Scoping and allow-accounting in one.
    let base = analyze("raw_stdrng.rs", FileClass::LibrarySource, &[LIB]);
    assert_eq!(base, expect("stale-allow", &[15]));
}

#[test]
fn protocol_instant_fires_only_under_protocol_clock_rules() {
    let got = analyze(
        "protocol_instant.rs",
        FileClass::LibrarySource,
        &[LIB, CLOCK],
    );
    let want = vec![
        ("protocol-instant".to_owned(), 5),
        ("protocol-instant".to_owned(), 8),
        ("wall-clock".to_owned(), 8),
    ];
    assert_eq!(got, want);
    // Outside the protocol-clock scope only the generic wall-clock rule
    // applies (naming the type is legal), and the fixture's
    // protocol-instant suppression goes stale.
    let base = analyze("protocol_instant.rs", FileClass::LibrarySource, &[LIB]);
    assert_eq!(
        base,
        vec![("wall-clock".to_owned(), 8), ("stale-allow".to_owned(), 18)]
    );
}

#[test]
fn net_transport_clock_fires_outside_the_sanctioned_module() {
    // The np_net seam: transport code naming the wall clock directly
    // trips both clock rules; the clock.rs-style allow directive (same
    // wording as the real sanctioned site) silences them with nothing
    // left stale.
    let got = analyze(
        "net_transport_clock.rs",
        FileClass::LibrarySource,
        &[LIB, CLOCK],
    );
    let want = vec![
        ("protocol-instant".to_owned(), 6),
        ("wall-clock".to_owned(), 6),
    ];
    assert_eq!(got, want);
}

#[test]
fn snapshot_bytes_fires_only_under_snapshot_path_rules() {
    let got = analyze("snapshot_bytes.rs", FileClass::LibrarySource, &[LIB, SNAP]);
    let want = vec![
        ("snapshot-bytes".to_owned(), 5),
        ("snapshot-bytes".to_owned(), 7),
        ("hash-iteration".to_owned(), 10),
        ("snapshot-bytes".to_owned(), 10),
    ];
    assert_eq!(got, want);
}

#[test]
fn narrowing_cast_fires_exactly_where_expected() {
    let got = analyze("narrowing_cast.rs", FileClass::LibrarySource, &[LIB, SNAP]);
    assert_eq!(got, expect("narrowing-cast", &[6, 7]));
}

#[test]
fn panic_path_fires_only_inside_the_named_fn() {
    let got = analyze("panic_path.rs", FileClass::LibrarySource, &[LIB, LOOP_STEP]);
    assert_eq!(got, expect("panic-path", &[7, 9]));
}

#[test]
fn hot_loop_rng_construct_fires_only_inside_kernel_fns() {
    let got = analyze(
        "hot_loop_rng_construct.rs",
        FileClass::LibrarySource,
        &[KERNELS],
    );
    // Per-agent StdRng construction and per-agent Vec allocation fire
    // inside the scoped kernels; the unscoped function and the
    // stream-derived / allowed patterns stay silent.
    assert_eq!(got, expect("hot-loop-rng-construct", &[7, 8, 9, 16]));
}

#[test]
fn stale_allow_flags_unused_and_unknown_directives() {
    let got = findings("stale_allow.rs", FileClass::LibrarySource, &[LIB]);
    let summary: Vec<(String, usize)> = got.iter().map(|f| (f.rule.to_owned(), f.line)).collect();
    assert_eq!(summary, expect("stale-allow", &[5, 14]));
    // The two findings carry different messages: one is unused, one names
    // a rule that does not exist.
    assert!(
        got[0].message.contains("suppresses nothing"),
        "{:?}",
        got[0]
    );
    assert_eq!(got[1].message, UNKNOWN_ALLOW_MSG);
}

#[test]
fn grouped_import_fires_and_provably_dodges_the_needle_scanner() {
    let got = analyze(
        "grouped_instant.rs",
        FileClass::LibrarySource,
        &[LIB, CLOCK],
    );
    let want = vec![
        ("protocol-instant".to_owned(), 6),
        ("protocol-instant".to_owned(), 9),
        ("wall-clock".to_owned(), 9),
    ];
    assert_eq!(got, want);
    // The legacy scanner's protocol-instant needle never matches this
    // file: the grouped import was its documented false negative.
    let text = fixture_text("grouped_instant.rs");
    assert!(
        legacy::needle_lines(&text, legacy::PROTOCOL_INSTANT_NEEDLES).is_empty(),
        "legacy needle scan was supposed to miss the grouped import"
    );
}

#[test]
fn renamed_import_fires_and_provably_dodges_the_needle_scanner() {
    let got = analyze(
        "renamed_instant.rs",
        FileClass::LibrarySource,
        &[LIB, CLOCK],
    );
    let want = vec![
        ("protocol-instant".to_owned(), 6),
        ("protocol-instant".to_owned(), 9),
        ("wall-clock".to_owned(), 9),
    ];
    assert_eq!(got, want);
    let text = fixture_text("renamed_instant.rs");
    // The rename leaves `time::Instant` only on the import line; the use
    // site (`Clock::now()`) matches no legacy needle at all.
    assert_eq!(
        legacy::needle_lines(&text, legacy::PROTOCOL_INSTANT_NEEDLES),
        vec![6],
        "legacy saw only the import, never the renamed use site"
    );
    assert!(
        legacy::needle_lines(&text, legacy::WALL_CLOCK_NEEDLES).is_empty(),
        "legacy wall-clock needles were supposed to miss `Clock::now()`"
    );
}

#[test]
fn crate_headers_fires_on_library_roots_only() {
    let as_root = analyze("missing_headers.rs", FileClass::LibraryRoot, &[LIB]);
    assert_eq!(as_root, expect("crate-headers", &[1, 1]));
    let as_source = analyze("missing_headers.rs", FileClass::LibrarySource, &[LIB]);
    assert!(as_source.is_empty(), "{as_source:?}");
}

#[test]
fn clean_fixture_has_no_findings_even_as_root() {
    let got = analyze("clean.rs", FileClass::LibraryRoot, &[LIB]);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn allow_directives_suppress_every_finding_and_none_is_stale() {
    let got = analyze("allowed.rs", FileClass::LibrarySource, &[LIB]);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn every_rule_has_a_bad_fixture() {
    // Each rule must be demonstrated by a fixture that makes it fire;
    // collect the rules fired across all bad fixtures and compare against
    // the full catalog, so adding a rule without a fixture fails here.
    let base_fixtures = [
        "ambient_randomness.rs",
        "wall_clock.rs",
        "hash_iteration.rs",
        "unwrap.rs",
        "debug_print.rs",
        "float_eq.rs",
        "missing_headers.rs",
        "stale_allow.rs",
    ];
    let mut fired: Vec<String> = base_fixtures
        .iter()
        .flat_map(|f| analyze(f, FileClass::LibraryRoot, &[LIB]))
        .chain(analyze(
            "raw_stdrng.rs",
            FileClass::LibrarySource,
            &[LIB, HOT],
        ))
        .chain(analyze(
            "protocol_instant.rs",
            FileClass::LibrarySource,
            &[LIB, CLOCK],
        ))
        .chain(analyze(
            "snapshot_bytes.rs",
            FileClass::LibrarySource,
            &[LIB, SNAP],
        ))
        .chain(analyze(
            "narrowing_cast.rs",
            FileClass::LibrarySource,
            &[LIB, SNAP],
        ))
        .chain(analyze(
            "panic_path.rs",
            FileClass::LibrarySource,
            &[LIB, LOOP_STEP],
        ))
        .chain(analyze(
            "hot_loop_rng_construct.rs",
            FileClass::LibrarySource,
            &[KERNELS],
        ))
        .map(|(rule, _)| rule)
        .collect();
    fired.sort();
    fired.dedup();
    let mut catalog: Vec<String> = all_rule_names().iter().map(|s| (*s).to_owned()).collect();
    catalog.sort();
    assert_eq!(fired, catalog, "rule catalog and fixture coverage diverged");
}
