//! Rule self-tests: every lint rule fires exactly where its bad fixture
//! says — no more, no fewer — stays silent on the clean fixture, and is
//! suppressed by `xtask-allow` directives. Fixtures live in
//! `tests/fixtures/` (a subdirectory, so cargo does not compile them as
//! test targets).

use xtask::rules::{all_rule_names, HOT_PATH_RULES, SNAPSHOT_PATH_RULES};
use xtask::{scan_source_with, FileClass, Rule};

/// Scans a fixture file with extra rules, returning `(rule, line)` pairs
/// in file order.
fn scan_fixture_with(name: &str, class: FileClass, extra: &[Rule]) -> Vec<(String, usize)> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("fixture {} unreadable: {err}", path.display()));
    scan_source_with(class, &text, extra)
        .into_iter()
        .map(|f| (f.rule.to_owned(), f.line))
        .collect()
}

/// Scans a fixture file against the base catalog only.
fn scan_fixture(name: &str, class: FileClass) -> Vec<(String, usize)> {
    scan_fixture_with(name, class, &[])
}

fn expect(rule: &str, lines: &[usize]) -> Vec<(String, usize)> {
    lines.iter().map(|&l| (rule.to_owned(), l)).collect()
}

#[test]
fn ambient_randomness_fires_exactly_where_expected() {
    let got = scan_fixture("ambient_randomness.rs", FileClass::LibrarySource);
    assert_eq!(got, expect("ambient-randomness", &[5, 6]));
}

#[test]
fn wall_clock_fires_exactly_where_expected() {
    let got = scan_fixture("wall_clock.rs", FileClass::LibrarySource);
    assert_eq!(got, expect("wall-clock", &[7]));
}

#[test]
fn hash_iteration_fires_exactly_where_expected() {
    let got = scan_fixture("hash_iteration.rs", FileClass::LibrarySource);
    assert_eq!(got, expect("hash-iteration", &[5, 6]));
}

#[test]
fn unwrap_fires_exactly_where_expected() {
    let got = scan_fixture("unwrap.rs", FileClass::LibrarySource);
    assert_eq!(got, expect("unwrap", &[5, 9]));
}

#[test]
fn debug_print_fires_exactly_where_expected() {
    let got = scan_fixture("debug_print.rs", FileClass::LibrarySource);
    assert_eq!(got, expect("debug-print", &[5, 6, 7]));
}

#[test]
fn float_eq_fires_exactly_where_expected() {
    let got = scan_fixture("float_eq.rs", FileClass::LibrarySource);
    assert_eq!(got, expect("float-eq", &[5, 9, 13]));
}

#[test]
fn raw_stdrng_fires_only_under_hot_path_rules() {
    let hot = scan_fixture_with("raw_stdrng.rs", FileClass::LibrarySource, HOT_PATH_RULES);
    assert_eq!(hot, expect("raw-stdrng", &[5, 6]));
    // Outside the hot-path scope the same file is clean: the rule is
    // scoped, not global.
    let base = scan_fixture("raw_stdrng.rs", FileClass::LibrarySource);
    assert!(base.is_empty(), "{base:?}");
}

#[test]
fn protocol_instant_fires_only_under_hot_path_rules() {
    let mut hot = scan_fixture_with(
        "protocol_instant.rs",
        FileClass::LibrarySource,
        HOT_PATH_RULES,
    );
    hot.sort();
    // Line 8 (`Instant::now()`) also trips the generic wall-clock rule;
    // line 5 (the bare import) is visible to the hot-path rule alone.
    let mut want = expect("protocol-instant", &[5, 8]);
    want.extend(expect("wall-clock", &[8]));
    want.sort();
    assert_eq!(hot, want);
    // Outside the hot-path scope only the generic wall-clock rule applies:
    // naming the type (as the import does) is legal there.
    let base = scan_fixture("protocol_instant.rs", FileClass::LibrarySource);
    assert_eq!(base, expect("wall-clock", &[8]));
}

#[test]
fn snapshot_bytes_fires_only_under_snapshot_path_rules() {
    let mut got = scan_fixture_with(
        "snapshot_bytes.rs",
        FileClass::LibrarySource,
        SNAPSHOT_PATH_RULES,
    );
    got.sort();
    // Line 10 (`HashMap`) also trips the base hash-iteration rule; the
    // bare type mentions on lines 5 and 7 are visible to the encode-path
    // rule alone.
    let mut want = expect("snapshot-bytes", &[5, 7, 10]);
    want.extend(expect("hash-iteration", &[10]));
    want.sort();
    assert_eq!(got, want);
    // Outside the encode-path scope only construction/iteration is
    // caught: naming the types (as the import does) is legal there.
    let base = scan_fixture("snapshot_bytes.rs", FileClass::LibrarySource);
    assert_eq!(base, expect("hash-iteration", &[10]));
}

#[test]
fn crate_headers_fires_on_library_roots_only() {
    let as_root = scan_fixture("missing_headers.rs", FileClass::LibraryRoot);
    assert_eq!(as_root, expect("crate-headers", &[1, 1]));
    let as_source = scan_fixture("missing_headers.rs", FileClass::LibrarySource);
    assert!(as_source.is_empty(), "{as_source:?}");
}

#[test]
fn clean_fixture_has_no_findings_even_as_root() {
    let got = scan_fixture("clean.rs", FileClass::LibraryRoot);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn allow_directives_suppress_every_finding() {
    let got = scan_fixture("allowed.rs", FileClass::LibrarySource);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn every_rule_has_a_bad_fixture() {
    // Each rule must be demonstrated by a fixture that makes it fire;
    // collect the rules fired across all bad fixtures and compare against
    // the full catalog, so adding a rule without a fixture fails here.
    let bad_fixtures = [
        "ambient_randomness.rs",
        "wall_clock.rs",
        "hash_iteration.rs",
        "unwrap.rs",
        "debug_print.rs",
        "float_eq.rs",
        "missing_headers.rs",
    ];
    let mut fired: Vec<String> = bad_fixtures
        .iter()
        .flat_map(|f| scan_fixture(f, FileClass::LibraryRoot))
        .chain(scan_fixture_with(
            "raw_stdrng.rs",
            FileClass::LibrarySource,
            HOT_PATH_RULES,
        ))
        .chain(scan_fixture_with(
            "protocol_instant.rs",
            FileClass::LibrarySource,
            HOT_PATH_RULES,
        ))
        .chain(scan_fixture_with(
            "snapshot_bytes.rs",
            FileClass::LibrarySource,
            SNAPSHOT_PATH_RULES,
        ))
        .map(|(rule, _)| rule)
        .collect();
    fired.sort();
    fired.dedup();
    let mut catalog: Vec<String> = all_rule_names().iter().map(|s| (*s).to_owned()).collect();
    catalog.sort();
    assert_eq!(fired, catalog, "rule catalog and fixture coverage diverged");
}
