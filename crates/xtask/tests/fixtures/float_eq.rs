//! Bad fixture: exact float comparison. Rule `float-eq` must fire on
//! lines 5, 9 and 13.

pub fn literal_rhs(a: f64) -> bool {
    a == 0.3
}

pub fn literal_lhs(b: f32) -> bool {
    1.5 != b
}

pub fn cast_operand(x: u64, y: f64) -> bool {
    x as f64 == y
}
