//! Bad fixture for the `narrowing-cast` encode-path rule: truncating `as`
//! casts fire on lines 6 and 7; the widening cast on line 8 and the
//! allowed, pre-masked cast on line 14 stay silent.

pub fn encode(x: u64, small: u8) -> (u32, usize, u64) {
    let a = x as u32;
    let b = (x >> 1) as usize;
    let widened = small as u64;
    (a, b, widened)
}

pub fn allowed(x: u64) -> u16 {
    // xtask-allow: narrowing-cast (masked to 16 bits on the same line)
    (x & 0xffff) as u16
}
