//! Bad fixture for the `snapshot-bytes` encode-path rule: merely naming
//! a clock or hashed-container type inside a byte-stable encode path
//! (np-snap/v1 / np-manifest/v1 serialization) is a finding.

use std::time::Instant;

pub struct Stamped(pub std::time::SystemTime);

pub fn encode() -> usize {
    let map = std::collections::HashMap::<u32, u32>::new();
    map.len()
}

pub fn fine(fields: &[u64]) -> u64 {
    // Deterministic bytes: fixed field order, no clocks, no hashing.
    fields.iter().sum()
}

pub fn allowed() {
    // xtask-allow: snapshot-bytes, wall-clock (observer-side timing only)
    let _t = std::time::Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_hashed_containers() {
        let _ = std::collections::HashSet::<u32>::new();
    }
}
