//! Bad fixture: stdio writes in library code. Rule `debug-print` must
//! fire on lines 5, 6 and 7.

pub fn shout(x: u32) -> u32 {
    println!("x = {x}");
    eprintln!("still here");
    dbg!(x)
}
