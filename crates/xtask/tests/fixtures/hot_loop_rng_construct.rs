//! Bad fixture for the `hot-loop-rng-construct` phase-kernel rule:
//! per-agent RNG construction and per-agent Vec allocation inside a
//! kernel inner loop. Only the named kernel functions are in scope.

pub fn fill_aggregated_chunk(range: std::ops::Range<usize>, seed: u64) {
    for agent in range {
        let mut rng = StdRng::seed_from_u64(seed ^ agent as u64);
        let mut counts = vec![0u64; 4];
        let scratch: Vec<u64> = Vec::with_capacity(4);
        let _ = (rng.gen::<u64>(), counts.pop(), scratch);
    }
}

pub fn display_chunk_packed(range: std::ops::Range<usize>) {
    for _agent in range {
        let _per_agent: Vec<u64> = Vec::new();
    }
}

pub fn fill_observations(range: std::ops::Range<usize>) {
    // Not a scoped kernel function: the same allocation is no finding.
    let _fine = vec![0u64; range.len()];
}

pub fn step_chunk(streams: &RoundStreams, range: std::ops::Range<usize>) {
    for agent in range {
        // Stream-derived generators are the sanctioned path.
        let _rng = streams.rng(agent, StreamStage::Update);
    }
}

pub fn fill_exact_chunk(h: usize, range: std::ops::Range<usize>) {
    // xtask-allow: hot-loop-rng-construct (per-chunk scratch is fine)
    let mut swaps: Vec<usize> = Vec::with_capacity(h);
    for agent in range {
        swaps.push(agent);
    }
}
