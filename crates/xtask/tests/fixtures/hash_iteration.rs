//! Bad fixture: nondeterministic hash iteration. Rule `hash-iteration`
//! must fire on lines 5 and 6.

pub fn tally() -> usize {
    let set = std::collections::HashSet::<u32>::new();
    let map = std::collections::HashMap::<u32, u32>::new();
    set.len() + map.len()
}
