//! Bad fixture for the unused-suppression analysis: a directive that
//! suppresses nothing is itself a finding, as is one naming an unknown
//! rule; a directive that suppresses a real finding is not.

// xtask-allow: unwrap (nothing below this line unwraps)
pub fn spotless() -> u32 {
    0
}

pub fn used(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // xtask-allow: unwrap (suppresses a real finding)
}

// xtask-allow: unwrpa (typo: names no rule)
pub fn typo() -> u32 {
    1
}
