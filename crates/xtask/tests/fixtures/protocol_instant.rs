//! Bad fixture for the `protocol-instant` hot-path rule: naming
//! `std::time::Instant` inside protocol code, where timing must never
//! live.

use std::time::Instant;

pub fn bad_inline_timer() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}

pub fn fine(observed: &[u64]) -> u64 {
    // Pure update logic: no clocks anywhere near the trajectory.
    observed.iter().sum()
}

pub fn allowed() {
    // xtask-allow: protocol-instant, wall-clock (sanctioned observer clock)
    let _clock = std::time::Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_things() {
        let _ = std::time::Instant::now();
    }
}
