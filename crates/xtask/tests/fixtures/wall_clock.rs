//! Bad fixture: wall-clock reads. Rule `wall-clock` must fire once, on
//! line 7 (two needles on one line collapse into one finding).

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
