//! Bad fixture: ambient randomness. Rule `ambient-randomness` must fire
//! on lines 5 and 6 and nowhere else.

pub fn roll() -> (u64, u8) {
    let mut rng = rand::thread_rng();
    let x: u8 = rand::random();
    (rng.gen(), x)
}
