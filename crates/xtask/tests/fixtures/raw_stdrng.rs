//! Bad fixture for the `raw-stdrng` hot-path rule: hand-built sequential
//! generators where stream-derived ones are required.

pub fn bad(seed: u64) {
    let _a = StdRng::seed_from_u64(seed);
    let _b = StdRng::from_seed([0u8; 32]);
}

pub fn fine(streams: &RoundStreams) {
    // Stream-derived generators are the sanctioned path.
    let _rng = streams.rng(0, StreamStage::Update);
}

pub fn allowed(seed: u64) {
    // xtask-allow: raw-stdrng (an annotated construction is exempt)
    let _c = StdRng::seed_from_u64(seed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_build_rngs() {
        let _ = StdRng::seed_from_u64(7);
    }
}
