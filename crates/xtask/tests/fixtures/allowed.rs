//! Fixture: every would-be finding carries an `xtask-allow` directive, on
//! the same line, the preceding line, or a multi-line comment directly
//! above. Must scan clean.

pub fn sentinel(p: f64) -> bool {
    // xtask-allow: float-eq (degenerate sentinel, justification spills
    // onto a continuation comment line)
    p == 0.0
}

pub fn take(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // xtask-allow: unwrap (fixture)
}

pub fn lookup() -> usize {
    // xtask-allow: hash-iteration, unwrap (list directive covers both)
    std::collections::HashMap::<u32, u32>::new().get(&0).copied().unwrap() as usize
}
