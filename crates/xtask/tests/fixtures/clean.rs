//! Clean fixture: no rule may fire anywhere in this file, even as a
//! library root. Exercises the scanner's negative space — needles in
//! strings, comments and doc prose, integer comparisons, ranges, and a
//! `#[cfg(test)]` region doing everything the rules forbid.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Doc prose mentioning thread_rng, Instant::now and HashMap is fine.
pub fn describe() -> &'static str {
    // So is a comment saying .unwrap() or SystemTime::now.
    "call .unwrap() or println!(...) — string literals do not count"
}

/// Integer comparisons and ranges must not trip the float-eq rule.
pub fn compare(a: u64, b: u64) -> bool {
    a == b && a <= 5 && a != 3 && (0..=b).contains(&a)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt_from_every_rule() {
        let started = Instant::now();
        let mut map = HashMap::new();
        map.insert("k", 1.5f64);
        println!("elapsed: {:?}", started.elapsed());
        assert!(*map.get("k").unwrap() == 1.5);
    }
}
