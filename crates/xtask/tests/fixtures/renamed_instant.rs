//! Bad fixture for the renamed-import dodge: after `use std::time::Instant
//! as Clock`, every use site says `Clock::now()` — neither legacy needle
//! (`time::Instant`, `Instant::now`) appears on the use line. The import
//! resolver follows the alias and fires both rules there anyway.

use std::time::Instant as Clock;

pub fn renamed() -> u128 {
    Clock::now().elapsed().as_nanos()
}
