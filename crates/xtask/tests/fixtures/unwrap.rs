//! Bad fixture: unwrap/expect in library code. Rule `unwrap` must fire on
//! lines 5 and 9.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect("has two elements")
}
