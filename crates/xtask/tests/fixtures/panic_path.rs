//! Bad fixture for the fn-scoped `panic-path` rule: inside `step`,
//! indexing and panic!-family macros fire (lines 7 and 9); identical code
//! in any other function is out of scope, and an allowed line is
//! suppressed.

pub fn step(xs: &[u64], i: usize) -> u64 {
    let v = xs[i];
    if v == 0 {
        unreachable!("guarded by caller");
    }
    // xtask-allow: panic-path (first element guaranteed by construction)
    let w = xs[0];
    v + w
}

pub fn helper(xs: &[u64]) -> u64 {
    xs[0]
}
