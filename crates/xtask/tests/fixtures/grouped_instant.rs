//! Bad fixture for the grouped-import dodge: `use std::time::{Duration,
//! Instant}` never contains the substring `time::Instant`, so the legacy
//! needle scanner missed it entirely. The token analyzer resolves the
//! group and fires `protocol-instant` on the import and on every use.

use std::time::{Duration, Instant};

pub fn grouped(d: Duration) -> Duration {
    let t = Instant::now();
    t.elapsed() + d
}
