//! Fixture modeling the np_net transport seam: a deadline computed from
//! the wall clock directly in transport code fires both clock rules; the
//! sanctioned pattern (mirroring crates/net/src/clock.rs) is allowed.

pub fn bad_deadline_ns(ns: u64) -> u128 {
    let due = std::time::Instant::now() + std::time::Duration::from_nanos(ns);
    due.elapsed().as_nanos()
}

pub fn sanctioned_deadline_ns(ns: u64) -> u128 {
    // xtask-allow: wall-clock, protocol-instant (the sanctioned TCP-transport clock site)
    let due = std::time::Instant::now() + std::time::Duration::from_nanos(ns);
    due.elapsed().as_nanos()
}
