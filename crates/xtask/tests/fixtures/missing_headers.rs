//! Bad fixture: a crate root without the mandatory lint headers. Rule
//! `crate-headers` must fire twice (once per missing header) when this is
//! scanned as a library root.

pub fn noop() {}
