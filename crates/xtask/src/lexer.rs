//! A small hand-rolled Rust lexer — the token stream every lint rule in
//! [`crate::rules`] is expressed over.
//!
//! No `syn`, no proc-macro machinery: the workspace's zero-dependency
//! vendor policy applies to its own tooling, and the subset of Rust this
//! workspace uses lexes cleanly with ~300 lines of code. The lexer is
//! deliberately a *lexer*, not a parser: it produces raw tokens (idents,
//! punctuation, literal and comment spans) plus two structural overlays
//! computed in a second pass ([`Regions`]): `#[cfg(test)]` membership and
//! enclosing-function names, both tracked by brace depth.
//!
//! Compared to the needle scanner it replaced, the token stream closes the
//! documented false negatives: grouped imports
//! (`use std::time::{Duration, Instant}`), renamed imports
//! (`use std::time::Instant as Clock`), and alias indirection are all
//! visible here (the import-graph half lives in [`crate::resolve`]).
//!
//! [`sanitize_lines`] reconstructs the comment- and literal-stripped view
//! the legacy line scanner operated on; the corpus/proptest suite pins
//! the two against each other (see [`crate::legacy`]).

/// What kind of token a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `use`, `as`, names, …).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal, raw text preserved (`1.5`, `0xFF`, `3f64`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `'\n'`, `b'x'`).
    Char,
    /// `// …` comment (text includes the slashes).
    LineComment,
    /// `/* … */` comment, possibly spanning lines.
    BlockComment,
    /// Punctuation; multi-char operators (`::`, `==`, `..=`, …) are one
    /// token.
    Punct,
}

/// One lexed token with its source span.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// Byte offset of the token start.
    pub lo: usize,
    /// Byte offset one past the token end.
    pub hi: usize,
}

/// A fully lexed file.
#[derive(Clone, Debug)]
pub struct Lexed {
    /// All tokens in source order (comments included).
    pub toks: Vec<Tok>,
    /// Whether the legacy line sanitizer is well-defined on this source:
    /// `false` when the file uses constructs the old scanner misparsed
    /// (multi-line or escaped raw strings, nested block comments, exotic
    /// char escapes). The corpus comparison test skips those files.
    pub legacy_comparable: bool,
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `text` into tokens. Never fails: malformed input degrades to
/// single-character punctuation tokens rather than an error, because a
/// lint driver must keep scanning whatever it is pointed at.
pub fn lex(text: &str) -> Lexed {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let end = text.len();
    let byte_at = |i: usize| -> usize {
        if i < chars.len() {
            chars[i].0
        } else {
            end
        }
    };
    let mut toks = Vec::new();
    let mut comparable = true;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let (lo, c) = chars[i];
        let tok_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            '/' if matches!(chars.get(i + 1), Some((_, '/'))) => {
                let mut j = i;
                while j < chars.len() && chars[j].1 != '\n' {
                    j += 1;
                }
                push(
                    &mut toks,
                    TokKind::LineComment,
                    text,
                    lo,
                    byte_at(j),
                    tok_line,
                );
                i = j;
            }
            '/' if matches!(chars.get(i + 1), Some((_, '*'))) => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    match chars[j].1 {
                        '\n' => line += 1,
                        '/' if matches!(chars.get(j + 1), Some((_, '*'))) => {
                            depth += 1;
                            comparable = false; // nested: legacy ends at first `*/`
                            j += 1;
                        }
                        '*' if matches!(chars.get(j + 1), Some((_, '/'))) => {
                            depth -= 1;
                            j += 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                push(
                    &mut toks,
                    TokKind::BlockComment,
                    text,
                    lo,
                    byte_at(j),
                    tok_line,
                );
                i = j;
            }
            '"' => {
                let (j, multiline, terminated) = scan_string(&chars, i + 1, &mut line);
                comparable &= terminated && !multiline;
                push(&mut toks, TokKind::Str, text, lo, byte_at(j), tok_line);
                i = j;
            }
            '\'' => {
                i = scan_quote(&chars, text, i, &mut toks, &mut comparable, tok_line);
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j].1) {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().map(|&(_, ch)| ch).collect();
                // Literal prefixes: r"…", b"…", br"…", r#"…"#, b'…', r#ident.
                let next = chars.get(j).map(|&(_, ch)| ch);
                let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
                if is_str_prefix && (next == Some('"') || next == Some('#')) {
                    if let Some((k, raw_ident)) =
                        scan_prefixed(&chars, j, &ident, &mut line, &mut comparable)
                    {
                        if raw_ident {
                            push(&mut toks, TokKind::Ident, text, lo, byte_at(k), tok_line);
                        } else {
                            push(&mut toks, TokKind::Str, text, lo, byte_at(k), tok_line);
                        }
                        i = k;
                        continue;
                    }
                }
                if ident == "b" && next == Some('\'') {
                    // Byte-char literal: lex the quote part, then widen the
                    // token span to include the `b` prefix.
                    let before = toks.len();
                    let k = scan_quote(&chars, text, j, &mut toks, &mut comparable, tok_line);
                    if toks.len() > before {
                        let t = &mut toks[before];
                        t.lo = lo;
                        t.text = text[lo..t.hi].to_string();
                    }
                    i = k;
                    continue;
                }
                push(&mut toks, TokKind::Ident, text, lo, byte_at(j), tok_line);
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let j = scan_number(&chars, i);
                push(&mut toks, TokKind::Num, text, lo, byte_at(j), tok_line);
                i = j;
            }
            _ => {
                let mut matched = 0usize;
                'ops: for op in MULTI_PUNCT {
                    let olen = op.chars().count();
                    if chars.len() - i < olen {
                        continue;
                    }
                    for (k, oc) in op.chars().enumerate() {
                        if chars[i + k].1 != oc {
                            continue 'ops;
                        }
                    }
                    matched = olen;
                    break;
                }
                let j = i + matched.max(1);
                push(&mut toks, TokKind::Punct, text, lo, byte_at(j), tok_line);
                i = j;
            }
        }
    }
    Lexed {
        toks,
        legacy_comparable: comparable,
    }
}

fn push(toks: &mut Vec<Tok>, kind: TokKind, text: &str, lo: usize, hi: usize, line: usize) {
    toks.push(Tok {
        kind,
        text: text[lo..hi].to_string(),
        line,
        lo,
        hi,
    });
}

/// Scans a normal (escaped) string body starting just after the opening
/// quote; returns `(index past closing quote, crossed a newline,
/// terminated)`.
fn scan_string(chars: &[(usize, char)], mut j: usize, line: &mut usize) -> (usize, bool, bool) {
    let mut multiline = false;
    while j < chars.len() {
        match chars[j].1 {
            // The escaped char may itself be a newline (`\` line
            // continuation) — it still has to advance the line counter.
            '\\' => {
                if matches!(chars.get(j + 1), Some((_, '\n'))) {
                    *line += 1;
                    multiline = true;
                }
                j += 2;
            }
            '"' => return (j + 1, multiline, true),
            '\n' => {
                *line += 1;
                multiline = true;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, multiline, false)
}

/// Scans a raw/byte string (or raw identifier) after its prefix ident.
/// `j` points at the `#` or `"` following the prefix. Returns
/// `Some((index past end, is_raw_ident))`, or `None` if this is not
/// actually a literal (e.g. `b # x`).
fn scan_prefixed(
    chars: &[(usize, char)],
    mut j: usize,
    prefix: &str,
    line: &mut usize,
    comparable: &mut bool,
) -> Option<(usize, bool)> {
    let raw = prefix.contains('r');
    let mut hashes = 0usize;
    while matches!(chars.get(j), Some((_, '#'))) {
        hashes += 1;
        j += 1;
    }
    match chars.get(j) {
        Some((_, '"')) => {}
        Some(&(_, c)) if prefix == "r" && hashes == 1 && is_ident_start(c) => {
            // Raw identifier `r#foo`.
            let mut k = j;
            while k < chars.len() && is_ident_continue(chars[k].1) {
                k += 1;
            }
            return Some((k, true));
        }
        _ => return None,
    }
    j += 1; // past the opening quote
    if raw {
        // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
        while j < chars.len() {
            let c = chars[j].1;
            if c == '\n' {
                *line += 1;
                *comparable = false;
            }
            if c == '\\' {
                // Legacy treated this as an escape; raw strings have none.
                *comparable = false;
            }
            if c == '"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && matches!(chars.get(k), Some((_, '#'))) {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some((k, false));
                }
                // Inner quote: legacy would have closed the string here.
                *comparable = false;
            }
            j += 1;
        }
        *comparable = false;
        Some((j, false))
    } else {
        let (k, multiline, terminated) = scan_string(chars, j, line);
        *comparable &= terminated && !multiline;
        Some((k, false))
    }
}

/// Scans a `'`-introduced token: char literal or lifetime.
fn scan_quote(
    chars: &[(usize, char)],
    text: &str,
    i: usize,
    toks: &mut Vec<Tok>,
    comparable: &mut bool,
    tok_line: usize,
) -> usize {
    let lo = chars[i].0;
    let end = text.len();
    let byte_at = |k: usize| -> usize {
        if k < chars.len() {
            chars[k].0
        } else {
            end
        }
    };
    match chars.get(i + 1) {
        Some((_, '\\')) => {
            // Escaped char literal: consume the escape, then to the quote.
            let mut j = i + 3; // past `'\x`
            if matches!(chars.get(i + 2), Some((_, 'u'))) {
                while j < chars.len() && chars[j].1 != '\'' && chars[j].1 != '\n' {
                    j += 1;
                }
            }
            while j < chars.len() && chars[j].1 != '\'' && chars[j].1 != '\n' {
                j += 1;
            }
            let closed = matches!(chars.get(j), Some((_, '\'')));
            let j = if closed { j + 1 } else { j };
            // Legacy only understood the 4-char form `'\n'`.
            if !closed || j - i != 4 {
                *comparable = false;
            }
            push(toks, TokKind::Char, text, lo, byte_at(j), tok_line);
            j
        }
        Some(&(_, c2)) if matches!(chars.get(i + 2), Some((_, '\''))) && c2 != '\'' => {
            // Plain char literal `'x'`.
            push(toks, TokKind::Char, text, lo, byte_at(i + 3), tok_line);
            i + 3
        }
        Some(&(_, c2)) if is_ident_start(c2) => {
            // Lifetime.
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j].1) {
                j += 1;
            }
            push(toks, TokKind::Lifetime, text, lo, byte_at(j), tok_line);
            j
        }
        _ => {
            push(toks, TokKind::Punct, text, lo, byte_at(i + 1), tok_line);
            i + 1
        }
    }
}

/// Scans a numeric literal starting at `i`; returns the index past it.
fn scan_number(chars: &[(usize, char)], i: usize) -> usize {
    let mut j = i;
    let radix_prefix = chars[i].1 == '0'
        && matches!(
            chars.get(i + 1),
            Some((_, 'x' | 'X' | 'o' | 'O' | 'b' | 'B'))
        );
    if radix_prefix {
        j = i + 2;
        while j < chars.len() && (chars[j].1.is_ascii_alphanumeric() || chars[j].1 == '_') {
            j += 1;
        }
        return j;
    }
    while j < chars.len() && (chars[j].1.is_ascii_digit() || chars[j].1 == '_') {
        j += 1;
    }
    // Fractional part: `.` not followed by another `.` or an identifier
    // (so `0..n` and `1.max(2)` stay integer + punct).
    if matches!(chars.get(j), Some((_, '.'))) {
        let after = chars.get(j + 1).map(|&(_, c)| c);
        let take = match after {
            Some(c) if c.is_ascii_digit() => true,
            Some('.') => false,
            Some(c) if is_ident_start(c) => false,
            _ => true, // `1.` at end of expression
        };
        if take {
            j += 1;
            while j < chars.len() && (chars[j].1.is_ascii_digit() || chars[j].1 == '_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if matches!(chars.get(j), Some((_, 'e' | 'E'))) {
        let mut k = j + 1;
        if matches!(chars.get(k), Some((_, '+' | '-'))) {
            k += 1;
        }
        if matches!(chars.get(k), Some((_, c)) if c.is_ascii_digit()) {
            j = k;
            while j < chars.len() && (chars[j].1.is_ascii_digit() || chars[j].1 == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, …).
    while j < chars.len() && is_ident_continue(chars[j].1) {
        j += 1;
    }
    j
}

/// Structural overlays over a token stream: brace depth, `#[cfg(test)]`
/// membership, and the innermost enclosing `fn` name — all the context
/// the scoped rules in [`crate::rules`] need.
#[derive(Clone, Debug)]
pub struct Regions {
    /// Per token: inside a `#[cfg(test)]` item (attribute tokens
    /// included, matching the legacy scanner's line semantics)?
    pub in_test: Vec<bool>,
    /// Per token: index into [`Regions::fn_names`] of the innermost
    /// enclosing function, if any.
    pub fn_of: Vec<Option<usize>>,
    /// Names of the functions referenced by [`Regions::fn_of`].
    pub fn_names: Vec<String>,
}

/// Computes [`Regions`] for a token stream (comments are transparent).
pub fn regions(toks: &[Tok]) -> Regions {
    let mut in_test = vec![false; toks.len()];
    let mut fn_of = vec![None; toks.len()];
    let mut fn_names: Vec<String> = Vec::new();
    let mut fn_stack: Vec<(usize, i64)> = Vec::new(); // (name idx, depth at `{`)
    let mut depth: i64 = 0;
    let mut inner: i64 = 0; // paren/bracket nesting, so `[u8; 4]` ≠ item end
    let mut test_end_depth: Option<i64> = None;
    let mut pending_test: Option<usize> = None; // token idx of the `#`
    let mut pending_fn: Option<usize> = None; // name idx awaiting `{`

    // Significant (non-comment) tokens drive the state machine.
    let sig: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let is = |si: Option<&usize>, kind: TokKind, text: &str| -> bool {
        si.is_some_and(|&i| toks[i].kind == kind && toks[i].text == text)
    };

    for (s, &ti) in sig.iter().enumerate() {
        let tok = &toks[ti];
        // Mark membership first (attribute + signature tokens included).
        if test_end_depth.is_some() || pending_test.is_some() {
            in_test[ti] = true;
        }
        if let Some((name_idx, _)) = fn_stack.last() {
            fn_of[ti] = Some(*name_idx);
        }

        match (tok.kind, tok.text.as_str()) {
            (TokKind::Punct, "#")
                if test_end_depth.is_none()
                    && pending_test.is_none()
                    && is(sig.get(s + 1), TokKind::Punct, "[")
                    && is(sig.get(s + 2), TokKind::Ident, "cfg")
                    && is(sig.get(s + 3), TokKind::Punct, "(")
                    && is(sig.get(s + 4), TokKind::Ident, "test")
                    && is(sig.get(s + 5), TokKind::Punct, ")")
                    && is(sig.get(s + 6), TokKind::Punct, "]") =>
            {
                pending_test = Some(ti);
                in_test[ti] = true;
            }
            (TokKind::Ident, "fn")
                if sig
                    .get(s + 1)
                    .is_some_and(|&n| toks[n].kind == TokKind::Ident) =>
            {
                let name = toks[sig[s + 1]].text.clone();
                fn_names.push(name);
                pending_fn = Some(fn_names.len() - 1);
            }
            (TokKind::Punct, "{") => {
                if pending_test.is_some() && test_end_depth.is_none() {
                    test_end_depth = Some(depth);
                    pending_test = None;
                }
                if let Some(name_idx) = pending_fn.take() {
                    fn_stack.push((name_idx, depth));
                }
                depth += 1;
            }
            (TokKind::Punct, "}") => {
                depth -= 1;
                if let Some(end) = test_end_depth {
                    if depth <= end {
                        test_end_depth = None;
                    }
                }
                while fn_stack.last().is_some_and(|&(_, fd)| depth <= fd) {
                    fn_stack.pop();
                }
            }
            (TokKind::Punct, "(" | "[") => inner += 1,
            (TokKind::Punct, ")" | "]") => inner -= 1,
            (TokKind::Punct, ";") if inner == 0 => {
                // Braceless item ends any pending attribute/fn signature.
                if test_end_depth.is_none() {
                    pending_test = None;
                }
                pending_fn = None;
            }
            _ => {}
        }
    }

    Regions {
        in_test,
        fn_of,
        fn_names,
    }
}

/// Reconstructs the legacy sanitizer's view from the token stream: one
/// string per source line with comments removed, string literals blanked
/// to `""` (literal prefixes like `r#` preserved around the quotes), and
/// char literals blanked to `' '`.
pub fn sanitize_lines(text: &str, lexed: &Lexed) -> Vec<String> {
    let mut out = String::with_capacity(text.len());
    let mut cursor = 0usize;
    for tok in &lexed.toks {
        match tok.kind {
            TokKind::Str | TokKind::Char | TokKind::LineComment | TokKind::BlockComment => {
                out.push_str(&text[cursor..tok.lo]);
                match tok.kind {
                    TokKind::Str => {
                        let first = tok.text.find('"').unwrap_or(0);
                        let last = tok.text.rfind('"').unwrap_or(tok.text.len() - 1);
                        out.push_str(&tok.text[..first]);
                        out.push_str("\"\"");
                        if last > first {
                            out.push_str(&tok.text[last + 1..]);
                        }
                    }
                    TokKind::Char => {
                        let first = tok.text.find('\'').unwrap_or(0);
                        out.push_str(&tok.text[..first]);
                        out.push_str("' '");
                    }
                    _ => {
                        // Comments vanish; keep interior newlines so line
                        // numbering survives multi-line block comments.
                        out.extend(tok.text.chars().filter(|&c| c == '\n'));
                    }
                }
                cursor = tok.hi;
            }
            _ => {}
        }
    }
    out.push_str(&text[cursor..]);
    out.lines().map(str::to_owned).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokKind, String)> {
        lex(text)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_ops() {
        let got = kinds("a::b != c");
        assert_eq!(
            got,
            vec![
                (TokKind::Ident, "a".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "b".into()),
                (TokKind::Punct, "!=".into()),
                (TokKind::Ident, "c".into()),
            ]
        );
    }

    #[test]
    fn strings_and_chars_are_single_tokens() {
        let got = kinds(r##"f("a\"b", 'x', b'\n', r#"raw"#)"##);
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert!(texts.contains(&"\"a\\\"b\""));
        assert!(texts.contains(&"'x'"));
        assert!(texts.contains(&"b'\\n'"));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.starts_with("r#")));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let got = kinds("fn f<'a>(x: &'a str) {}");
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(!got.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn numbers_floats_and_ranges() {
        assert_eq!(
            kinds("1.5 0..n 0x1F 2f64 1e-3"),
            vec![
                (TokKind::Num, "1.5".into()),
                (TokKind::Num, "0".into()),
                (TokKind::Punct, "..".into()),
                (TokKind::Ident, "n".into()),
                (TokKind::Num, "0x1F".into()),
                (TokKind::Num, "2f64".into()),
                (TokKind::Num, "1e-3".into()),
            ]
        );
    }

    #[test]
    fn comments_keep_text_and_lines() {
        let lexed = lex("x // trailing\n/* block\nspans */ y");
        let comments: Vec<&Tok> = lexed
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].text, "// trailing");
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
        let y = lexed.toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn sanitize_matches_expectations() {
        let text = "let s = \"thread_rng\"; // note\nlet c = 'x';\n";
        let lexed = lex(text);
        let lines = sanitize_lines(text, &lexed);
        assert_eq!(lines[0], "let s = \"\"; ");
        assert_eq!(lines[1], "let c = ' ';");
    }

    #[test]
    fn regions_track_cfg_test() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(text);
        let r = regions(&lexed.toks);
        let tok_named = |name: &str| {
            lexed
                .toks
                .iter()
                .position(|t| t.text == name)
                .unwrap_or_else(|| panic!("{name} not found"))
        };
        assert!(!r.in_test[tok_named("lib")]);
        assert!(r.in_test[tok_named("tests")]);
        assert!(r.in_test[tok_named("t")]);
        assert!(!r.in_test[tok_named("after")]);
    }

    #[test]
    fn regions_track_fn_names_through_closures() {
        let text = "fn step(xs: &[u64]) {\n    let f = |i| xs[i];\n}\nfn other() {}\n";
        let lexed = lex(text);
        let r = regions(&lexed.toks);
        let idx = lexed.toks.iter().position(|t| t.text == "i").unwrap();
        assert_eq!(r.fn_of[idx].map(|k| r.fn_names[k].as_str()), Some("step"));
        let other = lexed.toks.iter().position(|t| t.text == "other").unwrap();
        assert_eq!(r.fn_of[other], None, "fn name token precedes the body");
    }

    #[test]
    fn braceless_cfg_test_does_not_open_region() {
        let text = "#[cfg(test)]\nuse helper::x;\nfn f() { y.unwrap(); }\n";
        let lexed = lex(text);
        let r = regions(&lexed.toks);
        let unwrap_idx = lexed.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!r.in_test[unwrap_idx]);
    }

    #[test]
    fn lexer_never_panics_on_junk() {
        for text in ["\"unterminated", "'", "/* open", "r#\"open", "'\\", "b'"] {
            let _ = lex(text);
        }
    }

    #[test]
    fn line_numbers_survive_string_continuations() {
        // A `\` at end-of-line inside a string escapes the newline; the
        // line counter must still advance (regression: findings after a
        // continuation string were reported two lines early).
        let text = "let s = \"a\\\n   b\\\n   c\";\nlet t = x as u32;\n";
        let lexed = lex(text);
        for t in &lexed.toks {
            let actual = text[..t.lo].bytes().filter(|&b| b == b'\n').count() + 1;
            assert_eq!(t.line, actual, "token {:?}", t.text);
        }
        assert!(!lexed.legacy_comparable, "legacy misparses continuations");
    }
}
