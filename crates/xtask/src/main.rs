//! `cargo xtask` — workspace task runner.
//!
//! Currently one task: `check`, the determinism/robustness lint pass
//! described in the library docs ([`xtask`]). File selection lives here so
//! the scanner itself stays a pure, fixture-testable function.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::rules::{CRATE_HEADERS, HOT_PATH_RULES, SNAPSHOT_PATH_RULES};
use xtask::{scan_source_with, FileClass, Finding, Rule};

/// Library crates held to the full rule set: these implement the protocol
/// (Theorems 4/5) and the experiment engine, where determinism is a
/// correctness requirement, not a style preference.
const LIB_CRATES: &[&str] = &[
    "crates/core",
    "crates/engine",
    "crates/linalg",
    "crates/stats",
    "crates/baselines",
    "crates/sweep",
];

/// Crate roots only held to the header rule (`#![forbid(unsafe_code)]`,
/// `#![warn(missing_docs)]`): binaries and the facade legitimately print
/// and unwrap at the top level.
const HEADER_ONLY_ROOTS: &[&str] = &[
    "crates/bench/src/lib.rs",
    "crates/cli/src/lib.rs",
    "crates/xtask/src/lib.rs",
    "src/lib.rs",
];

/// Crates additionally held to [`HOT_PATH_RULES`]: code here runs inside a
/// `World` round, where a hand-built sequential `StdRng` would break the
/// thread-count-invariance contract.
const HOT_PATH_CRATES: &[&str] = &["crates/engine", "crates/core"];

/// Whether a source file gets the hot-path rule set: anything in a
/// hot-path crate except the stream-derivation modules themselves.
fn is_hot_path(krate: &str, file: &Path) -> bool {
    HOT_PATH_CRATES.contains(&krate) && file.file_name().is_none_or(|n| n != "streams.rs")
}

/// Files additionally held to [`SNAPSHOT_PATH_RULES`]: the encode paths
/// behind `np-snap/v1` and `np-manifest/v1`, whose output bytes the
/// resume contract compares across interrupted/resumed/re-threaded runs.
const SNAPSHOT_PATH_FILES: &[&str] = &[
    "crates/engine/src/snapshot.rs",
    "crates/engine/src/world.rs",
    "crates/sweep/src/manifest.rs",
    "crates/sweep/src/spec.rs",
];

/// Whether a source file is part of a byte-stable encode path.
fn is_snapshot_path(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    SNAPSHOT_PATH_FILES.iter().any(|p| rel == Path::new(p))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(),
        Some("list-rules") => {
            for name in xtask::rules::all_rule_names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: cargo xtask <check|list-rules>");
            eprintln!();
            eprintln!("  check       run the determinism/robustness lints over library crates");
            eprintln!("  list-rules  print every rule name accepted by `// xtask-allow: <rule>`");
            ExitCode::from(2)
        }
    }
}

fn run_check() -> ExitCode {
    let root = workspace_root();
    let mut files_scanned = 0usize;
    let mut all: Vec<(PathBuf, Finding)> = Vec::new();

    for krate in LIB_CRATES {
        let src = root.join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files);
        files.sort();
        for file in files {
            let class = if file.file_name().is_some_and(|n| n == "lib.rs") {
                FileClass::LibraryRoot
            } else {
                FileClass::LibrarySource
            };
            let mut extra: Vec<Rule> = Vec::new();
            if is_hot_path(krate, &file) {
                extra.extend_from_slice(HOT_PATH_RULES);
            }
            if is_snapshot_path(&root, &file) {
                extra.extend_from_slice(SNAPSHOT_PATH_RULES);
            }
            for finding in scan_file(&file, class, &extra) {
                all.push((file.clone(), finding));
            }
            files_scanned += 1;
        }
    }

    for rel in HEADER_ONLY_ROOTS {
        let file = root.join(rel);
        let headers_only = scan_file(&file, FileClass::LibraryRoot, &[])
            .into_iter()
            .filter(|f| f.rule == CRATE_HEADERS);
        for finding in headers_only {
            all.push((file.clone(), finding));
        }
        files_scanned += 1;
    }

    if all.is_empty() {
        println!("xtask check: {files_scanned} files clean");
        return ExitCode::SUCCESS;
    }

    for (path, finding) in &all {
        let shown = path.strip_prefix(&root).unwrap_or(path);
        println!(
            "{}:{}: [{}] {}\n    {}",
            shown.display(),
            finding.line,
            finding.rule,
            finding.message,
            finding.excerpt
        );
    }
    println!(
        "xtask check: {} finding(s) in {files_scanned} files \
         (suppress intentional ones with `// xtask-allow: <rule>`)",
        all.len()
    );
    ExitCode::FAILURE
}

fn scan_file(path: &Path, class: FileClass, extra: &[xtask::Rule]) -> Vec<Finding> {
    match std::fs::read_to_string(path) {
        Ok(text) => scan_source_with(class, &text, extra),
        Err(err) => {
            // A missing/unreadable source file is itself a finding: the
            // gate must not silently shrink its coverage.
            vec![Finding {
                rule: "io",
                line: 0,
                excerpt: format!("{}: {err}", path.display()),
                message: "could not read source file",
            }]
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}
