//! Workspace lint driver: `cargo xtask <command>`.
//!
//! The driver is thin on purpose — *which rule applies where* lives in the
//! declarative [`xtask::rules::SCOPES`] table, and *how rules match* lives
//! in [`xtask::scanner`]. This file only walks the scope table, reads
//! files, and renders/exits.
//!
//! Commands:
//!
//! - `lint [--format json|text] [--baseline FILE] [--list]` — run every
//!   scoped rule set over the workspace. Bare `lint` fails on `deny`
//!   findings; with `--baseline` it fails on any finding (deny *or* warn)
//!   not present in the baseline np-lint/v1 report.
//! - `check` — alias for `lint` (the pre-np-lint/v1 spelling, kept for
//!   muscle memory and old scripts).
//! - `check-artifacts [paths...]` — validate committed JSON artifacts
//!   against their v1 schemas (defaults to the four `BENCH_*.json`).
//! - `list-rules` — alias for `lint --list`.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::artifacts;
use xtask::report::{self, Entry};
use xtask::rules::{
    all_rule_names, rule_by_name, scopes_of, Severity, HEADER_ONLY_ROOTS, HEADER_RULES, IO_RULE,
    SCOPES,
};
use xtask::scanner::{analyze_source, FileClass, Finding, RuleSet};

/// The committed artifacts `check-artifacts` validates by default.
const DEFAULT_ARTIFACTS: &[&str] = &[
    "BENCH_scale.json",
    "BENCH_throughput.json",
    "BENCH_fault_recovery.json",
    "BENCH_topology.json",
    "BENCH_cluster.json",
];

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--format json|text] [--baseline FILE] [--list]
        run the scoped determinism/robustness rules over the workspace;
        --format json emits the byte-stable np-lint/v1 JSONL report;
        --baseline FILE fails on any finding absent from FILE (an earlier
        np-lint/v1 report; an empty file is the empty baseline);
        --list prints the rule catalog and scope table instead of scanning
  check
        alias for `lint`
  check-artifacts [paths...]
        validate JSON artifacts against their v1 schemas
        (default: BENCH_scale.json BENCH_throughput.json BENCH_fault_recovery.json
         BENCH_topology.json BENCH_cluster.json)
  list-rules
        alias for `lint --list`
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint" | "check") => run_lint(&args[1..]),
        Some("check-artifacts") => run_check_artifacts(&args[1..]),
        Some("list-rules") => {
            print_rule_list();
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

enum Format {
    Text,
    Json,
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                print_rule_list();
                return ExitCode::SUCCESS;
            }
            "--format" => match iter.next().map(String::as_str) {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!("xtask lint: --format expects `json` or `text`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match iter.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("xtask lint: --baseline expects a file path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask lint: unknown argument {other:?}");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();
    let plan = build_plan(&root);
    let files_scanned = plan.len();
    let mut entries: Vec<Entry> = Vec::new();
    for (rel, sets) in &plan {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(text) => {
                let class = if rel.ends_with("src/lib.rs") {
                    FileClass::LibraryRoot
                } else {
                    FileClass::LibrarySource
                };
                for finding in analyze_source(class, &text, sets) {
                    entries.push((rel.clone(), finding));
                }
            }
            // An unreadable source file is a deny finding, not a skip: a
            // gate that silently shrinks its coverage is worse than one
            // that fails loudly.
            Err(err) => entries.push((
                rel.clone(),
                Finding {
                    rule: IO_RULE,
                    severity: Severity::Deny,
                    scope: "(driver)",
                    line: 0,
                    excerpt: format!("{rel}: {err}"),
                    message: "could not read source file",
                },
            )),
        }
    }
    report::sort_entries(&mut entries);

    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match report::parse_baseline(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("xtask lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(err) => {
                eprintln!("xtask lint: cannot read baseline {}: {err}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    match format {
        Format::Json => print!("{}", report::render_jsonl(&entries, files_scanned)),
        Format::Text => print!("{}", report::render_text(&entries, files_scanned)),
    }

    let failed = match &baseline {
        // Against a baseline, *any* new finding (warn included) fails:
        // the baseline gate exists so CI never lets the report grow.
        Some(baseline) => {
            let fresh = report::new_since(&entries, baseline);
            if !fresh.is_empty() {
                eprintln!(
                    "xtask lint: {} finding(s) not in baseline {}",
                    fresh.len(),
                    baseline_path.as_deref().unwrap_or(Path::new("?")).display()
                );
            }
            !fresh.is_empty()
        }
        None => entries.iter().any(|(_, f)| f.severity == Severity::Deny),
    };
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Maps every in-scope workspace-relative file to the rule sets that
/// apply to it, walking [`SCOPES`] plus the header-only crate roots.
/// `BTreeMap` keeps the scan order independent of directory-walk order.
fn build_plan(root: &Path) -> BTreeMap<String, Vec<RuleSet>> {
    let mut plan: BTreeMap<String, Vec<RuleSet>> = BTreeMap::new();
    for scope in SCOPES {
        let set = if scope.fns.is_empty() {
            RuleSet::new(scope.name, scope.rules)
        } else {
            RuleSet::in_fns(scope.name, scope.rules, scope.fns)
        };
        for krate in scope.crates {
            for path in collect_rs_files(&root.join(krate).join("src")) {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if scope.exclude_files.contains(&name) {
                    continue;
                }
                plan.entry(relative(root, &path)).or_default().push(set);
            }
        }
        for file in scope.files {
            plan.entry((*file).to_owned()).or_default().push(set);
        }
    }
    for file in HEADER_ONLY_ROOTS {
        plan.entry((*file).to_owned())
            .or_default()
            .push(RuleSet::new("headers", HEADER_RULES));
    }
    plan
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut children: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for path in children {
        if path.is_dir() {
            out.extend(collect_rs_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn run_check_artifacts(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let paths: Vec<PathBuf> = if args.is_empty() {
        DEFAULT_ARTIFACTS.iter().map(|p| root.join(p)).collect()
    } else {
        args.iter()
            .map(|p| {
                let path = PathBuf::from(p);
                if path.is_absolute() {
                    path
                } else {
                    root.join(path)
                }
            })
            .collect()
    };
    let mut failed = false;
    for path in &paths {
        let shown = relative(&root, path);
        match std::fs::read_to_string(path) {
            Ok(text) => match artifacts::validate_text(&text) {
                Ok(what) => println!("ok: {shown}: {what}"),
                Err(errs) => {
                    failed = true;
                    println!("FAIL: {shown}: {} problem(s)", errs.len());
                    for err in errs {
                        println!("    {err}");
                    }
                }
            },
            Err(err) => {
                failed = true;
                println!("FAIL: {shown}: {err}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the rule catalog and scope table (also the source of the
/// README's rule table).
fn print_rule_list() {
    println!("rule               severity  scopes");
    println!("-----------------  --------  ------------------------------");
    for name in all_rule_names() {
        let rule = rule_by_name(name).expect("catalogued rule");
        println!(
            "{:<17}  {:<8}  {}",
            rule.name,
            rule.severity.name(),
            scopes_of(name).join(", ")
        );
        let message: Vec<&str> = rule.message.split_whitespace().collect();
        println!("    {}", message.join(" "));
    }
    println!();
    println!("scope table (cargo xtask lint scans exactly these):");
    for scope in SCOPES {
        let mut targets: Vec<String> = scope
            .crates
            .iter()
            .map(|c| format!("{c}/src/**/*.rs"))
            .collect();
        targets.extend(scope.files.iter().map(|f| (*f).to_owned()));
        let mut line = format!("  {:<15}  {}", scope.name, targets.join(", "));
        if !scope.exclude_files.is_empty() {
            line.push_str(&format!("  (minus {})", scope.exclude_files.join(", ")));
        }
        if !scope.fns.is_empty() {
            line.push_str(&format!("  (only fn {})", scope.fns.join(", ")));
        }
        println!("{line}");
        println!("      {}", scope.doc);
    }
    println!("  {:<15}  {}", "headers", HEADER_ONLY_ROOTS.join(", "));
    println!("      binary/facade crate roots are held to the header rule only");
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}
