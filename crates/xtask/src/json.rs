//! A minimal hand-rolled JSON reader for artifact validation.
//!
//! Same zero-dependency policy as the rest of the workspace: the np-snap,
//! np-manifest and np-bench writers are all hand-rolled, so their
//! validator parses with the same ~200 lines instead of pulling in serde.
//! Numbers keep their *raw text* ([`Json::Num`]) — `u64` seeds round-trip
//! exactly and a validator can distinguish `1` from `1.0` if it cares —
//! mirroring the embedded reader in `np_sweep::manifest`.

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, raw source text preserved.
    Num(String),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved as written.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed). Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(text, bytes, pos),
        Some(b'[') => parse_arr(text, bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(text, bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("bad number at byte {start}"));
    }
    if matches!(bytes.get(*pos), Some(b'.')) {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(Json::Num(text[start..*pos].to_owned()))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("unterminated string at byte {start}")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = text
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate halves decode to the replacement char;
                        // the validator only needs structure, not lossless
                        // supplementary-plane text.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte in string at {}", *pos));
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let ch = text[*pos..].chars().next().expect("in-bounds char");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(text, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // `{`
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b'"')) {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(text, bytes, pos)?;
        skip_ws(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b':')) {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(text, bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Escapes a string into a JSON literal (with quotes) — the same escape
/// set the workspace's writers use, so reports round-trip byte-stably.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -1.5e3 ").unwrap(), Json::Num("-1.5e3".into()));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn numbers_keep_raw_text() {
        // u64::MAX survives (an f64 round-trip would corrupt it).
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_data_and_junk() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{,}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("01abc").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let lit = escape(s);
        assert_eq!(parse(&lit).unwrap(), Json::Str(s.into()));
    }
}
