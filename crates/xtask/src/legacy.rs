//! The retired line-and-needle scanner, preserved as a *test oracle*.
//!
//! Nothing in the lint driver calls this module. It exists so the test
//! suite can (a) pin the new lexer's string/comment stripping against the
//! old sanitizer over the whole workspace corpus (see
//! `tests/lexer_corpus.rs`), and (b) prove — not just claim — that the
//! grouped-import and renamed-import regression fixtures dodge the old
//! needle scanner while firing under the token analyzer.
//!
//! The code below is the legacy implementation verbatim (sanitizer,
//! directive parser, and the needle tables for the rules whose false
//! negatives motivated the rewrite). Do not "improve" it: its value is
//! being exactly as blind as it used to be.

/// A line split into sanitized code (strings/chars blanked) and the body
/// of its `//` comment, if any.
#[derive(Debug)]
pub struct SplitLine {
    /// The code portion with string/char literals blanked.
    pub code: String,
    /// The `//` comment text (including the slashes), if any.
    pub comment: String,
}

/// The legacy `protocol-instant` needles. `use std::time::{.., Instant}`
/// and `use std::time::Instant as Clock` never contain this substring on
/// the line that names or uses `Instant` — the documented false negative.
pub const PROTOCOL_INSTANT_NEEDLES: &[&str] = &["time::Instant"];

/// The legacy `wall-clock` needles; `Clock::now()` behind a rename
/// contains neither.
pub const WALL_CLOCK_NEEDLES: &[&str] = &["SystemTime::now", "Instant::now"];

/// Sanitizes every line of a file the way the old scanner did: strings
/// blanked to `""`, chars to `' '`, `//` comments split off, `/* */`
/// comments removed with state carried across lines.
pub fn sanitize_file(text: &str) -> Vec<String> {
    let mut in_block_comment = false;
    text.lines()
        .map(|line| sanitize(line, &mut in_block_comment).code)
        .collect()
}

/// The legacy needle scan: returns the 1-based lines whose sanitized code
/// contains any of `needles`. No test-region or allow handling — this is
/// the raw substring matcher the fixtures must provably dodge.
pub fn needle_lines(text: &str, needles: &[&str]) -> Vec<usize> {
    sanitize_file(text)
        .iter()
        .enumerate()
        .filter(|(_, code)| needles.iter().any(|n| code.contains(n)))
        .map(|(idx, _)| idx + 1)
        .collect()
}

/// Parses `xtask-allow: a, b` directives out of a comment body (legacy
/// behavior, kept for parity tests against the new directive parser).
pub fn parse_allows(comment: &str) -> Vec<String> {
    let Some(pos) = comment.find("xtask-allow:") else {
        return Vec::new();
    };
    comment[pos + "xtask-allow:".len()..]
        .split(',')
        .map(|part| {
            // Keep the leading rule-name token; anything after it (e.g. a
            // parenthesized justification) is free-form commentary.
            let trimmed = part.trim();
            let end = trimmed
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                .unwrap_or(trimmed.len());
            trimmed[..end].to_owned()
        })
        .filter(|name| !name.is_empty())
        .collect()
}

/// Blanks string/char literals, splits off `//` comments, and tracks
/// `/* */` block comments across lines — the legacy sanitizer, verbatim.
pub fn sanitize(line: &str, in_block_comment: &mut bool) -> SplitLine {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if *in_block_comment {
            if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                comment = chars[i..].iter().collect();
                break;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                // Skip the string literal's body (escapes handled; raw
                // strings degrade to best-effort).
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                code.push('"');
                code.push('"');
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // chars; a lifetime never has a closing quote.
                let close = if chars.get(i + 1) == Some(&'\\') {
                    chars.get(i + 3) == Some(&'\'')
                } else {
                    chars.get(i + 2) == Some(&'\'')
                };
                if close {
                    let skip = if chars.get(i + 1) == Some(&'\\') {
                        4
                    } else {
                        3
                    };
                    code.push_str("' '");
                    i += skip;
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    SplitLine { code, comment }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_blanks_strings_and_chars() {
        let mut blk = false;
        let s = sanitize("let s = \"thread_rng\"; let c = 'x'; // note", &mut blk);
        assert_eq!(s.code, "let s = \"\"; let c = ' '; ");
        assert_eq!(s.comment, "// note");
    }

    #[test]
    fn needle_scan_misses_grouped_imports() {
        // The documented false negative this module exists to demonstrate.
        let text = "use std::time::{Duration, Instant};\n";
        assert!(needle_lines(text, PROTOCOL_INSTANT_NEEDLES).is_empty());
    }

    #[test]
    fn needle_scan_catches_spelled_out_import() {
        let text = "use std::time::Instant;\n";
        assert_eq!(needle_lines(text, PROTOCOL_INSTANT_NEEDLES), vec![1]);
    }

    #[test]
    fn directive_parsing_handles_lists() {
        let allows = parse_allows("// xtask-allow: unwrap, float-eq (sentinel)");
        assert_eq!(allows, vec!["unwrap".to_owned(), "float-eq".to_owned()]);
    }
}
