//! The lint rule catalog.
//!
//! Every rule has a stable kebab-case name — the same name the
//! `// xtask-allow: <rule>` escape hatch and the fixture self-tests use.
//! Token rules match against comment- and string-stripped source text and
//! never fire inside `#[cfg(test)]` regions (tests legitimately unwrap,
//! use `HashSet` for membership checks, and so on).

/// A token-matching lint rule.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Stable rule name, as used by `xtask-allow` directives.
    pub name: &'static str,
    /// Substrings that trigger the rule in sanitized (string/comment
    /// stripped) non-test code.
    pub needles: &'static [&'static str],
    /// One-line rationale shown with each finding.
    pub message: &'static str,
}

/// Name of the crate-header rule (not token-based; see
/// [`crate::scanner::scan_source`]).
pub const CRATE_HEADERS: &str = "crate-headers";

/// Name of the float-equality rule (structural, not a plain token match).
pub const FLOAT_EQ: &str = "float-eq";

/// The token rules applied to library-crate sources.
pub const RULES: &[Rule] = &[
    Rule {
        name: "ambient-randomness",
        needles: &["thread_rng", "rand::random", "from_entropy", "OsRng"],
        message: "ambient randomness breaks seed-reproducibility; take an explicit \
                  seeded StdRng (run_batch results must depend only on (seeds, runs, job))",
    },
    Rule {
        name: "wall-clock",
        needles: &["SystemTime::now", "Instant::now"],
        message: "wall-clock reads make runs time-dependent; protocol and engine code \
                  must be a pure function of the seed (time experiments in np-bench instead)",
    },
    Rule {
        name: "hash-iteration",
        needles: &["HashMap", "HashSet"],
        message: "HashMap/HashSet iteration order is nondeterministic across runs; \
                  use BTreeMap/BTreeSet or a sorted Vec in library code",
    },
    Rule {
        name: "unwrap",
        needles: &[".unwrap()", ".expect("],
        message: "unwrap/expect in library code turns recoverable errors into panics \
                  inside experiment workers; propagate a typed error instead",
    },
    Rule {
        name: "debug-print",
        needles: &["println!(", "eprintln!(", "dbg!("],
        message: "library crates must not write to stdio; return data and let np-cli \
                  or np-bench do the printing",
    },
];

/// Extra token rules for the *hot path*: the crates whose code runs
/// inside a `World` round (`crates/engine`, `crates/core`), excluding the
/// stream-derivation modules themselves (`streams.rs`), which are the one
/// sanctioned place a `StdRng` may be built.
pub const HOT_PATH_RULES: &[Rule] = &[
    Rule {
        name: "raw-stdrng",
        needles: &[
            "StdRng::seed_from_u64",
            "StdRng::from_seed",
            "StdRng::from_rng",
        ],
        message: "hot-path code must derive randomness from (seed, round, agent, stage) \
                  streams (RoundStreams / np_stats::streams), never build a StdRng by hand \
                  — a sequential stream reintroduces thread-count-dependent trajectories",
    },
    Rule {
        // Catches `use std::time::Instant;` and fully-qualified mentions.
        // (Grouped imports like `use std::time::{..., Instant}` would dodge
        // the needle; engine code therefore spells the import out — the one
        // sanctioned site, metrics::StageClock, carries allow directives.)
        name: "protocol-instant",
        needles: &["time::Instant"],
        message: "protocol update paths must not name std::time::Instant: timing belongs \
                  in the observer layer (np_engine::metrics::StageClock) or np-bench, \
                  never inside display/update code where it could leak into trajectories",
    },
];

/// Extra token rules for *byte-stable encode paths*: the files that
/// produce `np-snap/v1` snapshot bytes and `np-manifest/v1` manifest
/// lines (see `SNAPSHOT_PATH_FILES` in `src/main.rs`). The resume
/// contract byte-compares those artifacts across interrupted, resumed
/// and re-threaded runs, so the bytes must be a pure function of logical
/// state. Here even *naming* a clock or hashed-container type is a
/// finding — stricter than the base rules, which only catch clock reads
/// (`Instant::now`) and container construction.
pub const SNAPSHOT_PATH_RULES: &[Rule] = &[Rule {
    name: "snapshot-bytes",
    needles: &["HashMap", "HashSet", "SystemTime", "Instant"],
    message: "snapshot/manifest encode paths must emit bytes that are a pure function \
              of logical state; hashed-container iteration order and wall clocks both \
              leak nondeterminism into artifacts the resume contract byte-compares",
}];

/// Returns the token rule with the given name, if any.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES
        .iter()
        .chain(HOT_PATH_RULES)
        .chain(SNAPSHOT_PATH_RULES)
        .find(|r| r.name == name)
}

/// All rule names, token and structural, for `--list` style output and
/// directive validation.
pub fn all_rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = RULES
        .iter()
        .chain(HOT_PATH_RULES)
        .chain(SNAPSHOT_PATH_RULES)
        .map(|r| r.name)
        .collect();
    names.push(FLOAT_EQ);
    names.push(CRATE_HEADERS);
    names
}
