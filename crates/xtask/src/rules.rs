//! The lint rule catalog and the declarative scope table.
//!
//! Every rule has a stable kebab-case name — the same name the
//! `// xtask-allow: <rule>` escape hatch, the `np-lint/v1` report, and
//! the fixture self-tests use. Rules are *token-pattern or structural
//! analyses* over the [`crate::lexer`] stream (resolved through the
//! [`crate::resolve`] import graph), so grouped imports
//! (`use std::time::{Duration, Instant}`), renamed imports
//! (`use std::time::Instant as Clock`) and alias indirection all fire —
//! the legacy needle scanner's documented false negatives are regression
//! fixtures now.
//!
//! Which rules apply where is data, not driver code: [`SCOPES`] maps each
//! rule set to the crates, files, and even individual functions it
//! guards. `cargo xtask lint --list` renders this table.

/// How severe a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint pass.
    Deny,
    /// Reported (and diffed against baselines in CI) but does not fail a
    /// bare `cargo xtask lint`.
    Warn,
}

impl Severity {
    /// The report name of the severity.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// How a rule matches the token stream.
#[derive(Clone, Copy, Debug)]
pub enum Matcher {
    /// Fires when a path expression (or `use` declaration), after import
    /// resolution, contains one of these segment sequences contiguously.
    /// Single-segment patterns also match method-position idents.
    Paths(&'static [&'static [&'static str]]),
    /// Fires on `.name(` method calls with one of these names.
    Methods(&'static [&'static str]),
    /// Fires on `name!` macro invocations with one of these names.
    Macros(&'static [&'static str]),
    /// Fires on resolved path expressions *and* macro invocations — for
    /// rules whose offense has two spellings (e.g. `Vec::with_capacity`
    /// and `vec![…]`).
    PathsOrMacros {
        /// Path patterns, as in [`Matcher::Paths`].
        paths: &'static [&'static [&'static str]],
        /// Macro names, as in [`Matcher::Macros`].
        macros: &'static [&'static str],
    },
    /// Structural: `==`/`!=` with a float-typed operand.
    FloatEq,
    /// Structural: a narrowing `as` cast (`as u8`/`u16`/`u32`/`usize`).
    NarrowingCast,
    /// Structural: `panic!`-family macros and `[]` index expressions.
    PanicPath,
    /// Structural: library crate roots must carry the safety headers.
    CrateHeaders,
}

/// One lint rule: a stable name, a severity, a matcher, and a one-line
/// rationale shown with each finding.
#[derive(Clone, Copy, Debug)]
pub struct RuleDef {
    /// Stable rule name, as used by `xtask-allow` directives.
    pub name: &'static str,
    /// Default severity of findings from this rule.
    pub severity: Severity,
    /// Token/structural matcher.
    pub matcher: Matcher,
    /// One-line rationale shown with each finding.
    pub message: &'static str,
}

/// Name of the crate-header rule.
pub const CRATE_HEADERS: &str = "crate-headers";

/// Name of the float-equality rule.
pub const FLOAT_EQ: &str = "float-eq";

/// Name of the unused-suppression rule (always on, every scanned file).
pub const STALE_ALLOW: &str = "stale-allow";

/// Name of the unreadable-source pseudo-rule (the gate must not silently
/// shrink its coverage).
pub const IO_RULE: &str = "io";

/// The always-on unused-suppression rule: every `// xtask-allow: <rule>`
/// directive must suppress at least one finding, or it is itself a
/// finding — suppressions cannot rot.
pub const STALE_ALLOW_RULE: RuleDef = RuleDef {
    name: STALE_ALLOW,
    severity: Severity::Warn,
    matcher: Matcher::Macros(&[]), // structural; evaluated by the scanner
    message: "this `xtask-allow` directive suppresses nothing; delete it — stale \
              suppressions hide exactly the regressions the rule exists to catch",
};

/// Message for an `xtask-allow` naming a rule that does not exist.
pub const UNKNOWN_ALLOW_MSG: &str =
    "this `xtask-allow` names a rule that does not exist (see `cargo xtask lint --list`); \
     a typo here silently disables nothing";

/// The crate-header rule, shared between [`BASE_RULES`] and the
/// header-only scan of binary crate roots ([`HEADER_RULES`]).
pub const CRATE_HEADERS_RULE: RuleDef = RuleDef {
    name: CRATE_HEADERS,
    severity: Severity::Deny,
    matcher: Matcher::CrateHeaders,
    message: "library crate roots must forbid unsafe code and warn on \
              undocumented public items",
};

/// The lone rule applied to binary crate roots (np-bench, np-cli, xtask):
/// they legitimately print and unwrap, but still carry the headers.
pub const HEADER_RULES: &[RuleDef] = &[CRATE_HEADERS_RULE];

/// The base rules applied to every library-crate source file.
pub const BASE_RULES: &[RuleDef] = &[
    RuleDef {
        name: "ambient-randomness",
        severity: Severity::Deny,
        matcher: Matcher::Paths(&[
            &["thread_rng"],
            &["rand", "random"],
            &["from_entropy"],
            &["OsRng"],
        ]),
        message: "ambient randomness breaks seed-reproducibility; take an explicit \
                  seeded StdRng (run_batch results must depend only on (seeds, runs, job))",
    },
    RuleDef {
        name: "wall-clock",
        severity: Severity::Deny,
        matcher: Matcher::Paths(&[&["SystemTime", "now"], &["Instant", "now"]]),
        message: "wall-clock reads make runs time-dependent; protocol and engine code \
                  must be a pure function of the seed (time experiments in np-bench instead)",
    },
    RuleDef {
        name: "hash-iteration",
        severity: Severity::Deny,
        matcher: Matcher::Paths(&[&["HashMap"], &["HashSet"]]),
        message: "HashMap/HashSet iteration order is nondeterministic across runs; \
                  use BTreeMap/BTreeSet or a sorted Vec in library code",
    },
    RuleDef {
        name: "unwrap",
        severity: Severity::Deny,
        matcher: Matcher::Methods(&["unwrap", "expect"]),
        message: "unwrap/expect in library code turns recoverable errors into panics \
                  inside experiment workers; propagate a typed error instead",
    },
    RuleDef {
        name: "debug-print",
        severity: Severity::Deny,
        matcher: Matcher::Macros(&["println", "eprintln", "dbg"]),
        message: "library crates must not write to stdio; return data and let np-cli \
                  or np-bench do the printing",
    },
    RuleDef {
        name: FLOAT_EQ,
        severity: Severity::Deny,
        matcher: Matcher::FloatEq,
        message: "exact float comparison is almost always a tolerance bug; compare \
                  |a - b| against an epsilon (or xtask-allow an intentional IEEE \
                  sentinel check)",
    },
    CRATE_HEADERS_RULE,
];

/// Extra rules for the *hot path*: crates whose code runs inside a
/// `World` round, where a hand-built sequential `StdRng` would break the
/// thread-count-invariance contract. The stream-derivation modules
/// (`streams.rs`) are the one sanctioned place a `StdRng` may be built.
pub const HOT_PATH_RULES: &[RuleDef] = &[RuleDef {
    name: "raw-stdrng",
    severity: Severity::Deny,
    matcher: Matcher::Paths(&[
        &["StdRng", "seed_from_u64"],
        &["StdRng", "from_seed"],
        &["StdRng", "from_rng"],
    ]),
    message: "hot-path code must derive randomness from (seed, round, agent, stage) \
              streams (RoundStreams / np_stats::streams), never build a StdRng by hand \
              — a sequential stream reintroduces thread-count-dependent trajectories",
}];

/// Extra rules for *protocol update paths*: naming `std::time::Instant`
/// at all is a finding there. The observer layer
/// (`np_engine::metrics::StageClock`) is the sanctioned clock site and is
/// excluded by the scope table, not by per-line allows.
pub const PROTOCOL_CLOCK_RULES: &[RuleDef] = &[RuleDef {
    name: "protocol-instant",
    severity: Severity::Deny,
    matcher: Matcher::Paths(&[&["time", "Instant"]]),
    message: "protocol update paths must not name std::time::Instant: timing belongs \
              in the observer layer (np_engine::metrics::StageClock) or np-bench, \
              never inside display/update code where it could leak into trajectories",
}];

/// Extra rules for *byte-stable encode paths*: the files that produce
/// `np-snap/v1` snapshot bytes and `np-manifest/v1` manifest lines. The
/// resume contract byte-compares those artifacts across interrupted,
/// resumed and re-threaded runs, so the bytes must be a pure function of
/// logical state — here even *naming* a clock or hashed-container type is
/// a finding, and a silently-truncating cast can corrupt artifacts.
pub const SNAPSHOT_PATH_RULES: &[RuleDef] = &[
    RuleDef {
        name: "snapshot-bytes",
        severity: Severity::Deny,
        matcher: Matcher::Paths(&[&["HashMap"], &["HashSet"], &["SystemTime"], &["Instant"]]),
        message: "snapshot/manifest encode paths must emit bytes that are a pure function \
                  of logical state; hashed-container iteration order and wall clocks both \
                  leak nondeterminism into artifacts the resume contract byte-compares",
    },
    RuleDef {
        name: "narrowing-cast",
        severity: Severity::Deny,
        matcher: Matcher::NarrowingCast,
        message: "a narrowing `as` cast in a byte-stable encode path truncates silently; \
                  use a widening `::from` or an explicit `try_from` so a value that no \
                  longer fits corrupts nothing — the artifacts here are byte-compared",
    },
];

/// Extra rules for the *phase kernels*: the per-chunk inner loops
/// (display / observe / update) that run once per agent per round. A
/// hand-built RNG or a fresh `Vec` in those loops turns O(1) per-agent
/// work into seeding and allocator traffic that dominates round
/// throughput — the packed hot path exists to avoid exactly that.
/// Per-*chunk* scratch reused across the agent loop is fine and carries
/// an `xtask-allow` saying so.
pub const PHASE_KERNEL_RULES: &[RuleDef] = &[RuleDef {
    name: "hot-loop-rng-construct",
    severity: Severity::Deny,
    matcher: Matcher::PathsOrMacros {
        paths: &[
            &["StdRng", "seed_from_u64"],
            &["StdRng", "from_seed"],
            &["StdRng", "from_rng"],
            &["StreamRng", "seed_from_u64"],
            &["Vec", "new"],
            &["Vec", "with_capacity"],
        ],
        macros: &["vec"],
    },
    message: "phase-kernel inner loops run once per agent per round: draw from the \
              per-agent (seed, round, agent, stage) streams and write into \
              caller-provided buffers — constructing an RNG or allocating a Vec \
              here turns the packed hot path into seeding/allocator traffic",
}];

/// Extra rules for the *round hot loop*: the chunk-dispatch functions a
/// worker panic would poison. Scoped to individual functions, not files.
pub const HOT_LOOP_RULES: &[RuleDef] = &[RuleDef {
    name: "panic-path",
    severity: Severity::Deny,
    matcher: Matcher::PanicPath,
    message: "the round hot loop must not be able to panic: no panic!/unreachable! and \
              no `[]` indexing — dispatch over chunk iterators (zip) so out-of-range \
              access is unrepresentable instead of a worker-thread abort",
}];

/// Library crates held to the full base rule set: these implement the
/// protocol (Theorems 4/5) and the experiment engine, where determinism
/// is a correctness requirement, not a style preference.
pub const LIB_CRATES: &[&str] = &[
    "crates/core",
    "crates/engine",
    "crates/linalg",
    "crates/stats",
    "crates/baselines",
    "crates/sweep",
    "crates/net",
];

/// Crate roots only held to the header rule: binaries and the facade
/// legitimately print and unwrap at the top level.
pub const HEADER_ONLY_ROOTS: &[&str] = &[
    "crates/bench/src/lib.rs",
    "crates/cli/src/lib.rs",
    "crates/xtask/src/lib.rs",
    "src/lib.rs",
];

/// One row of the scope table: a named rule set plus the crates, files,
/// and functions it applies to.
#[derive(Clone, Copy, Debug)]
pub struct ScopeDef {
    /// Stable scope name (shown in findings and `--list`).
    pub name: &'static str,
    /// Why this scope exists, one line.
    pub doc: &'static str,
    /// Crate directories whose `src/**/*.rs` files are in scope.
    pub crates: &'static [&'static str],
    /// Workspace-relative files additionally in scope.
    pub files: &'static [&'static str],
    /// File *names* excluded from the crate globs (sanctioned modules).
    pub exclude_files: &'static [&'static str],
    /// If non-empty, only code inside these named functions is in scope.
    pub fns: &'static [&'static str],
    /// The rules this scope applies.
    pub rules: &'static [RuleDef],
}

/// The whole declarative scope table — the single source of truth for
/// which rule applies where. `main.rs` walks this; nothing is hardcoded
/// in the driver.
pub const SCOPES: &[ScopeDef] = &[
    ScopeDef {
        name: "library",
        doc: "determinism/robustness base rules for every library crate",
        crates: LIB_CRATES,
        files: &[],
        exclude_files: &[],
        fns: &[],
        rules: BASE_RULES,
    },
    ScopeDef {
        name: "hot-path",
        doc: "code running inside a World round must draw from (seed, round, agent, stage) streams",
        crates: &["crates/engine", "crates/core", "crates/net"],
        files: &[],
        exclude_files: &["streams.rs"],
        fns: &[],
        rules: HOT_PATH_RULES,
    },
    ScopeDef {
        name: "protocol-clock",
        doc: "protocol code must not name Instant; metrics.rs (StageClock) and np_net's clock.rs \
              (the TCP transport's deadline/stopwatch site) are the sanctioned observers",
        crates: &["crates/engine", "crates/core", "crates/net"],
        files: &[],
        exclude_files: &["streams.rs", "metrics.rs", "clock.rs"],
        fns: &[],
        rules: PROTOCOL_CLOCK_RULES,
    },
    ScopeDef {
        name: "snapshot-encode",
        doc: "np-snap/v1 and np-manifest/v1 encode paths emit byte-compared artifacts",
        crates: &[],
        files: &[
            "crates/engine/src/snapshot.rs",
            "crates/engine/src/world.rs",
            "crates/sweep/src/manifest.rs",
            "crates/sweep/src/spec.rs",
        ],
        exclude_files: &[],
        fns: &[],
        rules: SNAPSHOT_PATH_RULES,
    },
    ScopeDef {
        name: "hot-loop",
        doc: "World::step's chunk dispatch must be panic-free",
        crates: &[],
        files: &["crates/engine/src/world.rs"],
        exclude_files: &[],
        fns: &["step"],
        rules: HOT_LOOP_RULES,
    },
    ScopeDef {
        name: "phase-kernel",
        doc: "per-agent kernel loops must not construct RNGs or allocate per agent",
        crates: &[],
        files: &[
            "crates/engine/src/channel.rs",
            "crates/engine/src/protocol.rs",
            "crates/core/src/columnar/sf.rs",
            "crates/core/src/columnar/sf_alt.rs",
            "crates/core/src/columnar/ssf.rs",
            "crates/baselines/src/majority.rs",
        ],
        exclude_files: &[],
        fns: &[
            "fill_exact_chunk",
            "fill_aggregated_chunk",
            "display_chunk",
            "display_chunk_packed",
            "step_chunk",
        ],
        rules: PHASE_KERNEL_RULES,
    },
];

/// Returns the rule with the given name, if any.
pub fn rule_by_name(name: &str) -> Option<&'static RuleDef> {
    if name == STALE_ALLOW {
        return Some(&STALE_ALLOW_RULE);
    }
    SCOPES
        .iter()
        .flat_map(|s| s.rules.iter())
        .find(|r| r.name == name)
}

/// All rule names accepted by `// xtask-allow: <rule>`, sorted and
/// deduplicated.
pub fn all_rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = SCOPES
        .iter()
        .flat_map(|s| s.rules.iter())
        .map(|r| r.name)
        .collect();
    names.push(STALE_ALLOW);
    names.sort_unstable();
    names.dedup();
    names
}

/// The scopes a rule participates in, for `--list` output.
pub fn scopes_of(rule: &str) -> Vec<&'static str> {
    if rule == STALE_ALLOW {
        return vec!["(all scanned files)"];
    }
    SCOPES
        .iter()
        .filter(|s| s.rules.iter().any(|r| r.name == rule))
        .map(|s| s.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_kebab() {
        let names = all_rule_names();
        for name in &names {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{name} is not kebab-case"
            );
        }
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }

    #[test]
    fn every_rule_is_resolvable_by_name() {
        for name in all_rule_names() {
            assert!(rule_by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn net_crate_is_fully_in_scope_with_a_sanctioned_clock() {
        // np_net is held to the same determinism bar as the engine: base
        // rules, hot-path stream addressing, and the protocol-clock ban —
        // with exactly one sanctioned escape hatch, the TCP transport's
        // clock module.
        let by_name = |name: &str| {
            SCOPES
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("scope {name} missing"))
        };
        for name in ["library", "hot-path", "protocol-clock"] {
            assert!(
                by_name(name).crates.contains(&"crates/net"),
                "crates/net missing from {name}"
            );
        }
        assert!(by_name("protocol-clock")
            .exclude_files
            .contains(&"clock.rs"));
        assert!(!by_name("library").exclude_files.contains(&"clock.rs"));
        assert!(!by_name("hot-path").exclude_files.contains(&"clock.rs"));
    }

    #[test]
    fn scope_table_references_real_rule_sets() {
        for scope in SCOPES {
            assert!(!scope.rules.is_empty(), "{} has no rules", scope.name);
            assert!(
                !scope.crates.is_empty() || !scope.files.is_empty(),
                "{} selects no files",
                scope.name
            );
        }
    }
}
