//! `cargo xtask check-artifacts`: static validation of the workspace's
//! committed/emitted JSON artifacts against their v1 schemas.
//!
//! One analyzer binary guards both the source (the lint pass) and the
//! artifacts the source promises to reproduce. Validators are strict on
//! *shape* — exact key sets, fixed order where the writer fixes it, type
//! checks, enum domains — plus the cross-field invariants a schema alone
//! cannot say (`converged == 0` ⟺ `mean_rounds == null`, a
//! `checkpointed` record carries a checkpoint path, report entries are
//! sorted). Anything the hand-rolled writers in `np_bench::report` and
//! `np_sweep::manifest` cannot emit is an error here.
//!
//! Supported schemas: `np-bench/v1`, `np-run-summary/v1`,
//! `np-manifest/v1` (JSONL), `np-lint/v1` (JSONL).

use crate::json::{self, Json};

/// Keys of an np-bench/v1 document, in writer order.
const BENCH_KEYS: &[&str] = &["schema", "bench", "points"];
/// Keys of one np-bench/v1 point, in writer order.
const POINT_KEYS: &[&str] = &[
    "label",
    "n",
    "runs",
    "converged",
    "mean_rounds",
    "mean_wall_ms",
];
/// Optional trailing keys of an np-bench/v1 point: per-seed wall-clock
/// quantiles (emitted only by benches that record one sample per seeded
/// run — both present or both absent), the simulation backend tag
/// (emitted by benches that mix per-agent and mean-field points), and
/// the topology keys (graph degree plus convergence rate, emitted by the
/// graph-restricted benches), and the wire-message count (emitted by the
/// cluster benches, which measure traffic at the transport instead of
/// deriving it as n·h·rounds).
const POINT_OPTIONAL_KEYS: &[&str] = &[
    "median_wall_ms",
    "p95_wall_ms",
    "backend",
    "degree",
    "convergence_rate",
    "messages_total",
];
/// Legal values of a point's `backend` tag.
const POINT_BACKENDS: &[&str] = &["per-agent", "mean-field", "sim-cluster"];
/// Keys of an np-run-summary/v1 document, in writer order (faults only
/// present for fault-injected runs).
const SUMMARY_KEYS: &[&str] = &[
    "schema",
    "protocol",
    "n",
    "h",
    "s0",
    "s1",
    "seed",
    "rounds",
    "consensus",
    "final_correct",
    "final_margin",
    "weak_formed",
    "weak_correct",
];
/// Keys of one fault-recovery record, in writer order.
const FAULT_KEYS: &[&str] = &["round", "label", "recovered_round", "recovery_rounds"];
/// Keys of one np-manifest/v1 job record, in writer order.
const MANIFEST_KEYS: &[&str] = &[
    "schema",
    "job",
    "protocol",
    "n",
    "h",
    "s0",
    "s1",
    "delta",
    "c1",
    "seed",
    "budget",
    "status",
    "checkpoint",
    "round",
    "consensus",
    "correct",
];
/// Keys of one np-lint/v1 report entry, in writer order.
const LINT_KEYS: &[&str] = &[
    "file", "line", "rule", "severity", "scope", "message", "excerpt",
];

/// Validates one artifact file's *text*, sniffing the schema from the
/// first JSON value. Returns a one-line description of what was
/// validated, or every problem found.
pub fn validate_text(text: &str) -> Result<String, Vec<String>> {
    let first_line = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    // A whole-document artifact parses as one value; a JSONL artifact's
    // first line does.
    let head = json::parse(text.trim_end()).or_else(|_| json::parse(first_line));
    let schema = head
        .ok()
        .and_then(|v| v.get("schema").and_then(Json::as_str).map(str::to_owned));
    match schema.as_deref() {
        Some("np-bench/v1") => validate_bench(text),
        Some("np-run-summary/v1") => validate_run_summary(text),
        Some("np-manifest/v1") => validate_manifest(text),
        Some("np-lint/v1") => validate_lint_report(text),
        Some(other) => Err(vec![format!("unknown artifact schema {other:?}")]),
        None => Err(vec!["no schema tag found (not a v1 artifact?)".to_owned()]),
    }
}

/// Validates an `np-bench/v1` perf-trajectory document.
pub fn validate_bench(text: &str) -> Result<String, Vec<String>> {
    let mut errs = Vec::new();
    let doc = match json::parse(text.trim_end()) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("parse: {e}")]),
    };
    check_keys(&doc, BENCH_KEYS, "document", &mut errs);
    expect_str(&doc, "schema", Some("np-bench/v1"), "document", &mut errs);
    expect_str(&doc, "bench", None, "document", &mut errs);
    let mut points_seen = 0usize;
    match doc.get("points").and_then(Json::as_arr) {
        None => errs.push("document: `points` must be an array".to_owned()),
        Some(points) => {
            points_seen = points.len();
            if points.is_empty() {
                errs.push(
                    "document: `points` is empty — a bench with no points measures nothing"
                        .to_owned(),
                );
            }
            for (i, point) in points.iter().enumerate() {
                let at = format!("points[{i}]");
                check_keys_with_optional(point, POINT_KEYS, POINT_OPTIONAL_KEYS, &at, &mut errs);
                expect_str(point, "label", None, &at, &mut errs);
                let n = expect_u64(point, "n", &at, &mut errs);
                let runs = expect_u64(point, "runs", &at, &mut errs);
                let converged = expect_u64(point, "converged", &at, &mut errs);
                expect_finite_num(point, "mean_wall_ms", &at, &mut errs);
                // Wall-clock quantiles: a bench either records per-seed
                // samples (both keys, finite, median ≤ p95) or it doesn't
                // (neither key). One without the other means the writer
                // regressed or the artifact was hand-edited.
                let median = point.get("median_wall_ms").map(|_| ());
                let p95 = point.get("p95_wall_ms").map(|_| ());
                match (median, p95) {
                    (Some(()), Some(())) => {
                        expect_finite_num(point, "median_wall_ms", &at, &mut errs);
                        expect_finite_num(point, "p95_wall_ms", &at, &mut errs);
                        if let (Some(m), Some(p)) = (
                            point.get("median_wall_ms").and_then(Json::as_f64),
                            point.get("p95_wall_ms").and_then(Json::as_f64),
                        ) {
                            if p < m {
                                errs.push(format!(
                                    "{at}: p95_wall_ms ({p}) is below median_wall_ms ({m})"
                                ));
                            }
                        }
                    }
                    (None, None) => {}
                    _ => errs.push(format!(
                        "{at}: median_wall_ms and p95_wall_ms must appear together"
                    )),
                }
                // Backend tag: optional, but when present it must name one
                // of the two engines the writers actually have.
                if let Some(backend) = point.get("backend") {
                    match backend.as_str() {
                        Some(b) if POINT_BACKENDS.contains(&b) => {}
                        Some(other) => {
                            errs.push(format!("{at}: unknown backend {other:?}"));
                        }
                        None => errs.push(format!("{at}: `backend` must be a string")),
                    }
                }
                // Topology keys: the degree is a positive integer, and
                // the convergence rate must be the fraction the point's
                // own counters imply — anything else is a hand-edit.
                if let Some(degree) = point.get("degree") {
                    match degree.as_u64() {
                        Some(d) if d >= 1 => {}
                        Some(0) => errs.push(format!("{at}: `degree` must be at least 1")),
                        _ => errs.push(format!("{at}: `degree` must be a positive integer")),
                    }
                }
                if let Some(rate) = point.get("convergence_rate") {
                    match rate.as_f64() {
                        Some(r) if r.is_finite() && (0.0..=1.0).contains(&r) => {
                            if let (Some(runs), Some(converged)) = (runs, converged) {
                                if runs > 0 && (r - converged as f64 / runs as f64).abs() > 1e-9 {
                                    errs.push(format!(
                                        "{at}: convergence_rate ({r}) ≠ converged/runs \
                                         ({converged}/{runs})"
                                    ));
                                }
                            }
                        }
                        _ => errs.push(format!(
                            "{at}: `convergence_rate` must be a finite number in [0, 1]"
                        )),
                    }
                }
                // Wire-message count: a plain non-negative integer (JSON
                // numbers parse to u64 here, so any non-integer or
                // negative encoding fails the as_u64 probe).
                if let Some(messages) = point.get("messages_total") {
                    if messages.as_u64().is_none() {
                        errs.push(format!(
                            "{at}: `messages_total` must be a non-negative integer"
                        ));
                    }
                }
                if n == Some(0) {
                    errs.push(format!("{at}: `n` must be positive"));
                }
                if let (Some(runs), Some(converged)) = (runs, converged) {
                    if converged > runs {
                        errs.push(format!(
                            "{at}: converged ({converged}) exceeds runs ({runs})"
                        ));
                    }
                }
                // The writer emits null exactly when no run converged; a
                // number paired with converged == 0 (or vice versa) means
                // the artifact was hand-edited or the writer regressed.
                match (point.get("mean_rounds"), converged) {
                    (Some(Json::Null), Some(c)) if c > 0 => {
                        errs.push(format!(
                            "{at}: mean_rounds is null but {c} run(s) converged"
                        ));
                    }
                    (Some(Json::Num(_)), Some(0)) => {
                        errs.push(format!(
                            "{at}: mean_rounds is a number but no run converged"
                        ));
                    }
                    (Some(Json::Null | Json::Num(_)), _) => {}
                    (Some(other), _) => errs.push(format!(
                        "{at}: mean_rounds must be number|null, got {}",
                        other.type_name()
                    )),
                    (None, _) => {} // missing-key error already recorded
                }
            }
        }
    }
    finish(errs, format!("np-bench/v1, {points_seen} point(s)"))
}

/// Validates an `np-run-summary/v1` document.
pub fn validate_run_summary(text: &str) -> Result<String, Vec<String>> {
    let mut errs = Vec::new();
    let doc = match json::parse(text.trim_end()) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("parse: {e}")]),
    };
    // `faults` is a legal trailing key for fault-injected runs.
    let has_faults = doc.get("faults").is_some();
    let mut expected: Vec<&str> = SUMMARY_KEYS.to_vec();
    if has_faults {
        expected.push("faults");
    }
    check_keys(&doc, &expected, "summary", &mut errs);
    expect_str(
        &doc,
        "schema",
        Some("np-run-summary/v1"),
        "summary",
        &mut errs,
    );
    expect_str(&doc, "protocol", None, "summary", &mut errs);
    let n = expect_u64(&doc, "n", "summary", &mut errs);
    let h = expect_u64(&doc, "h", "summary", &mut errs);
    let s0 = expect_u64(&doc, "s0", "summary", &mut errs);
    let s1 = expect_u64(&doc, "s1", "summary", &mut errs);
    expect_u64(&doc, "seed", "summary", &mut errs);
    expect_u64(&doc, "rounds", "summary", &mut errs);
    expect_bool(&doc, "consensus", "summary", &mut errs);
    let final_correct = expect_u64(&doc, "final_correct", "summary", &mut errs);
    expect_num_or_null(&doc, "final_margin", "summary", &mut errs);
    let weak_formed = expect_u64(&doc, "weak_formed", "summary", &mut errs);
    let weak_correct = expect_u64(&doc, "weak_correct", "summary", &mut errs);
    if let (Some(n), Some(h)) = (n, h) {
        if h == 0 || h > n {
            errs.push(format!("summary: h ({h}) must be in 1..=n ({n})"));
        }
    }
    if let (Some(n), Some(s0), Some(s1)) = (n, s0, s1) {
        if s0 + s1 > n {
            errs.push(format!("summary: s0+s1 ({}) exceeds n ({n})", s0 + s1));
        }
    }
    if let (Some(n), Some(c)) = (n, final_correct) {
        if c > n {
            errs.push(format!("summary: final_correct ({c}) exceeds n ({n})"));
        }
    }
    if let (Some(wf), Some(wc)) = (weak_formed, weak_correct) {
        if wc > wf {
            errs.push(format!(
                "summary: weak_correct ({wc}) exceeds weak_formed ({wf})"
            ));
        }
    }
    let mut fault_count = 0usize;
    if has_faults {
        match doc.get("faults").and_then(Json::as_arr) {
            None => errs.push("summary: `faults` must be an array".to_owned()),
            Some(faults) => {
                fault_count = faults.len();
                if faults.is_empty() {
                    errs.push(
                        "summary: empty `faults` array (the writer omits the key entirely \
                         for fault-free runs)"
                            .to_owned(),
                    );
                }
                for (i, fault) in faults.iter().enumerate() {
                    let at = format!("faults[{i}]");
                    check_keys(fault, FAULT_KEYS, &at, &mut errs);
                    let round = expect_u64(fault, "round", &at, &mut errs);
                    expect_str(fault, "label", None, &at, &mut errs);
                    match (fault.get("recovered_round"), fault.get("recovery_rounds")) {
                        (Some(Json::Null), Some(Json::Null)) => {}
                        (Some(Json::Num(_)), Some(Json::Num(_))) => {
                            let rec = fault.get("recovered_round").and_then(Json::as_u64);
                            let dur = fault.get("recovery_rounds").and_then(Json::as_u64);
                            if let (Some(rec), Some(dur), Some(round)) = (rec, dur, round) {
                                if rec < round || rec - round != dur {
                                    errs.push(format!(
                                        "{at}: recovery_rounds ({dur}) ≠ recovered_round \
                                         ({rec}) - round ({round})"
                                    ));
                                }
                            }
                        }
                        (Some(_), Some(_)) => errs.push(format!(
                            "{at}: recovered_round and recovery_rounds must be both \
                             numbers or both null"
                        )),
                        _ => {} // missing-key errors already recorded
                    }
                }
            }
        }
    }
    let what = if has_faults {
        format!("np-run-summary/v1, {fault_count} fault event(s)")
    } else {
        "np-run-summary/v1".to_owned()
    };
    finish(errs, what)
}

/// Validates an `np-manifest/v1` JSONL job journal.
pub fn validate_manifest(text: &str) -> Result<String, Vec<String>> {
    let mut errs = Vec::new();
    let mut records = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = format!("line {}", idx + 1);
        let rec = match json::parse(line) {
            Ok(rec) => rec,
            Err(e) => {
                errs.push(format!("{at}: parse: {e}"));
                continue;
            }
        };
        records += 1;
        check_keys(&rec, MANIFEST_KEYS, &at, &mut errs);
        expect_str(&rec, "schema", Some("np-manifest/v1"), &at, &mut errs);
        expect_str(&rec, "job", None, &at, &mut errs);
        expect_str(&rec, "protocol", None, &at, &mut errs);
        let n = expect_u64(&rec, "n", &at, &mut errs);
        expect_u64(&rec, "h", &at, &mut errs);
        expect_u64(&rec, "s0", &at, &mut errs);
        expect_u64(&rec, "s1", &at, &mut errs);
        expect_num_or_null(&rec, "delta", &at, &mut errs);
        expect_num_or_null(&rec, "c1", &at, &mut errs);
        expect_u64(&rec, "seed", &at, &mut errs);
        expect_u64(&rec, "budget", &at, &mut errs);
        expect_u64(&rec, "round", &at, &mut errs);
        expect_bool(&rec, "consensus", &at, &mut errs);
        let correct = expect_u64(&rec, "correct", &at, &mut errs);
        if let (Some(n), Some(c)) = (n, correct) {
            if c > n {
                errs.push(format!("{at}: correct ({c}) exceeds n ({n})"));
            }
        }
        let status = rec.get("status").and_then(Json::as_str);
        match status {
            Some("pending" | "checkpointed" | "done") => {}
            Some(other) => errs.push(format!("{at}: unknown status {other:?}")),
            None => errs.push(format!("{at}: `status` must be a string")),
        }
        // A checkpoint path is present exactly for checkpointed records.
        match (status, rec.get("checkpoint")) {
            (Some("checkpointed"), Some(Json::Str(_))) => {}
            (Some("checkpointed"), Some(_)) => {
                errs.push(format!(
                    "{at}: checkpointed record without a checkpoint path"
                ));
            }
            (Some("pending" | "done"), Some(Json::Null)) => {}
            (Some("pending" | "done"), Some(_)) => {
                errs.push(format!(
                    "{at}: non-checkpointed record carries a checkpoint value"
                ));
            }
            _ => {} // missing-key / bad-status errors already recorded
        }
    }
    if records == 0 {
        errs.push("manifest has no records".to_owned());
    }
    finish(errs, format!("np-manifest/v1, {records} record(s)"))
}

/// Validates an `np-lint/v1` JSONL report.
pub fn validate_lint_report(text: &str) -> Result<String, Vec<String>> {
    let mut errs = Vec::new();
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = match lines.next() {
        Some(line) => match json::parse(line) {
            Ok(h) => Some(h),
            Err(e) => {
                errs.push(format!("header: parse: {e}"));
                None
            }
        },
        None => {
            errs.push("empty report (expected at least a header line)".to_owned());
            None
        }
    };
    let declared = header.as_ref().and_then(|h| {
        check_keys(h, &["schema", "files", "findings"], "header", &mut errs);
        expect_str(h, "schema", Some("np-lint/v1"), "header", &mut errs);
        expect_u64(h, "files", "header", &mut errs);
        expect_u64(h, "findings", "header", &mut errs)
    });
    let mut entries = 0usize;
    let mut prev_key: Option<(String, u64, String)> = None;
    for (idx, line) in lines.enumerate() {
        let at = format!("finding {}", idx + 1);
        let entry = match json::parse(line) {
            Ok(entry) => entry,
            Err(e) => {
                errs.push(format!("{at}: parse: {e}"));
                continue;
            }
        };
        entries += 1;
        check_keys(&entry, LINT_KEYS, &at, &mut errs);
        expect_str(&entry, "file", None, &at, &mut errs);
        expect_u64(&entry, "line", &at, &mut errs);
        expect_str(&entry, "rule", None, &at, &mut errs);
        match entry.get("severity").and_then(Json::as_str) {
            Some("deny" | "warn") => {}
            Some(other) => errs.push(format!("{at}: unknown severity {other:?}")),
            None => errs.push(format!("{at}: `severity` must be a string")),
        }
        expect_str(&entry, "scope", None, &at, &mut errs);
        expect_str(&entry, "message", None, &at, &mut errs);
        expect_str(&entry, "excerpt", None, &at, &mut errs);
        let key = (
            entry
                .get("file")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            entry.get("line").and_then(Json::as_u64).unwrap_or_default(),
            entry
                .get("rule")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        );
        if let Some(prev) = &prev_key {
            if *prev > key {
                errs.push(format!(
                    "{at}: entries not sorted by (file, line, rule) — byte-stable \
                     ordering is part of the np-lint/v1 contract"
                ));
            }
        }
        prev_key = Some(key);
    }
    if let Some(declared) = declared {
        if declared != entries as u64 {
            errs.push(format!(
                "header declares {declared} finding(s) but the report has {entries}"
            ));
        }
    }
    finish(errs, format!("np-lint/v1, {entries} finding(s)"))
}

fn finish(errs: Vec<String>, what: String) -> Result<String, Vec<String>> {
    if errs.is_empty() {
        Ok(what)
    } else {
        Err(errs)
    }
}

/// Exact-key check: every expected key present, no stray keys, no
/// duplicates. Order is not enforced (the writers fix it, but key order
/// is semantically irrelevant and a reorder is caught by the byte-compare
/// gates instead).
fn check_keys(v: &Json, expected: &[&str], at: &str, errs: &mut Vec<String>) {
    check_keys_with_optional(v, expected, &[], at, errs);
}

/// Like [`check_keys`], but tolerates (without requiring) the keys in
/// `optional`. Stray keys outside both sets and duplicates stay errors.
fn check_keys_with_optional(
    v: &Json,
    expected: &[&str],
    optional: &[&str],
    at: &str,
    errs: &mut Vec<String>,
) {
    let Some(fields) = v.as_obj() else {
        errs.push(format!("{at}: expected an object, got {}", v.type_name()));
        return;
    };
    for &key in expected {
        if !fields.iter().any(|(k, _)| k == key) {
            errs.push(format!("{at}: missing key {key:?}"));
        }
    }
    for (k, _) in fields {
        if !expected.contains(&k.as_str()) && !optional.contains(&k.as_str()) {
            errs.push(format!("{at}: unexpected key {k:?}"));
        }
    }
    for (i, (k, _)) in fields.iter().enumerate() {
        if fields.iter().skip(i + 1).any(|(k2, _)| k2 == k) {
            errs.push(format!("{at}: duplicate key {k:?}"));
        }
    }
}

fn expect_str(v: &Json, key: &str, want: Option<&str>, at: &str, errs: &mut Vec<String>) {
    match v.get(key).and_then(Json::as_str) {
        Some(s) => {
            if let Some(want) = want {
                if s != want {
                    errs.push(format!("{at}: {key} is {s:?}, expected {want:?}"));
                }
            }
        }
        None => errs.push(format!("{at}: `{key}` must be a string")),
    }
}

fn expect_u64(v: &Json, key: &str, at: &str, errs: &mut Vec<String>) -> Option<u64> {
    match v.get(key).and_then(Json::as_u64) {
        Some(n) => Some(n),
        None => {
            errs.push(format!("{at}: `{key}` must be a non-negative integer"));
            None
        }
    }
}

fn expect_bool(v: &Json, key: &str, at: &str, errs: &mut Vec<String>) {
    if v.get(key).and_then(Json::as_bool).is_none() {
        errs.push(format!("{at}: `{key}` must be a boolean"));
    }
}

fn expect_finite_num(v: &Json, key: &str, at: &str, errs: &mut Vec<String>) {
    match v.get(key).and_then(Json::as_f64) {
        Some(x) if x.is_finite() => {}
        _ => errs.push(format!("{at}: `{key}` must be a finite number")),
    }
}

fn expect_num_or_null(v: &Json, key: &str, at: &str, errs: &mut Vec<String>) {
    match v.get(key) {
        Some(Json::Num(_) | Json::Null) => {}
        Some(other) => errs.push(format!(
            "{at}: `{key}` must be number|null, got {}",
            other.type_name()
        )),
        None => errs.push(format!("{at}: missing key {key:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_BENCH: &str = r#"{
  "schema": "np-bench/v1",
  "bench": "scale",
  "points": [
    {"label": "n=64", "n": 64, "runs": 4, "converged": 4, "mean_rounds": 12.5, "mean_wall_ms": 3.25},
    {"label": "n=128", "n": 128, "runs": 4, "converged": 0, "mean_rounds": null, "mean_wall_ms": 6.5}
  ]
}
"#;

    #[test]
    fn good_bench_validates() {
        assert_eq!(
            validate_text(GOOD_BENCH).expect("valid"),
            "np-bench/v1, 2 point(s)"
        );
    }

    #[test]
    fn bench_converged_mean_rounds_cross_check() {
        let bad = GOOD_BENCH.replace("\"converged\": 4", "\"converged\": 0");
        let errs = validate_text(&bad).expect_err("inconsistent");
        assert!(
            errs.iter().any(|e| e.contains("no run converged")),
            "{errs:?}"
        );
        let bad = GOOD_BENCH.replace("\"mean_rounds\": null", "\"mean_rounds\": 9.0");
        let errs = validate_text(&bad).expect_err("inconsistent");
        assert!(
            errs.iter()
                .any(|e| e.contains("is a number but no run converged")),
            "{errs:?}"
        );
    }

    #[test]
    fn bench_wall_quantiles_validate_when_present() {
        let good = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"median_wall_ms\": 3.0, \"p95_wall_ms\": 4.5",
        );
        assert_eq!(
            validate_text(&good).expect("quantiles valid"),
            "np-bench/v1, 2 point(s)"
        );
        // One quantile without the other is a writer regression.
        let bad = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"median_wall_ms\": 3.0",
        );
        let errs = validate_text(&bad).expect_err("unpaired quantile");
        assert!(
            errs.iter().any(|e| e.contains("must appear together")),
            "{errs:?}"
        );
        // p95 below the median cannot come out of nearest-rank order stats.
        let bad = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"median_wall_ms\": 4.5, \"p95_wall_ms\": 3.0",
        );
        let errs = validate_text(&bad).expect_err("inverted quantiles");
        assert!(
            errs.iter().any(|e| e.contains("below median_wall_ms")),
            "{errs:?}"
        );
    }

    #[test]
    fn bench_messages_total_is_validated_when_present() {
        let good = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"messages_total\": 4096000",
        );
        assert_eq!(
            validate_text(&good).expect("messages_total valid"),
            "np-bench/v1, 2 point(s)"
        );
        let zero = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"messages_total\": 0",
        );
        assert!(validate_text(&zero).is_ok(), "zero messages is legal");
        for bad_value in ["-5", "3.5", "\"many\""] {
            let bad = GOOD_BENCH.replace(
                "\"mean_wall_ms\": 3.25",
                &format!("\"mean_wall_ms\": 3.25, \"messages_total\": {bad_value}"),
            );
            let errs = validate_text(&bad).expect_err("bad messages_total");
            assert!(
                errs.iter()
                    .any(|e| e.contains("`messages_total` must be a non-negative integer")),
                "{bad_value}: {errs:?}"
            );
        }
    }

    #[test]
    fn bench_sim_cluster_backend_tag_is_legal() {
        let good = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"backend\": \"sim-cluster\"",
        );
        assert!(validate_text(&good).is_ok());
    }

    #[test]
    fn bench_backend_tag_is_validated_when_present() {
        let good = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"backend\": \"mean-field\"",
        );
        assert_eq!(
            validate_text(&good).expect("backend valid"),
            "np-bench/v1, 2 point(s)"
        );
        let good = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"backend\": \"per-agent\"",
        );
        assert!(validate_text(&good).is_ok());
        let bad = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"backend\": \"quantum\"",
        );
        let errs = validate_text(&bad).expect_err("unknown backend");
        assert!(
            errs.iter()
                .any(|e| e.contains("unknown backend \"quantum\"")),
            "{errs:?}"
        );
        let bad = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"backend\": 7",
        );
        let errs = validate_text(&bad).expect_err("non-string backend");
        assert!(
            errs.iter()
                .any(|e| e.contains("`backend` must be a string")),
            "{errs:?}"
        );
    }

    #[test]
    fn bench_topology_keys_are_validated_when_present() {
        let good = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"degree\": 8, \"convergence_rate\": 1",
        );
        assert_eq!(
            validate_text(&good).expect("topology keys valid"),
            "np-bench/v1, 2 point(s)"
        );
        let bad = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"degree\": 0",
        );
        let errs = validate_text(&bad).expect_err("zero degree");
        assert!(
            errs.iter()
                .any(|e| e.contains("`degree` must be at least 1")),
            "{errs:?}"
        );
        let bad = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"convergence_rate\": 1.5",
        );
        let errs = validate_text(&bad).expect_err("rate out of range");
        assert!(errs.iter().any(|e| e.contains("in [0, 1]")), "{errs:?}");
        // The rate must match the point's own converged/runs counters.
        let bad = GOOD_BENCH.replace(
            "\"mean_wall_ms\": 3.25",
            "\"mean_wall_ms\": 3.25, \"convergence_rate\": 0.5",
        );
        let errs = validate_text(&bad).expect_err("rate mismatch");
        assert!(
            errs.iter().any(|e| e.contains("≠ converged/runs (4/4)")),
            "{errs:?}"
        );
    }

    #[test]
    fn bench_stray_and_missing_keys_are_flagged() {
        let bad = GOOD_BENCH.replace("\"bench\": \"scale\"", "\"bench\": \"scale\", \"extra\": 1");
        let errs = validate_text(&bad).expect_err("stray key");
        assert!(
            errs.iter().any(|e| e.contains("unexpected key \"extra\"")),
            "{errs:?}"
        );
        let bad = GOOD_BENCH.replace("\"runs\": 4, ", "");
        let errs = validate_text(&bad).expect_err("missing key");
        assert!(
            errs.iter().any(|e| e.contains("missing key \"runs\"")),
            "{errs:?}"
        );
    }

    fn good_summary() -> String {
        "{\n  \"schema\": \"np-run-summary/v1\",\n  \"protocol\": \"ssf\",\n  \"n\": 1024,\n  \
         \"h\": 16,\n  \"s0\": 8,\n  \"s1\": 24,\n  \"seed\": 7,\n  \"rounds\": 180,\n  \
         \"consensus\": true,\n  \"final_correct\": 1024,\n  \"final_margin\": 512,\n  \
         \"weak_formed\": 1024,\n  \"weak_correct\": 1000,\n  \"faults\": [\n    \
         {\"round\": 40, \"label\": \"split-brain:4\", \"recovered_round\": 65, \
         \"recovery_rounds\": 25}\n  ]\n}\n"
            .to_owned()
    }

    #[test]
    fn good_summary_validates() {
        assert_eq!(
            validate_text(&good_summary()).expect("valid"),
            "np-run-summary/v1, 1 fault event(s)"
        );
    }

    #[test]
    fn summary_recovery_arithmetic_is_checked() {
        let bad = good_summary().replace("\"recovery_rounds\": 25", "\"recovery_rounds\": 24");
        let errs = validate_text(&bad).expect_err("bad arithmetic");
        assert!(
            errs.iter().any(|e| e.contains("recovery_rounds (24)")),
            "{errs:?}"
        );
    }

    #[test]
    fn summary_mixed_null_recovery_is_rejected() {
        let bad = good_summary().replace("\"recovery_rounds\": 25", "\"recovery_rounds\": null");
        let errs = validate_text(&bad).expect_err("mixed null");
        assert!(
            errs.iter().any(|e| e.contains("both numbers or both null")),
            "{errs:?}"
        );
    }

    fn manifest_line(status: &str, checkpoint: &str) -> String {
        format!(
            "{{\"schema\":\"np-manifest/v1\",\"job\":\"j1\",\"protocol\":\"sf\",\"n\":256,\
             \"h\":8,\"s0\":2,\"s1\":6,\"delta\":0.1,\"c1\":1.5,\"seed\":99,\"budget\":500,\
             \"status\":{status},\"checkpoint\":{checkpoint},\"round\":120,\
             \"consensus\":false,\"correct\":200}}"
        )
    }

    #[test]
    fn good_manifest_validates() {
        let text = format!(
            "{}\n{}\n",
            manifest_line("\"pending\"", "null"),
            manifest_line("\"checkpointed\"", "\"snaps/j1.npsnap\"")
        );
        assert_eq!(
            validate_text(&text).expect("valid"),
            "np-manifest/v1, 2 record(s)"
        );
    }

    #[test]
    fn manifest_checkpoint_status_coupling() {
        let bad = format!("{}\n", manifest_line("\"checkpointed\"", "null"));
        let errs = validate_text(&bad).expect_err("no path");
        assert!(
            errs.iter().any(|e| e.contains("without a checkpoint path")),
            "{errs:?}"
        );
        let bad = format!("{}\n", manifest_line("\"done\"", "\"snaps/j1.npsnap\""));
        let errs = validate_text(&bad).expect_err("stray path");
        assert!(
            errs.iter().any(|e| e.contains("carries a checkpoint")),
            "{errs:?}"
        );
    }

    #[test]
    fn manifest_unknown_status_is_rejected() {
        let bad = format!("{}\n", manifest_line("\"zzz\"", "null"));
        let errs = validate_text(&bad).expect_err("status");
        assert!(
            errs.iter().any(|e| e.contains("unknown status")),
            "{errs:?}"
        );
    }

    #[test]
    fn lint_report_counts_and_order_are_checked() {
        let good = "{\"schema\":\"np-lint/v1\",\"files\":2,\"findings\":2}\n\
                    {\"file\":\"a.rs\",\"line\":1,\"rule\":\"unwrap\",\"severity\":\"deny\",\
                     \"scope\":\"library\",\"message\":\"m\",\"excerpt\":\"e\"}\n\
                    {\"file\":\"b.rs\",\"line\":9,\"rule\":\"float-eq\",\"severity\":\"warn\",\
                     \"scope\":\"library\",\"message\":\"m\",\"excerpt\":\"e\"}\n";
        assert_eq!(
            validate_text(good).expect("valid"),
            "np-lint/v1, 2 finding(s)"
        );
        let miscounted = good.replace("\"findings\":2", "\"findings\":3");
        let errs = validate_text(&miscounted).expect_err("count");
        assert!(errs.iter().any(|e| e.contains("declares 3")), "{errs:?}");
        // Swap the two entries: ordering violation.
        let lines: Vec<&str> = good.lines().collect();
        let unsorted = format!("{}\n{}\n{}\n", lines[0], lines[2], lines[1]);
        let errs = validate_text(&unsorted).expect_err("order");
        assert!(errs.iter().any(|e| e.contains("not sorted")), "{errs:?}");
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let errs = validate_text("{\"schema\":\"np-snap/v1\"}").expect_err("unknown");
        assert!(errs[0].contains("unknown artifact schema"), "{errs:?}");
        let errs = validate_text("[1,2,3]").expect_err("no tag");
        assert!(errs[0].contains("no schema tag"), "{errs:?}");
    }
}
