//! Static analysis for the noisy-PULL workspace: determinism and
//! robustness lints beyond what rustc/clippy check, plus schema
//! validation for the workspace's JSON artifacts.
//!
//! The paper's guarantees (Theorems 4 and 5) are probability statements
//! over *seeded* randomness, and `np_engine::runner::run_batch` promises
//! results that depend only on `(seeds, runs, job)`. One stray
//! `thread_rng()`, wall-clock branch, or `HashMap` iteration in a protocol
//! hot path silently breaks reproducibility of every experiment. These
//! lints make that class of bug a CI failure instead of a silent drift.
//!
//! The analyzer is token-level, not line-level: [`lexer`] produces a
//! string/comment-aware token stream, [`resolve`] builds the file's import
//! graph (so grouped, nested and renamed `use` declarations all resolve),
//! and [`scanner`] runs the declarative rule catalog in [`rules`] over the
//! resolved stream. Findings render through [`report`] as the byte-stable
//! `np-lint/v1` JSONL format; [`artifacts`] validates the workspace's
//! emitted JSON artifacts (`np-bench/v1`, `np-run-summary/v1`,
//! `np-manifest/v1`, `np-lint/v1`) against their schemas.
//!
//! False positives are silenced inline with an `xtask-allow` line comment
//! naming the rule, on the offending or preceding line — an auditable
//! escape hatch, and an *accountable* one: a directive that suppresses
//! nothing is itself a `stale-allow` finding.
//!
//! Run as `cargo xtask lint` (see `src/main.rs` for the CLI and file
//! selection; the scope table lives in [`rules::SCOPES`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod json;
pub mod legacy;
pub mod lexer;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod scanner;

pub use rules::{RuleDef, Severity, BASE_RULES, HOT_PATH_RULES, SCOPES, SNAPSHOT_PATH_RULES};
pub use scanner::{analyze_source, FileClass, Finding, RuleSet};
