//! Static analysis for the noisy-PULL workspace: determinism and
//! robustness lints beyond what rustc/clippy check.
//!
//! The paper's guarantees (Theorems 4 and 5) are probability statements
//! over *seeded* randomness, and `np_engine::runner::run_batch` promises
//! results that depend only on `(seeds, runs, job)`. One stray
//! `thread_rng()`, wall-clock branch, or `HashMap` iteration in a protocol
//! hot path silently breaks reproducibility of every experiment. These
//! lints make that class of bug a CI failure instead of a silent drift.
//!
//! The scanner is a line-and-token pass, not a parser: it strips strings
//! and comments, tracks `#[cfg(test)]` regions by brace depth, and matches
//! per-rule token lists. False positives are silenced inline with
//! `// xtask-allow: <rule>` on the offending or preceding line — an
//! auditable escape hatch (`grep xtask-allow` lists every exemption).
//!
//! Run as `cargo xtask check` (see `src/main.rs` for file selection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod scanner;

pub use rules::{Rule, HOT_PATH_RULES, RULES, SNAPSHOT_PATH_RULES};
pub use scanner::{scan_source, scan_source_with, FileClass, Finding};
