//! The token-driven analyzer behind `cargo xtask lint`.
//!
//! One file at a time: the source is lexed ([`crate::lexer`]), overlaid
//! with `#[cfg(test)]` and enclosing-`fn` regions, and its `use` graph is
//! resolved ([`crate::resolve`]). Each [`RuleSet`] the caller selects is
//! then matched against the token stream — path rules see through grouped
//! and renamed imports via the resolver, structural rules (float-eq,
//! narrowing casts, panic paths) match token shapes rather than
//! substrings.
//!
//! Suppression is still the `// xtask-allow: <rule>` directive with the
//! legacy carry semantics (a directive covers its own line and the next
//! code line, carrying through comment-only lines). New here: every
//! directive *instance* must suppress at least one finding, or it becomes
//! a [`crate::rules::STALE_ALLOW`] finding itself — suppressions cannot
//! rot, and a typo'd rule name is flagged instead of silently disabling
//! nothing.
//!
//! Known limitations, by design (it is a lexer, not a compiler):
//! * `#[cfg(test)] mod tests;` pointing at a separate file does not mark
//!   that file as test code — keep test modules inline, as this workspace
//!   does.
//! * Import resolution is file-global (no per-module scoping) and the
//!   float-equality check is still a heuristic over same-line operand
//!   tokens. Both over-approximate; intentional hits carry an allow with
//!   a justification.

use std::collections::BTreeSet;

use crate::lexer::{self, Regions, Tok, TokKind};
use crate::resolve::{self, ImportMap};
use crate::rules::{rule_by_name, Matcher, RuleDef, Severity, STALE_ALLOW_RULE, UNKNOWN_ALLOW_MSG};

/// How a file participates in the lint pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Root module of a library crate: token rules plus header checks.
    LibraryRoot,
    /// Any other library-crate module: token rules only.
    LibrarySource,
}

/// One scoped rule set to apply to a file: the scope's name (reported
/// with each finding), its rules, and — when non-empty — the named
/// functions the rules are confined to.
#[derive(Clone, Copy, Debug)]
pub struct RuleSet {
    /// Scope name from the [`crate::rules::SCOPES`] table.
    pub scope: &'static str,
    /// The rules to run.
    pub rules: &'static [RuleDef],
    /// If non-empty, only tokens inside these named functions are in
    /// scope (e.g. the `hot-loop` scope is `World::step` only).
    pub fns: &'static [&'static str],
}

impl RuleSet {
    /// A whole-file rule set.
    pub const fn new(scope: &'static str, rules: &'static [RuleDef]) -> Self {
        Self {
            scope,
            rules,
            fns: &[],
        }
    }

    /// A rule set confined to the named functions.
    pub const fn in_fns(
        scope: &'static str,
        rules: &'static [RuleDef],
        fns: &'static [&'static str],
    ) -> Self {
        Self { scope, rules, fns }
    }
}

/// One lint hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule name (matches `xtask-allow` directives).
    pub rule: &'static str,
    /// Severity the rule carries.
    pub severity: Severity,
    /// The scope whose rule set produced the finding.
    pub scope: &'static str,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// One-line rationale.
    pub message: &'static str,
}

/// Scans one file's source text against the given rule sets, returning
/// all findings sorted by (line, rule).
pub fn analyze_source(class: FileClass, text: &str, sets: &[RuleSet]) -> Vec<Finding> {
    let lexed = lexer::lex(text);
    let regions = lexer::regions(&lexed.toks);
    let imports = resolve::collect(&lexed.toks, &regions);
    let sig: Vec<usize> = (0..lexed.toks.len())
        .filter(|&i| {
            !matches!(
                lexed.toks[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    let ctx = Ctx {
        toks: &lexed.toks,
        sig,
        regions: &regions,
        imports: &imports,
    };
    let lines: Vec<&str> = text.lines().collect();
    let excerpt_of = |line: usize| -> String {
        lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    };

    let mut allows = Allows::collect(&lexed.toks, lines.len());
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: BTreeSet<(&'static str, usize)> = BTreeSet::new();
    let mut header_rule: Option<(&'static RuleDef, &'static str)> = None;

    for set in sets {
        for rule in set.rules {
            let hits = match rule.matcher {
                Matcher::Paths(pats) => ctx.match_paths(pats, set.fns),
                Matcher::Methods(names) => ctx.match_methods(names, set.fns),
                Matcher::Macros(names) => ctx.match_macros(names, set.fns),
                Matcher::PathsOrMacros { paths, macros } => {
                    let mut hits = ctx.match_paths(paths, set.fns);
                    hits.extend(ctx.match_macros(macros, set.fns));
                    hits
                }
                Matcher::FloatEq => ctx.match_float_eq(set.fns),
                Matcher::NarrowingCast => ctx.match_narrowing_cast(set.fns),
                Matcher::PanicPath => ctx.match_panic_path(set.fns),
                Matcher::CrateHeaders => {
                    header_rule = Some((rule, set.scope));
                    continue;
                }
            };
            for line in hits {
                if !seen.insert((rule.name, line)) {
                    continue;
                }
                if allows.suppress(line, rule.name) {
                    continue;
                }
                findings.push(Finding {
                    rule: rule.name,
                    severity: rule.severity,
                    scope: set.scope,
                    line,
                    excerpt: excerpt_of(line),
                    message: rule.message,
                });
            }
        }
    }

    if class == FileClass::LibraryRoot {
        if let Some((rule, scope)) = header_rule {
            let missing: Vec<&str> = ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"]
                .into_iter()
                .filter(|h| !text.contains(h))
                .collect();
            if !missing.is_empty() && allows.suppress_anywhere(rule.name) {
                // File-level allow: the headers are knowingly absent.
            } else {
                for header in missing {
                    findings.push(Finding {
                        rule: rule.name,
                        severity: rule.severity,
                        scope,
                        line: 1,
                        excerpt: format!("missing `{header}`"),
                        message: rule.message,
                    });
                }
            }
        }
    }

    // Every directive instance must have earned its keep.
    for inst in allows.stale() {
        findings.push(Finding {
            rule: STALE_ALLOW_RULE.name,
            severity: STALE_ALLOW_RULE.severity,
            scope: "allows",
            line: inst.line,
            excerpt: excerpt_of(inst.line),
            message: if rule_by_name(&inst.rule).is_some() {
                STALE_ALLOW_RULE.message
            } else {
                UNKNOWN_ALLOW_MSG
            },
        });
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Shared per-file matching context.
struct Ctx<'a> {
    toks: &'a [Tok],
    /// Indices of significant (non-comment) tokens, in order.
    sig: Vec<usize>,
    regions: &'a Regions,
    imports: &'a ImportMap,
}

/// Keywords that cannot be the base of an index expression (`&mut [u8]`
/// is a slice type, not `mut` indexed by `u8`).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

/// Casts the narrowing-cast rule rejects on encode paths.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "usize"];

/// The panic-family macros the panic-path rule rejects.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Operand delimiters for the float-equality heuristic (token texts).
const FLOAT_EQ_STOPS: &[&str] = &[
    "(", ")", "{", "}", ",", ";", "[", "]", "&", "|", "&&", "||", "&=", "|=",
];

impl Ctx<'_> {
    /// Whether the token at index `ti` is in scope: outside `#[cfg(test)]`
    /// and — if the set is function-confined — inside one of `fns`.
    fn active(&self, ti: usize, fns: &[&str]) -> bool {
        if self.regions.in_test[ti] {
            return false;
        }
        fns.is_empty()
            || self.regions.fn_of[ti]
                .map(|k| fns.contains(&self.regions.fn_names[k].as_str()))
                .unwrap_or(false)
    }

    fn sig_tok(&self, s: usize) -> Option<&Tok> {
        self.sig.get(s).map(|&i| &self.toks[i])
    }

    fn is_punct(&self, s: usize, text: &str) -> bool {
        self.sig_tok(s)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    fn is_ident(&self, s: usize) -> bool {
        self.sig_tok(s).is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// Path rules: `use` declarations are checked once as declarations
    /// (after the resolver has exploded groups and followed renames), and
    /// every expression path chain is checked both verbatim and with its
    /// first segment resolved through the import map.
    fn match_paths(&self, pats: &[&[&str]], fns: &[&str]) -> Vec<usize> {
        let mut out = Vec::new();
        // Imports sit at item level, outside any function; a fn-confined
        // set never matches them.
        if fns.is_empty() {
            for imp in &self.imports.imports {
                let segs: Vec<&str> = imp.path.iter().map(String::as_str).collect();
                if pats.iter().any(|p| contains_seq(&segs, p)) {
                    out.push(imp.line);
                }
            }
        }
        let mut s = 0usize;
        while s < self.sig.len() {
            let ti = self.sig[s];
            let tok = &self.toks[ti];
            if tok.kind != TokKind::Ident || self.imports.in_use_decl(ti) || !self.active(ti, fns) {
                s += 1;
                continue;
            }
            // Mid-chain segment (`b` in `a::b`): the chain was already
            // checked from its head.
            if s >= 2 && self.is_punct(s - 1, "::") && self.is_ident(s - 2) {
                s += 1;
                continue;
            }
            let method_pos = s >= 1 && self.is_punct(s - 1, ".");
            let mut segs: Vec<&str> = vec![&tok.text];
            let mut t = s + 1;
            while self.is_punct(t, "::") && self.is_ident(t + 1) {
                segs.push(&self.toks[self.sig[t + 1]].text);
                t += 2;
            }
            let hit = if method_pos {
                // `x.from_entropy()`: a method name can match only a
                // single-segment pattern, and resolution does not apply.
                pats.iter().any(|p| p.len() == 1 && p[0] == segs[0])
            } else {
                pats.iter().any(|p| contains_seq(&segs, p))
                    || self.imports.resolve(segs[0]).any(|imp| {
                        let mut full: Vec<&str> = imp.path.iter().map(String::as_str).collect();
                        full.extend(&segs[1..]);
                        pats.iter().any(|p| contains_seq(&full, p))
                    })
            };
            if hit {
                out.push(tok.line);
            }
            s = t.max(s + 1);
        }
        out
    }

    /// Method rules: `.name(` call sites.
    fn match_methods(&self, names: &[&str], fns: &[&str]) -> Vec<usize> {
        let mut out = Vec::new();
        for s in 0..self.sig.len() {
            let ti = self.sig[s];
            let tok = &self.toks[ti];
            if tok.kind == TokKind::Ident
                && names.contains(&tok.text.as_str())
                && s >= 1
                && self.is_punct(s - 1, ".")
                && self.is_punct(s + 1, "(")
                && self.active(ti, fns)
            {
                out.push(tok.line);
            }
        }
        out
    }

    /// Macro rules: `name!` invocations.
    fn match_macros(&self, names: &[&str], fns: &[&str]) -> Vec<usize> {
        let mut out = Vec::new();
        for s in 0..self.sig.len() {
            let ti = self.sig[s];
            let tok = &self.toks[ti];
            if tok.kind == TokKind::Ident
                && names.contains(&tok.text.as_str())
                && self.is_punct(s + 1, "!")
                && self.active(ti, fns)
            {
                out.push(tok.line);
            }
        }
        out
    }

    /// Float-equality heuristic: `==`/`!=` where a same-line operand
    /// token (scanned out to the nearest expression delimiter) is a float
    /// literal or an `f32`/`f64` mention.
    fn match_float_eq(&self, fns: &[&str]) -> Vec<usize> {
        let mut out = Vec::new();
        for s in 0..self.sig.len() {
            let ti = self.sig[s];
            let tok = &self.toks[ti];
            if tok.kind != TokKind::Punct
                || !(tok.text == "==" || tok.text == "!=")
                || !self.active(ti, fns)
            {
                continue;
            }
            let line = tok.line;
            let stop =
                |t: &Tok| t.kind == TokKind::Punct && FLOAT_EQ_STOPS.contains(&t.text.as_str());
            let mut floaty = false;
            let mut k = s;
            while k > 0 {
                k -= 1;
                let t = &self.toks[self.sig[k]];
                if t.line != line || stop(t) {
                    break;
                }
                if is_floaty(t) {
                    floaty = true;
                    break;
                }
            }
            let mut k = s + 1;
            while !floaty {
                let Some(&tix) = self.sig.get(k) else { break };
                let t = &self.toks[tix];
                if t.line != line || stop(t) {
                    break;
                }
                if is_floaty(t) {
                    floaty = true;
                }
                k += 1;
            }
            if floaty {
                out.push(line);
            }
        }
        out
    }

    /// Narrowing-cast rule: `as u8|u16|u32|usize` anywhere in scope.
    fn match_narrowing_cast(&self, fns: &[&str]) -> Vec<usize> {
        let mut out = Vec::new();
        for s in 0..self.sig.len() {
            let ti = self.sig[s];
            let tok = &self.toks[ti];
            if tok.kind == TokKind::Ident
                && tok.text == "as"
                && !self.imports.in_use_decl(ti)
                && self.sig_tok(s + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident && NARROW_TARGETS.contains(&t.text.as_str())
                })
                && self.active(ti, fns)
            {
                out.push(tok.line);
            }
        }
        out
    }

    /// Panic-path rule: panic-family macros plus `[` index expressions
    /// (a `[` whose previous token ends a value expression).
    fn match_panic_path(&self, fns: &[&str]) -> Vec<usize> {
        let mut out = self.match_macros(PANIC_MACROS, fns);
        for s in 0..self.sig.len() {
            let ti = self.sig[s];
            let tok = &self.toks[ti];
            if tok.kind != TokKind::Punct || tok.text != "[" || s == 0 || !self.active(ti, fns) {
                continue;
            }
            let prev = &self.toks[self.sig[s - 1]];
            let indexes = match prev.kind {
                TokKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                _ => false,
            };
            if indexes {
                out.push(tok.line);
            }
        }
        out
    }
}

fn is_floaty(t: &Tok) -> bool {
    match t.kind {
        TokKind::Num => t.text.contains('.') || t.text.contains("f32") || t.text.contains("f64"),
        TokKind::Ident => t.text.contains("f32") || t.text.contains("f64"),
        _ => false,
    }
}

/// Whether `hay` contains `needle` as a contiguous subsequence.
fn contains_seq(hay: &[&str], needle: &[&str]) -> bool {
    !needle.is_empty()
        && needle.len() <= hay.len()
        && hay.windows(needle.len()).any(|w| w == needle)
}

/// Parses the rule names out of a directive comment. Unlike the legacy
/// parser this stops the name list at the first `(`: justifications are
/// free-form prose, and a comma inside one must not spawn phantom rule
/// names (which the stale-allow analysis would then flag as unknown).
fn parse_allow_names(comment: &str) -> Vec<String> {
    let Some(pos) = comment.find("xtask-allow:") else {
        return Vec::new();
    };
    let body = &comment[pos + "xtask-allow:".len()..];
    let body = &body[..body.find('(').unwrap_or(body.len())];
    crate::legacy::parse_allows(&format!("xtask-allow:{body}"))
}

/// One parsed `xtask-allow` directive instance.
struct AllowInst {
    line: usize,
    rule: String,
    used: bool,
}

/// All directive instances of a file, with per-line activation following
/// the legacy carry semantics: a directive covers its own line and the
/// next code line, carrying through comment-only lines in between.
struct Allows {
    insts: Vec<AllowInst>,
    /// Per source line (0-indexed): indices into `insts` active there.
    active: Vec<Vec<usize>>,
}

impl Allows {
    fn collect(toks: &[Tok], nlines: usize) -> Self {
        let mut line_comments: Vec<Vec<&str>> = vec![Vec::new(); nlines];
        let mut has_code = vec![false; nlines];
        for tok in toks {
            let idx = tok.line - 1;
            match tok.kind {
                TokKind::LineComment => {
                    if idx < nlines {
                        line_comments[idx].push(&tok.text);
                    }
                }
                TokKind::BlockComment => {}
                _ => {
                    // A multi-line token (raw string) is code on every
                    // line it spans.
                    let span = tok.text.matches('\n').count();
                    for flag in has_code.iter_mut().skip(idx).take(span + 1) {
                        *flag = true;
                    }
                }
            }
        }
        let mut insts: Vec<AllowInst> = Vec::new();
        let mut active: Vec<Vec<usize>> = vec![Vec::new(); nlines];
        let mut carried: Vec<usize> = Vec::new();
        for l in 0..nlines {
            let mut own: Vec<usize> = Vec::new();
            for comment in &line_comments[l] {
                for rule in parse_allow_names(comment) {
                    insts.push(AllowInst {
                        line: l + 1,
                        rule,
                        used: false,
                    });
                    own.push(insts.len() - 1);
                }
            }
            active[l] = own.iter().chain(carried.iter()).copied().collect();
            if !has_code[l] && !line_comments[l].is_empty() {
                carried.extend(own);
            } else {
                carried = own;
            }
        }
        Self { insts, active }
    }

    /// Suppresses a finding at `line` for `rule` if a matching directive
    /// is active there; marks every matching directive used.
    fn suppress(&mut self, line: usize, rule: &str) -> bool {
        let Some(active) = self.active.get(line.wrapping_sub(1)) else {
            return false;
        };
        let mut hit = false;
        for &i in active {
            if self.insts[i].rule == rule {
                self.insts[i].used = true;
                hit = true;
            }
        }
        hit
    }

    /// File-level suppression (crate-headers): any directive anywhere.
    fn suppress_anywhere(&mut self, rule: &str) -> bool {
        let mut hit = false;
        for inst in &mut self.insts {
            if inst.rule == rule {
                inst.used = true;
                hit = true;
            }
        }
        hit
    }

    /// The directive instances that suppressed nothing.
    fn stale(&self) -> impl Iterator<Item = &AllowInst> {
        self.insts.iter().filter(|i| !i.used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{BASE_RULES, HOT_LOOP_RULES, PROTOCOL_CLOCK_RULES, SNAPSHOT_PATH_RULES};

    fn scan(text: &str) -> Vec<Finding> {
        analyze_source(
            FileClass::LibrarySource,
            text,
            &[RuleSet::new("library", BASE_RULES)],
        )
    }

    fn rules_of(findings: &[Finding]) -> Vec<(&'static str, usize)> {
        findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn clean_code_has_no_findings() {
        let findings = scan("fn f(rng: &mut StdRng) -> u64 {\n    rng.next()\n}\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn needles_inside_strings_do_not_fire() {
        let findings = scan("fn f() { let s = \"do not call thread_rng here\"; }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn needles_inside_comments_do_not_fire() {
        let findings = scan("// thread_rng would be bad\n/* Instant::now too */\nfn f() {}\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let text = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                    Some(1).unwrap(); }\n}\n";
        let findings = scan(text);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn code_after_cfg_test_region_is_checked_again() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\
                    fn after() { y.unwrap(); }\n";
        assert_eq!(rules_of(&scan(text)), vec![("unwrap", 5)]);
    }

    #[test]
    fn same_line_allow_suppresses() {
        let findings = scan("fn f() { x.unwrap(); } // xtask-allow: unwrap\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn preceding_line_allow_suppresses() {
        let findings = scan("// xtask-allow: unwrap\nfn f() { x.unwrap(); }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_carries_through_comment_continuation_lines() {
        let text = "// xtask-allow: unwrap (long justification\n// continued here)\n\
                    fn f() { x.unwrap(); }\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn allow_does_not_carry_past_code_lines() {
        let text = "// xtask-allow: unwrap\nfn ok() {}\nfn f() { x.unwrap(); }\n";
        // The directive no longer reaches line 3, so the unwrap fires —
        // and the directive itself is now a stale-allow finding.
        assert_eq!(
            rules_of(&scan(text)),
            vec![("stale-allow", 1), ("unwrap", 3)]
        );
    }

    #[test]
    fn allow_for_another_rule_does_not_suppress() {
        let findings = scan("fn f() { x.unwrap(); } // xtask-allow: wall-clock\n");
        assert_eq!(rules_of(&findings), vec![("stale-allow", 1), ("unwrap", 1)]);
    }

    #[test]
    fn unknown_allow_name_is_flagged_with_its_own_message() {
        let findings = scan("fn f() {} // xtask-allow: unwarp\n");
        assert_eq!(rules_of(&findings), vec![("stale-allow", 1)]);
        assert_eq!(findings[0].message, UNKNOWN_ALLOW_MSG);
    }

    #[test]
    fn used_allow_is_not_stale() {
        let findings = scan("fn f() { x.unwrap() } // xtask-allow: unwrap\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn float_eq_detected_both_sides() {
        assert_eq!(scan("fn f() { let ok = a == 0.5; }\n")[0].rule, "float-eq");
        assert_eq!(scan("fn f() { let ok = 0.5 != b; }\n")[0].rule, "float-eq");
        assert_eq!(
            scan("fn f() { let ok = x as f64 == y; }\n")[0].rule,
            "float-eq"
        );
    }

    #[test]
    fn integer_eq_is_fine() {
        assert!(scan("fn f() { let ok = a == 5; }\n").is_empty());
        assert!(scan("fn f() { let ok = a <= 5.0; }\n").is_empty());
        assert!(scan("fn f() { for i in 0..=n {} }\n").is_empty());
    }

    #[test]
    fn headers_checked_only_for_roots() {
        let text = "pub fn f() {}\n";
        assert!(analyze_source(
            FileClass::LibrarySource,
            text,
            &[RuleSet::new("library", BASE_RULES)]
        )
        .is_empty());
        let root = analyze_source(
            FileClass::LibraryRoot,
            text,
            &[RuleSet::new("library", BASE_RULES)],
        );
        assert_eq!(root.len(), 2);
        assert!(root.iter().all(|f| f.rule == "crate-headers"));
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        assert!(analyze_source(
            FileClass::LibraryRoot,
            good,
            &[RuleSet::new("library", BASE_RULES)]
        )
        .is_empty());
    }

    #[test]
    fn grouped_import_fires_protocol_instant() {
        let text = "use std::time::{Duration, Instant};\nfn f() {}\n";
        let findings = analyze_source(
            FileClass::LibrarySource,
            text,
            &[RuleSet::new("protocol-clock", PROTOCOL_CLOCK_RULES)],
        );
        assert_eq!(rules_of(&findings), vec![("protocol-instant", 1)]);
    }

    #[test]
    fn renamed_import_fires_through_the_alias() {
        let text = "use std::time::Instant as Clock;\nfn f() -> u64 {\n    \
                    let t = Clock::now();\n    t.elapsed().as_nanos() as u64\n}\n";
        let findings = analyze_source(
            FileClass::LibrarySource,
            text,
            &[
                RuleSet::new("library", BASE_RULES),
                RuleSet::new("protocol-clock", PROTOCOL_CLOCK_RULES),
            ],
        );
        // The import line names std::time::Instant; the call site both
        // names it (via the alias) and reads the clock.
        assert_eq!(
            rules_of(&findings),
            vec![
                ("protocol-instant", 1),
                ("protocol-instant", 3),
                ("wall-clock", 3),
            ]
        );
    }

    #[test]
    fn method_call_with_spaces_still_fires() {
        // The legacy needle `.unwrap()` required exact spelling.
        assert_eq!(
            rules_of(&scan("fn f() { x . unwrap (); }\n")),
            vec![("unwrap", 1)]
        );
    }

    #[test]
    fn narrowing_cast_fires_only_on_narrow_targets() {
        let set = [RuleSet::new("snapshot-encode", SNAPSHOT_PATH_RULES)];
        let bad = "fn f(x: u64) -> u32 { x as u32 }\n";
        let findings = analyze_source(FileClass::LibrarySource, bad, &set);
        assert_eq!(rules_of(&findings), vec![("narrowing-cast", 1)]);
        let ok = "fn f(x: u32) -> u64 { x as u64 }\n";
        assert!(analyze_source(FileClass::LibrarySource, ok, &set).is_empty());
    }

    #[test]
    fn panic_path_is_confined_to_named_fns() {
        let text = "fn step(xs: &[u64], i: usize) -> u64 {\n    xs[i]\n}\n\
                    fn other(xs: &[u64], i: usize) -> u64 {\n    xs[i]\n}\n";
        let findings = analyze_source(
            FileClass::LibrarySource,
            text,
            &[RuleSet::in_fns("hot-loop", HOT_LOOP_RULES, &["step"])],
        );
        assert_eq!(rules_of(&findings), vec![("panic-path", 2)]);
    }

    #[test]
    fn panic_path_ignores_types_attributes_and_literals() {
        let text = "#[derive(Debug)]\npub struct S {\n    buf: [u8; 4],\n}\n\
                    fn step(s: &mut [u64]) {\n    let a = [1, 2];\n    \
                    for x in s.iter_mut() { *x += a.len() as u64; }\n}\n";
        let findings = analyze_source(
            FileClass::LibrarySource,
            text,
            &[RuleSet::in_fns("hot-loop", HOT_LOOP_RULES, &["step"])],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn panic_path_catches_macros_and_slicing() {
        let text = "fn step(xs: &[u64]) {\n    if xs.is_empty() { panic!(\"no\"); }\n    \
                    let _ = &xs[1..];\n}\n";
        let findings = analyze_source(
            FileClass::LibrarySource,
            text,
            &[RuleSet::in_fns("hot-loop", HOT_LOOP_RULES, &["step"])],
        );
        assert_eq!(
            rules_of(&findings),
            vec![("panic-path", 2), ("panic-path", 3)]
        );
    }
}
