//! The line-and-token scanner behind `cargo xtask check`.
//!
//! Operates on one file at a time: every line is sanitized (string and
//! char literals blanked, comments split off), `#[cfg(test)]` regions are
//! tracked by brace depth, and the sanitized code of non-test lines is
//! matched against the rule catalog in [`crate::rules`].
//!
//! Known limitations, by design (it is a lexer, not a parser):
//! * `#[cfg(test)] mod tests;` pointing at a separate file does not mark
//!   that file as test code — keep test modules inline, as this workspace
//!   does.
//! * The float-equality check is a heuristic: it fires when a `==`/`!=`
//!   operand contains a float literal or an `f32`/`f64` token. Intentional
//!   exact comparisons (IEEE sentinels like `delta == 0.0`) should carry
//!   an `// xtask-allow: float-eq` directive with a justifying comment.

use crate::rules::{Rule, CRATE_HEADERS, FLOAT_EQ, RULES};

/// How a file participates in the lint pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Root module of a library crate: token rules plus header checks.
    LibraryRoot,
    /// Any other library-crate module: token rules only.
    LibrarySource,
}

/// One lint hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule name (matches `xtask-allow` directives).
    pub rule: &'static str,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// One-line rationale.
    pub message: &'static str,
}

/// A line split into sanitized code (strings/chars blanked) and the body
/// of its `//` comment, if any.
struct SplitLine {
    code: String,
    comment: String,
}

/// Per-file scan state.
struct ScanState {
    depth: i64,
    /// `Some(d)`: inside a `#[cfg(test)]` item; leaves when depth returns
    /// to `d`.
    test_end_depth: Option<i64>,
    /// Saw `#[cfg(test)]`, waiting for the item's opening brace.
    pending_cfg_test: bool,
    in_block_comment: bool,
}

/// Scans one file's source text against the base rule catalog, returning
/// all findings in line order.
pub fn scan_source(class: FileClass, text: &str) -> Vec<Finding> {
    scan_source_with(class, text, &[])
}

/// Like [`scan_source`], but also applies `extra_rules` — the mechanism
/// behind scoped rule sets such as [`crate::rules::HOT_PATH_RULES`],
/// which only apply to files the caller selects.
pub fn scan_source_with(class: FileClass, text: &str, extra_rules: &[Rule]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut state = ScanState {
        depth: 0,
        test_end_depth: None,
        pending_cfg_test: false,
        in_block_comment: false,
    };
    let mut carried_allows: Vec<String> = Vec::new();
    let mut file_allows: Vec<String> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let split = sanitize(raw_line, &mut state.in_block_comment);
        let mut allows = parse_allows(&split.comment);
        file_allows.extend(allows.iter().cloned());
        allows.extend(carried_allows.iter().cloned());

        let code = split.code.as_str();
        let trimmed_code = code.trim();

        if state.test_end_depth.is_none() && trimmed_code.contains("#[cfg(test)]") {
            state.pending_cfg_test = true;
        }

        let in_test = state.test_end_depth.is_some();
        if !in_test && !state.pending_cfg_test {
            check_token_rules(code, raw_line, line_no, &allows, extra_rules, &mut findings);
            check_float_eq(code, raw_line, line_no, &allows, &mut findings);
        }

        // Resolve a pending #[cfg(test)]: the next brace opens the test
        // item; a braceless statement (e.g. `#[cfg(test)] use x;`) ends
        // the pendency without opening a region.
        if state.pending_cfg_test && state.test_end_depth.is_none() {
            if code.contains('{') {
                state.test_end_depth = Some(state.depth);
                state.pending_cfg_test = false;
            } else if code.contains(';') {
                state.pending_cfg_test = false;
            }
        }

        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        state.depth += opens - closes;
        if let Some(end_depth) = state.test_end_depth {
            if state.depth <= end_depth {
                state.test_end_depth = None;
            }
        }

        // A directive also covers the next code line, carrying through any
        // comment-only lines in between, so a standalone
        // `// xtask-allow: rule` comment (possibly continued over several
        // comment lines) can precede the offending statement.
        let own = parse_allows(&split.comment);
        if trimmed_code.is_empty() && !split.comment.is_empty() {
            carried_allows.extend(own);
        } else {
            carried_allows = own;
        }
    }

    if class == FileClass::LibraryRoot && !file_allows.iter().any(|a| a == CRATE_HEADERS) {
        for header in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
            if !text.contains(header) {
                findings.push(Finding {
                    rule: CRATE_HEADERS,
                    line: 1,
                    excerpt: format!("missing `{header}`"),
                    message: "library crate roots must forbid unsafe code and warn on \
                              undocumented public items",
                });
            }
        }
    }

    findings
}

fn check_token_rules(
    code: &str,
    raw_line: &str,
    line_no: usize,
    allows: &[String],
    extra_rules: &[Rule],
    findings: &mut Vec<Finding>,
) {
    for rule in RULES.iter().chain(extra_rules) {
        if allows.iter().any(|a| a == rule.name) {
            continue;
        }
        if rule.needles.iter().any(|needle| code.contains(needle)) {
            findings.push(Finding {
                rule: rule.name,
                line: line_no,
                excerpt: raw_line.trim().to_owned(),
                message: rule.message,
            });
        }
    }
}

fn check_float_eq(
    code: &str,
    raw_line: &str,
    line_no: usize,
    allows: &[String],
    findings: &mut Vec<Finding>,
) {
    if allows.iter().any(|a| a == FLOAT_EQ) {
        return;
    }
    if has_float_comparison(code) {
        findings.push(Finding {
            rule: FLOAT_EQ,
            line: line_no,
            excerpt: raw_line.trim().to_owned(),
            message: "exact float comparison is almost always a tolerance bug; compare \
                      |a - b| against an epsilon (or xtask-allow an intentional IEEE \
                      sentinel check)",
        });
    }
}

/// Detects `==` / `!=` where either operand looks like a float.
fn has_float_comparison(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let is_eq = bytes[i] == b'=' && bytes[i + 1] == b'=';
        let is_ne = bytes[i] == b'!' && bytes[i + 1] == b'=';
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Exclude compound operators: `<=`, `>=`, `+=`, `===`(never valid
        // rust, but cheap to skip), and the char after the operator being
        // another `=`.
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = bytes.get(i + 2).copied().unwrap_or(b' ');
        if is_eq && (b"<>!=+-*/%^&|".contains(&prev) || next == b'=') {
            i += 2;
            continue;
        }
        if is_ne && next == b'=' {
            i += 2;
            continue;
        }
        let left = operand_slice(&code[..i], true);
        let right = operand_slice(&code[i + 2..], false);
        if looks_float(left) || looks_float(right) {
            return true;
        }
        i += 2;
    }
    false
}

/// Extracts the text of one comparison operand, stopping at expression
/// delimiters.
fn operand_slice(s: &str, is_left: bool) -> &str {
    const DELIMS: &[char] = &['(', ')', '{', '}', ',', ';', '&', '|', '[', ']'];
    if is_left {
        match s.rfind(DELIMS) {
            Some(pos) => &s[pos + 1..],
            None => s,
        }
    } else {
        match s.find(DELIMS) {
            Some(pos) => &s[..pos],
            None => s,
        }
    }
}

/// Whether an operand contains a float literal or an `f32`/`f64` token.
fn looks_float(operand: &str) -> bool {
    let bytes = operand.as_bytes();
    for i in 1..bytes.len() {
        if bytes[i] == b'.' && bytes[i - 1].is_ascii_digit() {
            let next = bytes.get(i + 1).copied().unwrap_or(b' ');
            // `1.5`, `1.` — but not `1..x` (range) or tuple field access
            // chains, which have a non-digit before the dot.
            if next.is_ascii_digit() {
                return true;
            }
            if next != b'.' && !next.is_ascii_alphabetic() && next != b'_' {
                return true;
            }
        }
    }
    operand.contains("f64") || operand.contains("f32")
}

/// Parses `xtask-allow: a, b` directives out of a comment body.
fn parse_allows(comment: &str) -> Vec<String> {
    let Some(pos) = comment.find("xtask-allow:") else {
        return Vec::new();
    };
    comment[pos + "xtask-allow:".len()..]
        .split(',')
        .map(|part| {
            // Keep the leading rule-name token; anything after it (e.g. a
            // parenthesized justification) is free-form commentary.
            let trimmed = part.trim();
            let end = trimmed
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                .unwrap_or(trimmed.len());
            trimmed[..end].to_owned()
        })
        .filter(|name| !name.is_empty())
        .collect()
}

/// Blanks string/char literals, splits off `//` comments, and tracks
/// `/* */` block comments across lines.
fn sanitize(line: &str, in_block_comment: &mut bool) -> SplitLine {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if *in_block_comment {
            if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                comment = chars[i..].iter().collect();
                break;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                // Skip the string literal's body (escapes handled; raw
                // strings degrade to best-effort).
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                code.push('"');
                code.push('"');
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // chars; a lifetime never has a closing quote.
                let close = if chars.get(i + 1) == Some(&'\\') {
                    chars.get(i + 3) == Some(&'\'')
                } else {
                    chars.get(i + 2) == Some(&'\'')
                };
                if close {
                    let skip = if chars.get(i + 1) == Some(&'\\') {
                        4
                    } else {
                        3
                    };
                    code.push_str("' '");
                    i += skip;
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    SplitLine { code, comment }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<Finding> {
        scan_source(FileClass::LibrarySource, text)
    }

    #[test]
    fn clean_code_has_no_findings() {
        let findings = scan("fn f(rng: &mut StdRng) -> u64 {\n    rng.next()\n}\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn needles_inside_strings_do_not_fire() {
        let findings = scan("fn f() { let s = \"do not call thread_rng here\"; }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn needles_inside_comments_do_not_fire() {
        let findings = scan("// thread_rng would be bad\n/* Instant::now too */\nfn f() {}\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let text = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                    Some(1).unwrap(); }\n}\n";
        let findings = scan(text);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn code_after_cfg_test_region_is_checked_again() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\
                    fn after() { y.unwrap(); }\n";
        let findings = scan(text);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
        assert_eq!(findings[0].rule, "unwrap");
    }

    #[test]
    fn same_line_allow_suppresses() {
        let findings = scan("fn f() { x.unwrap(); } // xtask-allow: unwrap\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn preceding_line_allow_suppresses() {
        let findings = scan("// xtask-allow: unwrap\nfn f() { x.unwrap(); }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_carries_through_comment_continuation_lines() {
        let text = "// xtask-allow: unwrap (long justification\n// continued here)\n\
                    fn f() { x.unwrap(); }\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn allow_does_not_carry_past_code_lines() {
        let text = "// xtask-allow: unwrap\nfn ok() {}\nfn f() { x.unwrap(); }\n";
        let findings = scan(text);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn allow_for_another_rule_does_not_suppress() {
        let findings = scan("fn f() { x.unwrap(); } // xtask-allow: wall-clock\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unwrap");
    }

    #[test]
    fn float_eq_detected_both_sides() {
        assert_eq!(scan("fn f() { let ok = a == 0.5; }\n")[0].rule, "float-eq");
        assert_eq!(scan("fn f() { let ok = 0.5 != b; }\n")[0].rule, "float-eq");
        assert_eq!(
            scan("fn f() { let ok = x as f64 == y; }\n")[0].rule,
            "float-eq"
        );
    }

    #[test]
    fn integer_eq_is_fine() {
        assert!(scan("fn f() { let ok = a == 5; }\n").is_empty());
        assert!(scan("fn f() { let ok = a <= 5.0; }\n").is_empty());
        assert!(scan("fn f() { for i in 0..=n {} }\n").is_empty());
    }

    #[test]
    fn headers_checked_only_for_roots() {
        let text = "pub fn f() {}\n";
        assert!(scan_source(FileClass::LibrarySource, text).is_empty());
        let root = scan_source(FileClass::LibraryRoot, text);
        assert_eq!(root.len(), 2);
        assert!(root.iter().all(|f| f.rule == "crate-headers"));
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        assert!(scan_source(FileClass::LibraryRoot, good).is_empty());
    }

    #[test]
    fn directive_parsing_handles_lists() {
        let allows = parse_allows("// xtask-allow: unwrap, float-eq (sentinel)");
        assert_eq!(allows, vec!["unwrap".to_owned(), "float-eq".to_owned()]);
    }
}
