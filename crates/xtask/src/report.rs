//! The `np-lint/v1` report: a byte-stable JSONL rendering of lint
//! findings, plus the text renderer and the baseline differ behind
//! `cargo xtask lint --baseline`.
//!
//! Format, hand-rolled like the other np-* artifact writers:
//!
//! ```text
//! {"schema":"np-lint/v1","files":27,"findings":2}
//! {"file":"crates/engine/src/world.rs","line":443,"rule":"panic-path",...}
//! ```
//!
//! One header line, then one line per finding, sorted by
//! `(file, line, rule)` — the report for a given workspace state is
//! byte-identical across runs and machines, so CI can `diff` two runs or
//! a committed baseline directly.

use std::collections::BTreeSet;

use crate::json::{self, Json};
use crate::scanner::Finding;

/// The report schema name/version.
pub const SCHEMA: &str = "np-lint/v1";

/// One finding attributed to a workspace-relative file.
pub type Entry = (String, Finding);

/// Sorts entries into the canonical report order: file, line, rule.
pub fn sort_entries(entries: &mut [Entry]) {
    entries.sort_by(|(fa, a), (fb, b)| {
        (fa.as_str(), a.line, a.rule).cmp(&(fb.as_str(), b.line, b.rule))
    });
}

/// Renders the canonical JSONL report. Callers must pass entries already
/// sorted with [`sort_entries`] (the renderer asserts nothing and writes
/// what it is given — sorting is the caller's contract).
pub fn render_jsonl(entries: &[Entry], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":{},\"files\":{},\"findings\":{}}}\n",
        json::escape(SCHEMA),
        files_scanned,
        entries.len()
    ));
    for (file, f) in entries {
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"severity\":{},\"scope\":{},\"message\":{},\"excerpt\":{}}}\n",
            json::escape(file),
            f.line,
            json::escape(f.rule),
            json::escape(f.severity.name()),
            json::escape(f.scope),
            json::escape(f.message),
            json::escape(&f.excerpt),
        ));
    }
    out
}

/// Renders the human-readable report.
pub fn render_text(entries: &[Entry], files_scanned: usize) -> String {
    let mut out = String::new();
    for (file, f) in entries {
        out.push_str(&format!(
            "{}:{}: [{}] {} ({}): {}\n    {}\n",
            file,
            f.line,
            f.severity.name(),
            f.rule,
            f.scope,
            f.message,
            f.excerpt
        ));
    }
    if entries.is_empty() {
        out.push_str(&format!("xtask lint: {files_scanned} files clean\n"));
    } else {
        let denies = entries
            .iter()
            .filter(|(_, f)| f.severity == crate::rules::Severity::Deny)
            .count();
        out.push_str(&format!(
            "xtask lint: {} finding(s) ({} deny, {} warn) in {} files \
             (suppress intentional ones with `// xtask-allow: <rule>`)\n",
            entries.len(),
            denies,
            entries.len() - denies,
            files_scanned
        ));
    }
    out
}

/// A baseline: the identity of every finding a previous report recorded.
/// Identity is `(file, rule, excerpt)` — *not* the line number, so pure
/// line drift (code added above a known finding) does not churn the
/// baseline.
pub type Baseline = BTreeSet<(String, String, String)>;

/// Parses an np-lint/v1 JSONL report into a [`Baseline`]. An empty (or
/// whitespace-only) file is a valid empty baseline.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut set = Baseline::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("baseline line {}: {e}", idx + 1))?;
        if idx == 0 {
            match v.get("schema").and_then(Json::as_str) {
                Some(SCHEMA) => continue,
                Some(other) => {
                    return Err(format!(
                        "baseline line 1: schema {other:?}, expected {SCHEMA:?}"
                    ))
                }
                None => return Err("baseline line 1: missing schema header".to_owned()),
            }
        }
        let field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("baseline line {}: missing {key:?}", idx + 1))
        };
        set.insert((field("file")?, field("rule")?, field("excerpt")?));
    }
    Ok(set)
}

/// The entries not present in `baseline` — the findings that would be new
/// if the current report were committed.
pub fn new_since<'a>(entries: &'a [Entry], baseline: &Baseline) -> Vec<&'a Entry> {
    entries
        .iter()
        .filter(|(file, f)| {
            !baseline.contains(&(file.clone(), f.rule.to_owned(), f.excerpt.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn entry(file: &str, line: usize, rule: &'static str) -> Entry {
        (
            file.to_owned(),
            Finding {
                rule,
                severity: Severity::Deny,
                scope: "library",
                line,
                excerpt: format!("offending line {line}"),
                message: "msg",
            },
        )
    }

    #[test]
    fn jsonl_is_sorted_and_stable() {
        let mut entries = vec![
            entry("b.rs", 2, "unwrap"),
            entry("a.rs", 9, "wall-clock"),
            entry("a.rs", 9, "protocol-instant"),
        ];
        sort_entries(&mut entries);
        let one = render_jsonl(&entries, 3);
        let two = render_jsonl(&entries, 3);
        assert_eq!(one, two);
        let lines: Vec<&str> = one.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"schema\":\"np-lint/v1\""));
        assert!(lines[1].contains("\"file\":\"a.rs\""));
        assert!(lines[1].contains("\"rule\":\"protocol-instant\""));
        assert!(lines[2].contains("\"rule\":\"wall-clock\""));
        assert!(lines[3].contains("\"file\":\"b.rs\""));
    }

    #[test]
    fn report_round_trips_through_baseline() {
        let mut entries = vec![entry("a.rs", 1, "unwrap"), entry("b.rs", 7, "float-eq")];
        sort_entries(&mut entries);
        let report = render_jsonl(&entries, 2);
        let baseline = parse_baseline(&report).expect("parse");
        assert!(new_since(&entries, &baseline).is_empty());
        let extra = entry("c.rs", 3, "unwrap");
        let mut more = entries.clone();
        more.push(extra.clone());
        let fresh = new_since(&more, &baseline);
        assert_eq!(fresh, vec![&extra]);
    }

    #[test]
    fn baseline_ignores_line_drift() {
        let mut entries = vec![entry("a.rs", 1, "unwrap")];
        sort_entries(&mut entries);
        let baseline = parse_baseline(&render_jsonl(&entries, 1)).expect("parse");
        // Same finding, shifted — but the excerpt moved with it, so it
        // must still match the baseline identity.
        let mut shifted = entries.clone();
        shifted[0].1.line = 41;
        shifted[0].1.excerpt = "offending line 1".to_owned();
        assert!(new_since(&shifted, &baseline).is_empty());
    }

    #[test]
    fn empty_baseline_parses() {
        assert!(parse_baseline("").expect("empty").is_empty());
        assert!(parse_baseline("\n\n").expect("blank").is_empty());
    }

    #[test]
    fn bad_schema_is_rejected() {
        assert!(parse_baseline("{\"schema\":\"np-bench/v1\"}\n").is_err());
    }
}
