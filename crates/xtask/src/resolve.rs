//! The import-graph resolver: follows `use` declarations — grouped,
//! nested, renamed — so path-based rules see through alias indirection.
//!
//! The legacy needle scanner's documented false negatives were all import
//! shapes: `use std::time::{Duration, Instant}` never contains the
//! substring `time::Instant` on the line that *uses* `Instant`, and
//! `use std::time::Instant as Clock` hides the name entirely. This module
//! parses every `use` tree out of the token stream into an alias → full
//! path map, so `Clock::now()` resolves to `std::time::Instant::now` and
//! the rule fires where the old scanner went blind.
//!
//! Resolution is deliberately an over-approximation: alias maps are
//! file-global (Rust's per-module scoping is ignored) and a name imported
//! twice matches if *any* of its imports matches. For a determinism
//! linter, strict-but-noisy beats lenient-but-blind; intentional hits are
//! silenced with `// xtask-allow`, and stale silences are themselves
//! findings.

use std::collections::BTreeMap;

use crate::lexer::{Regions, Tok, TokKind};

/// One name brought into scope by a `use` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Import {
    /// The local name (the rename after `as`, else the last segment).
    pub alias: String,
    /// The full imported path, segment by segment.
    pub path: Vec<String>,
    /// 1-based line of the segment naming this import.
    pub line: usize,
}

/// All imports of a file, indexed for alias resolution.
#[derive(Clone, Debug, Default)]
pub struct ImportMap {
    /// Every import, in declaration order.
    pub imports: Vec<Import>,
    by_alias: BTreeMap<String, Vec<usize>>,
    /// Token-index ranges `[lo, hi)` covered by `use` declarations, so
    /// the scanner can skip their path chains (imports are checked once,
    /// as declarations, not re-matched as expressions).
    pub use_ranges: Vec<(usize, usize)>,
}

impl ImportMap {
    /// The full paths the local name `alias` may refer to.
    pub fn resolve(&self, alias: &str) -> impl Iterator<Item = &Import> {
        self.by_alias
            .get(alias)
            .into_iter()
            .flatten()
            .map(|&i| &self.imports[i])
    }

    /// Whether token index `ti` lies inside a `use` declaration.
    pub fn in_use_decl(&self, ti: usize) -> bool {
        self.use_ranges.iter().any(|&(lo, hi)| lo <= ti && ti < hi)
    }
}

/// Collects the import map from a token stream. Imports inside
/// `#[cfg(test)]` regions are skipped — test code is exempt from every
/// rule, and its aliases must not leak findings into library code.
pub fn collect(toks: &[Tok], regions: &Regions) -> ImportMap {
    let mut map = ImportMap::default();
    let sig: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut s = 0usize;
    while s < sig.len() {
        let ti = sig[s];
        if toks[ti].kind == TokKind::Ident && toks[ti].text == "use" && !regions.in_test[ti] {
            let start = ti;
            let mut t = s + 1;
            let mut prefix: Vec<String> = Vec::new();
            parse_tree(toks, &sig, &mut t, &mut prefix, &mut map.imports);
            // Consume through the terminating `;` (parse_tree stops at it
            // or at anything it cannot read).
            while t < sig.len()
                && !(toks[sig[t]].kind == TokKind::Punct && toks[sig[t]].text == ";")
            {
                t += 1;
            }
            let end = if t < sig.len() {
                sig[t] + 1
            } else {
                toks.len()
            };
            map.use_ranges.push((start, end));
            s = t + 1;
        } else {
            s += 1;
        }
    }
    for (i, imp) in map.imports.iter().enumerate() {
        map.by_alias.entry(imp.alias.clone()).or_default().push(i);
    }
    map
}

/// Recursive-descent parser for one `use` tree level. `t` indexes into
/// `sig`; `prefix` is the path accumulated so far.
fn parse_tree(
    toks: &[Tok],
    sig: &[usize],
    t: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<Import>,
) {
    let depth_at_entry = prefix.len();
    loop {
        let Some(&ti) = sig.get(*t) else { return };
        let tok = &toks[ti];
        match (tok.kind, tok.text.as_str()) {
            (TokKind::Punct, "{") => {
                *t += 1;
                loop {
                    parse_tree(toks, sig, t, prefix, out);
                    match sig.get(*t).map(|&i| toks[i].text.as_str()) {
                        Some(",") => *t += 1,
                        Some("}") => {
                            *t += 1;
                            break;
                        }
                        _ => return, // malformed or end of stream
                    }
                }
                prefix.truncate(depth_at_entry);
                return;
            }
            (TokKind::Punct, "*") => {
                // Glob import: nothing nameable to record.
                *t += 1;
                prefix.truncate(depth_at_entry);
                return;
            }
            (TokKind::Ident, "self") if !prefix.is_empty() => {
                // `a::b::{self, c}` imports `b` itself.
                record(prefix, prefix.last().cloned(), tok.line, out);
                *t += 1;
                prefix.truncate(depth_at_entry);
                return;
            }
            (TokKind::Ident, seg) if seg != "as" => {
                prefix.push(seg.to_owned());
                *t += 1;
                match sig.get(*t).map(|&i| (toks[i].kind, toks[i].text.as_str())) {
                    Some((TokKind::Punct, "::")) => {
                        *t += 1;
                        continue;
                    }
                    Some((TokKind::Ident, "as")) => {
                        *t += 1;
                        if let Some(&ni) = sig.get(*t) {
                            if toks[ni].kind == TokKind::Ident {
                                record(prefix, Some(toks[ni].text.clone()), toks[ni].line, out);
                                *t += 1;
                            }
                        }
                        prefix.truncate(depth_at_entry);
                        return;
                    }
                    _ => {
                        record(prefix, Some(seg.to_owned()), tok.line, out);
                        prefix.truncate(depth_at_entry);
                        return;
                    }
                }
            }
            _ => {
                prefix.truncate(depth_at_entry);
                return;
            }
        }
    }
}

fn record(path: &[String], alias: Option<String>, line: usize, out: &mut Vec<Import>) {
    let Some(alias) = alias else { return };
    if path.is_empty() {
        return;
    }
    out.push(Import {
        alias,
        path: path.to_vec(),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, regions};

    fn imports(text: &str) -> Vec<(String, String)> {
        let lexed = lex(text);
        let r = regions(&lexed.toks);
        collect(&lexed.toks, &r)
            .imports
            .into_iter()
            .map(|i| (i.alias, i.path.join("::")))
            .collect()
    }

    #[test]
    fn plain_import() {
        assert_eq!(
            imports("use std::time::Instant;\n"),
            vec![("Instant".into(), "std::time::Instant".into())]
        );
    }

    #[test]
    fn grouped_import() {
        assert_eq!(
            imports("use std::time::{Duration, Instant};\n"),
            vec![
                ("Duration".into(), "std::time::Duration".into()),
                ("Instant".into(), "std::time::Instant".into()),
            ]
        );
    }

    #[test]
    fn renamed_import() {
        assert_eq!(
            imports("use std::time::Instant as Clock;\n"),
            vec![("Clock".into(), "std::time::Instant".into())]
        );
    }

    #[test]
    fn nested_groups_and_self() {
        assert_eq!(
            imports("use a::{b::{self, c, d as e}, f};\n"),
            vec![
                ("b".into(), "a::b".into()),
                ("c".into(), "a::b::c".into()),
                ("e".into(), "a::b::d".into()),
                ("f".into(), "a::f".into()),
            ]
        );
    }

    #[test]
    fn glob_is_ignored() {
        assert_eq!(imports("use super::*;\n"), Vec::new());
    }

    #[test]
    fn cfg_test_imports_are_skipped() {
        let text = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert_eq!(imports(text), Vec::new());
    }

    #[test]
    fn use_ranges_cover_declarations() {
        let text = "use a::b;\nfn f() { b::c(); }\n";
        let lexed = lex(text);
        let r = regions(&lexed.toks);
        let map = collect(&lexed.toks, &r);
        let b_decl = lexed
            .toks
            .iter()
            .position(|t| t.text == "b")
            .expect("b in use");
        assert!(map.in_use_decl(b_decl));
        let b_expr = lexed.toks.iter().rposition(|t| t.text == "b").expect("b");
        assert!(!map.in_use_decl(b_expr));
    }

    #[test]
    fn resolve_follows_alias() {
        let lexed = lex("use std::time::Instant as Clock;\n");
        let r = regions(&lexed.toks);
        let map = collect(&lexed.toks, &r);
        let paths: Vec<String> = map.resolve("Clock").map(|i| i.path.join("::")).collect();
        assert_eq!(paths, vec!["std::time::Instant".to_owned()]);
    }
}
