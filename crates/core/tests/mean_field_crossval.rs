//! Distributional cross-validation of the mean-field counts backend
//! against the per-agent engine (ISSUE 8 acceptance gate).
//!
//! The two backends share no RNG layout, so trajectories differ per seed;
//! what must agree is the *law* of the trajectory. For each protocol we
//! collect per-seed summary statistics — the correct-opinion count at
//! structurally meaningful probe rounds and the first-consensus round —
//! over ≥64 seeds from both backends and demand a two-sample KS p-value
//! above 0.01 ([`np_stats::ks::ks2_p_value`]; conservative on discrete
//! data). The statistics are chosen where the distributions have spread:
//! probe rounds sit right after weak formation (SF) and the first/second
//! memory flush (SSF), where a backend transcription error (wrong
//! boundary round, wrong tie handling, wrong conditional law) shifts the
//! distribution by Θ(σ) or more and drives p below any threshold.
//!
//! `n = 256` runs in tier-1; `n = 4096` is `#[ignore]` and exercised in
//! release mode by `scripts/ci.sh` (the SSF flush law costs
//! `O(σ_S·σ_M₃)` per flush, which is release-build territory at 4096).
//!
//! The exact-channel cross-check lives in
//! `crates/baselines/tests/mean_field_crossval.rs` (h-majority, whose
//! per-agent port is cheap under `ChannelKind::Exact`).

use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_engine::channel::ChannelKind;
use np_engine::counts::CountsWorld;
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;
use np_stats::ks::ks2_p_value;

const SEEDS: u64 = 64;
const P_THRESHOLD: f64 = 0.01;

/// Per-seed summary: correct counts at the probe rounds, plus the
/// 1-based first-consensus round (budget + 1 when consensus was never
/// observed within the recorded horizon).
struct RunStats {
    probes: Vec<f64>,
    settle: f64,
}

fn settle_round(correct_by_round: &[usize], n: usize) -> f64 {
    correct_by_round
        .iter()
        .position(|&c| c == n)
        .map_or(correct_by_round.len() as f64 + 1.0, |idx| idx as f64 + 1.0)
}

fn sf_setup(n: usize) -> (PopulationConfig, SfParams, NoiseMatrix) {
    let config = PopulationConfig::new(n, 0, 1, n).expect("valid population");
    let params = SfParams::derive(&config, 0.2, 1.0).expect("valid params");
    let noise = NoiseMatrix::uniform(2, 0.2).expect("valid noise");
    (config, params, noise)
}

/// SF probe rounds: right after weak formation (round 2T) and after the
/// first boosting sub-phase — where the correct count is mid-flight.
fn sf_probe_rounds(params: &SfParams) -> Vec<u64> {
    let weak_round = 2 * params.phase_len();
    vec![weak_round, weak_round + params.subphase_len()]
}

fn sf_stats_per_agent(n: usize, seed: u64) -> RunStats {
    let (config, params, noise) = sf_setup(n);
    let probes = sf_probe_rounds(&params);
    let mut world = World::new(
        &SourceFilter::new(params),
        config,
        &noise,
        ChannelKind::Aggregated,
        seed,
    )
    .expect("valid world");
    world.record_series();
    world.run(params.total_rounds());
    let series = world.series().expect("series recorded");
    let correct: Vec<usize> = series.counts(Opinion::One);
    RunStats {
        probes: probes
            .iter()
            .map(|&r| correct[r as usize - 1] as f64)
            .collect(),
        settle: settle_round(&correct, n),
    }
}

fn sf_stats_mean_field(n: usize, seed: u64) -> RunStats {
    let (config, params, noise) = sf_setup(n);
    let probes = sf_probe_rounds(&params);
    let mut world =
        CountsWorld::new(&SourceFilter::new(params), config, &noise, seed).expect("valid world");
    world.record_series();
    world.run(params.total_rounds());
    let series = world.series().expect("series recorded");
    let correct: Vec<usize> = series.counts(Opinion::One);
    RunStats {
        probes: probes
            .iter()
            .map(|&r| correct[r as usize - 1] as f64)
            .collect(),
        settle: settle_round(&correct, n),
    }
}

fn ssf_setup(n: usize) -> (PopulationConfig, SsfParams, NoiseMatrix) {
    let config = PopulationConfig::new(n, 0, 1, n).expect("valid population");
    let params = SsfParams::derive(&config, 0.1, 8.0).expect("valid params");
    let noise = NoiseMatrix::uniform(4, 0.1).expect("valid noise");
    (config, params, noise)
}

/// SSF statistics come from the trace so the weak-opinion accuracy at the
/// first flush is validated too (it exercises the joint, not just the
/// opinion marginal).
fn ssf_stats<FS>(n: usize, run: FS) -> RunStats
where
    FS: FnOnce(u64) -> (Vec<usize>, Vec<usize>),
{
    let (_, params, _) = ssf_setup(n);
    let interval = params.update_interval();
    let (correct, weak_correct) = run(3 * interval);
    RunStats {
        probes: vec![
            correct[interval as usize - 1] as f64,
            correct[2 * interval as usize - 1] as f64,
            weak_correct[interval as usize - 1] as f64,
        ],
        settle: settle_round(&correct, n),
    }
}

fn ssf_stats_per_agent(n: usize, seed: u64) -> RunStats {
    let (config, params, noise) = ssf_setup(n);
    ssf_stats(n, move |rounds| {
        let mut world = World::new(
            &SelfStabilizingSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .expect("valid world");
        world.record_trace();
        world.run(rounds);
        let trace = world.trace().expect("trace recorded");
        (
            trace.rounds().iter().map(|m| m.correct).collect(),
            trace.rounds().iter().map(|m| m.weak_correct).collect(),
        )
    })
}

fn ssf_stats_mean_field(n: usize, seed: u64) -> RunStats {
    let (config, params, noise) = ssf_setup(n);
    ssf_stats(n, move |rounds| {
        let mut world = CountsWorld::new(
            &SelfStabilizingSourceFilter::new(params),
            config,
            &noise,
            seed,
        )
        .expect("valid world");
        world.record_trace();
        world.run(rounds);
        let trace = world.trace().expect("trace recorded");
        (
            trace.iter().map(|m| m.correct).collect(),
            trace.iter().map(|m| m.weak_correct).collect(),
        )
    })
}

/// Runs both backends over the seed battery and KS-compares every
/// statistic.
fn assert_distributions_match<A, B>(label: &str, per_agent: A, mean_field: B)
where
    A: Fn(u64) -> RunStats,
    B: Fn(u64) -> RunStats,
{
    let agent_runs: Vec<RunStats> = (0..SEEDS).map(&per_agent).collect();
    let field_runs: Vec<RunStats> = (0..SEEDS).map(|s| mean_field(1000 + s)).collect();
    let num_probes = agent_runs[0].probes.len();
    for probe in 0..num_probes {
        let xs: Vec<f64> = agent_runs.iter().map(|r| r.probes[probe]).collect();
        let ys: Vec<f64> = field_runs.iter().map(|r| r.probes[probe]).collect();
        let p = ks2_p_value(&xs, &ys).expect("valid samples");
        assert!(
            p > P_THRESHOLD,
            "{label}: probe {probe} KS p = {p:.4} (per-agent {:?}… vs mean-field {:?}…)",
            &xs[..4.min(xs.len())],
            &ys[..4.min(ys.len())],
        );
    }
    let xs: Vec<f64> = agent_runs.iter().map(|r| r.settle).collect();
    let ys: Vec<f64> = field_runs.iter().map(|r| r.settle).collect();
    let p = ks2_p_value(&xs, &ys).expect("valid samples");
    assert!(p > P_THRESHOLD, "{label}: settle-round KS p = {p:.4}");
}

#[test]
fn sf_mean_field_matches_per_agent_n256() {
    assert_distributions_match(
        "SF n=256",
        |seed| sf_stats_per_agent(256, seed),
        |seed| sf_stats_mean_field(256, seed),
    );
}

#[test]
fn ssf_mean_field_matches_per_agent_n256() {
    assert_distributions_match(
        "SSF n=256",
        |seed| ssf_stats_per_agent(256, seed),
        |seed| ssf_stats_mean_field(256, seed),
    );
}

#[test]
#[ignore = "release-build scale; run by scripts/ci.sh with --include-ignored"]
fn sf_mean_field_matches_per_agent_n4096() {
    assert_distributions_match(
        "SF n=4096",
        |seed| sf_stats_per_agent(4096, seed),
        |seed| sf_stats_mean_field(4096, seed),
    );
}

#[test]
#[ignore = "release-build scale; run by scripts/ci.sh with --include-ignored"]
fn ssf_mean_field_matches_per_agent_n4096() {
    assert_distributions_match(
        "SSF n=4096",
        |seed| ssf_stats_per_agent(4096, seed),
        |seed| ssf_stats_mean_field(4096, seed),
    );
}
