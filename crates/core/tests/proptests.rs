//! Property-based tests for the protocol crate: schedule invariants,
//! state-machine bookkeeping under arbitrary observation streams, and the
//! reduction's conservation laws.

use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::{decode, encode, SelfStabilizingSourceFilter};
use noisy_pull::theory;
use np_engine::opinion::Opinion;
use np_engine::population::{PopulationConfig, Role};
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::StreamRng;
use proptest::prelude::*;
use rand::SeedableRng;

fn config(n: usize, h: usize) -> PopulationConfig {
    PopulationConfig::new(n, 0, 1, h).unwrap()
}

proptest! {
    #[test]
    fn sf_schedule_covers_budgets(
        n in 8usize..10_000,
        h in 1usize..512,
        delta in 0.0f64..0.49,
        c1 in 0.1f64..8.0
    ) {
        let cfg = config(n, h);
        let p = SfParams::derive(&cfg, delta, c1).unwrap();
        // Each listening phase delivers at least m messages.
        prop_assert!(p.phase_len() as u128 * h as u128 >= p.m() as u128);
        // Each short sub-phase delivers at least w messages.
        prop_assert!(p.subphase_len() as u128 * h as u128 >= p.w() as u128);
        // Total is the sum of its parts.
        prop_assert_eq!(
            p.total_rounds(),
            2 * p.phase_len() + p.num_short_subphases() * p.subphase_len() + p.final_subphase_len()
        );
    }

    #[test]
    fn sf_m_is_monotone_in_delta_and_c1(
        n in 64usize..4096,
        h in 1usize..64,
        d1 in 0.0f64..0.4,
        bump in 0.001f64..0.05,
        c1 in 0.5f64..4.0
    ) {
        let cfg = config(n, h);
        let lo = SfParams::derive(&cfg, d1, c1).unwrap();
        let hi = SfParams::derive(&cfg, d1 + bump, c1).unwrap();
        prop_assert!(hi.m() >= lo.m());
        let scaled = SfParams::derive(&cfg, d1, c1 * 2.0).unwrap();
        prop_assert!(scaled.m() >= lo.m());
    }

    #[test]
    fn ssf_m_at_least_c1_n(
        n in 16usize..8192,
        delta in 0.0f64..0.24,
        c1 in 0.5f64..8.0
    ) {
        let cfg = config(n, n);
        let p = SsfParams::derive(&cfg, delta, c1).unwrap();
        prop_assert!(p.m() as f64 >= c1 * n as f64 - 1.0);
        prop_assert!(p.update_interval() >= 1);
    }

    #[test]
    fn ssf_encode_decode_roundtrip(tag in any::<bool>(), bit in any::<bool>()) {
        let value = Opinion::from_bool(bit);
        let (t, v) = decode(encode(tag, value));
        prop_assert_eq!(t, tag);
        prop_assert_eq!(v, value);
    }

    /// Feed an SF agent an arbitrary observation stream and check the
    /// bookkeeping invariants the analysis relies on.
    #[test]
    fn sf_agent_bookkeeping_under_arbitrary_observations(
        obs in prop::collection::vec((0u64..20, 0u64..20), 1..120),
        seed in any::<u64>()
    ) {
        let cfg = config(8, 8);
        let params = SfParams::derive(&cfg, 0.1, 1.0).unwrap().with_m(32).unwrap();
        let proto = SourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(seed);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        let phase_len = params.phase_len();
        prop_assert!(agent.weak_opinion().is_none());
        for (i, &(zeros, ones)) in obs.iter().enumerate() {
            let round = i as u64 + 1;
            agent.update(&[zeros, ones], &mut rng);
            // The weak opinion exists exactly once both phases are done.
            prop_assert_eq!(agent.weak_opinion().is_some(), round >= 2 * phase_len);
            if round < phase_len {
                // Still in Phase 0: counter0 untouched.
                prop_assert_eq!(agent.counter0(), 0);
            }
        }
        // Counters only ever count the phase-specific symbol.
        let phase0: u64 = obs.iter().take(phase_len as usize).map(|&(_, o)| o).sum();
        prop_assert_eq!(agent.counter1(), phase0.min(agent.counter1()).max(agent.counter1()));
        if obs.len() as u64 >= phase_len {
            prop_assert_eq!(agent.counter1(), phase0);
        }
    }

    /// SSF memory bookkeeping: size always equals the sum of counts and
    /// never exceeds m + h after an update round.
    #[test]
    fn ssf_agent_memory_never_leaks(
        obs in prop::collection::vec([0u64..10, 0u64..10, 0u64..10, 0u64..10], 1..80),
        m in 8u64..64,
        seed in any::<u64>()
    ) {
        let cfg = config(8, 8);
        let params = SsfParams::derive(&cfg, 0.1, 1.0).unwrap().with_m(m).unwrap();
        let proto = SelfStabilizingSourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(seed);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        for o in &obs {
            let before = agent.memory_size();
            let batch: u64 = o.iter().sum();
            agent.update(o, &mut rng);
            let after = agent.memory_size();
            prop_assert_eq!(after, agent.memory().iter().sum::<u64>());
            // Either accumulated, or flushed by an update round.
            prop_assert!(after == before + batch || after == 0);
            if before + batch > m {
                prop_assert_eq!(after, 0, "threshold crossing must flush");
            }
            prop_assert!(after <= m, "memory retained beyond capacity");
        }
    }

    /// Displays always come from the declared alphabet.
    #[test]
    fn displays_stay_in_alphabet(seed in any::<u64>(), source_bit in any::<bool>()) {
        let cfg = config(8, 8);
        let mut rng = StreamRng::seed_from_u64(seed);
        let sf = SourceFilter::new(SfParams::derive(&cfg, 0.2, 1.0).unwrap());
        let role = if source_bit {
            Role::Source(Opinion::One)
        } else {
            Role::NonSource
        };
        let agent = sf.init_agent(role, &mut rng);
        prop_assert!(agent.display(&mut rng) < sf.alphabet_size());

        let ssf = SelfStabilizingSourceFilter::new(SsfParams::derive(&cfg, 0.1, 1.0).unwrap());
        let agent = ssf.init_agent(role, &mut rng);
        prop_assert!(agent.display(&mut rng) < ssf.alphabet_size());
    }

    #[test]
    fn theory_bounds_are_positive_and_monotone_in_n(
        exp in 6u32..16,
        h in 1usize..64,
        delta in 0.01f64..0.24
    ) {
        let n = 1usize << exp;
        let small = theory::sf_upper_bound_rounds(n, h, 0, 1, delta).unwrap();
        let large = theory::sf_upper_bound_rounds(2 * n, h, 0, 1, delta).unwrap();
        prop_assert!(small > 0.0);
        prop_assert!(large > small);
        let lb_small = theory::lower_bound_rounds(n, h, 1, delta, 2).unwrap();
        let lb_large = theory::lower_bound_rounds(2 * n, h, 1, delta, 2).unwrap();
        prop_assert!(lb_large > lb_small);
        // Upper bound dominates lower bound (same constant conventions).
        prop_assert!(small >= lb_small / 10.0);
        let ssf_small = theory::ssf_upper_bound_rounds(n, h, delta).unwrap();
        let ssf_large = theory::ssf_upper_bound_rounds(2 * n, h, delta).unwrap();
        prop_assert!(ssf_large > ssf_small);
    }

    #[test]
    fn f_delta_stays_in_range_for_random_inputs(d in 2usize..10, frac in 0.0f64..0.999) {
        let delta = frac / d as f64;
        let f = theory::f_delta(d, delta).unwrap();
        prop_assert!((0.0..1.0 / d as f64).contains(&f));
        prop_assert!(f >= delta - 1e-12, "uniformization reduced noise");
    }
}
