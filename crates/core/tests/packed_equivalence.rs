//! Packed-vs-scalar bit-equality matrix: every hand-written
//! `display_chunk_packed` port must produce exactly the symbols of its
//! scalar `display_chunk` — per round, per chunking — and whole
//! trajectories must be invariant across thread counts on the packed hot
//! path. Populations are sized so n % 64 ≠ 0 (ragged final words).

use noisy_pull::columnar::sf::ColumnarSourceFilter;
use noisy_pull::columnar::sf_alt::ColumnarAltSf;
use noisy_pull::columnar::ssf::ColumnarSsf;
use noisy_pull::params::{SfParams, SsfParams};
use np_engine::channel::ChannelKind;
use np_engine::opinion::Opinion;
use np_engine::packed::{chunk_len_for, PackedDisplays};
use np_engine::population::PopulationConfig;
use np_engine::protocol::{ColumnarProtocol, ColumnarState};
use np_engine::streams::RoundStreams;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

const THREAD_MATRIX: [usize; 3] = [1, 2, 7];

/// Packs the state's displays through `display_chunk_packed` under each
/// thread count's chunking, unpacks, and demands bit-equality with the
/// scalar `display_chunk` output.
fn assert_packed_matches_scalar<S: ColumnarState>(state: &S, d: usize, round: u64, label: &str) {
    let n = state.len();
    let streams = RoundStreams::new(977, round);
    let mut scalar = vec![0usize; n];
    state.display_chunk(0..n, &mut scalar, &streams);
    for threads in THREAD_MATRIX {
        let chunk_len = chunk_len_for(n, threads);
        let mut packed = PackedDisplays::new(n, d);
        for mut chunk in packed.chunks_mut(chunk_len) {
            let start = chunk.start();
            let len = chunk.len();
            state.display_chunk_packed(start..start + len, &mut chunk, &streams);
        }
        let mut unpacked = vec![0usize; n];
        packed.unpack_into(&mut unpacked);
        assert_eq!(
            unpacked, scalar,
            "{label}: round {round}, threads {threads}"
        );
        // The popcount histogram agrees with a naive tally of the same
        // symbols.
        let mut hist = vec![0u64; d];
        packed.histogram_into(&mut hist);
        let mut naive = vec![0u64; d];
        for &s in &scalar {
            naive[s] += 1;
        }
        assert_eq!(hist, naive, "{label}: histogram, threads {threads}");
    }
}

/// Drives a world while checking display bit-equality at every round of
/// the prefix, then whole-trajectory thread invariance.
fn check_protocol<P>(proto: &P, config: PopulationConfig, rounds: u64, label: &str)
where
    P: ColumnarProtocol,
{
    let noise = NoiseMatrix::uniform(proto.alphabet_size(), 0.12).unwrap();
    let d = proto.alphabet_size();

    // Per-round display equality along one trajectory.
    let mut world = World::new(proto, config, &noise, ChannelKind::Aggregated, 4242).unwrap();
    for r in 0..rounds {
        assert_packed_matches_scalar(world.state(), d, r, label);
        world.step();
    }
    assert_packed_matches_scalar(world.state(), d, rounds, label);

    // Whole-trajectory thread invariance on the packed hot path.
    let reference: Vec<Opinion> = {
        let mut w = World::new(proto, config, &noise, ChannelKind::Aggregated, 4242).unwrap();
        w.set_threads(1);
        w.run(rounds);
        w.opinions()
    };
    for threads in THREAD_MATRIX {
        let mut w = World::new(proto, config, &noise, ChannelKind::Aggregated, 4242).unwrap();
        w.set_threads(threads);
        w.run(rounds);
        assert_eq!(
            w.opinions(),
            reference,
            "{label}: trajectory, threads {threads}"
        );
    }
}

#[test]
fn sf_packed_displays_match_scalar() {
    let config = PopulationConfig::new(197, 1, 2, 197).unwrap();
    let params = SfParams::derive(&config, 0.12, 1.0).unwrap();
    let rounds = params.total_rounds().min(40);
    check_protocol(&ColumnarSourceFilter::new(params), config, rounds, "SF");
}

#[test]
fn ssf_packed_displays_match_scalar() {
    let config = PopulationConfig::new(197, 1, 3, 197).unwrap();
    let params = SsfParams::derive(&config, 0.12, 1.0).unwrap();
    check_protocol(&ColumnarSsf::new(params), config, 30, "SSF");
}

#[test]
fn sf_alt_packed_displays_match_scalar() {
    let config = PopulationConfig::new(197, 1, 2, 197).unwrap();
    let params = SfParams::derive(&config, 0.12, 1.0).unwrap();
    let rounds = params.total_rounds().min(40);
    check_protocol(&ColumnarAltSf::new(params), config, rounds, "SF-ALT");
}
