//! Adversarial initial-state corruption strategies for the
//! self-stabilization experiments (Theorem 5 / Definition 2).
//!
//! The paper's adversary may set each agent's internal state arbitrarily —
//! planting fake samples in memories, corrupting opinions and clocks — but
//! may not alter roles, preferences, or the agents' knowledge of `n` and
//! the noise matrix. These strategies are applied through
//! [`crate::ssf::SsfAgent::corrupt_state`], which enforces exactly that
//! boundary.

use np_engine::opinion::Opinion;
use np_engine::streams::StreamRng;
use rand::Rng;

use crate::ssf::SsfAgent;

/// A named corruption strategy. `Wrong` below always refers to the
/// complement of the correct opinion, i.e. the worst case for the
/// protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SsfAdversary {
    /// No corruption: clean random initialization (control).
    None,
    /// Every agent starts with the wrong weak opinion and opinion, empty
    /// memory.
    AllWrong,
    /// Every agent's memory is stuffed to capacity with fake source-tagged
    /// messages carrying the wrong value — the strongest "poisoned
    /// history": the very first update round re-derives wrong opinions.
    PoisonedMemory,
    /// Weak opinions, opinions and memory contents are fully random, and
    /// memory *sizes* are random too, desynchronizing every agent's update
    /// rounds (the "corrupted clocks" scenario).
    RandomDesync,
    /// Agents split into two camps: even ids are certain of the wrong
    /// opinion with poisoned memory, odd ids are certain of the correct
    /// one — a polarized configuration that simple copy dynamics cannot
    /// leave.
    SplitBrain,
    /// All agents appear already converged on the *wrong* opinion with
    /// almost-full coherent memories — a fake consensus.
    FakeConsensus,
}

impl SsfAdversary {
    /// Every strategy, for sweep experiments.
    pub const ALL: [SsfAdversary; 6] = [
        SsfAdversary::None,
        SsfAdversary::AllWrong,
        SsfAdversary::PoisonedMemory,
        SsfAdversary::RandomDesync,
        SsfAdversary::SplitBrain,
        SsfAdversary::FakeConsensus,
    ];

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SsfAdversary::None => "none",
            SsfAdversary::AllWrong => "all-wrong",
            SsfAdversary::PoisonedMemory => "poisoned-memory",
            SsfAdversary::RandomDesync => "random-desync",
            SsfAdversary::SplitBrain => "split-brain",
            SsfAdversary::FakeConsensus => "fake-consensus",
        }
    }

    /// Applies the strategy to one agent.
    ///
    /// * `correct` — the correct opinion (so strategies can be maximally
    ///   adversarial); the real adversary knows it since it chose the
    ///   sources.
    /// * `m` — the protocol's memory capacity (used to size fake
    ///   memories).
    /// * `id` — the agent id (used by id-dependent strategies).
    pub fn corrupt(
        self,
        agent: &mut SsfAgent,
        correct: Opinion,
        m: u64,
        id: usize,
        rng: &mut StreamRng,
    ) {
        let wrong = !correct;
        match self {
            SsfAdversary::None => {}
            SsfAdversary::AllWrong => {
                agent.corrupt_state(wrong, wrong, [0; 4]);
            }
            SsfAdversary::PoisonedMemory => {
                let mut mem = [0u64; 4];
                mem[crate::ssf::encode(true, wrong)] = m;
                agent.corrupt_state(wrong, wrong, mem);
            }
            SsfAdversary::RandomDesync => {
                let weak = Opinion::from_bool(rng.gen());
                let opinion = Opinion::from_bool(rng.gen());
                let size = rng.gen_range(0..=m);
                // Uniform composition: each of the `size` fake messages
                // lands in one of the 4 symbol slots independently. (A
                // sequential `gen_range(0..=left)` split is *not* uniform —
                // it gives slot 0 half the remaining mass in expectation.)
                let mut mem = [0u64; 4];
                np_stats::multinomial::sample_into(rng, size, &[0.25; 4], &mut mem);
                agent.corrupt_state(weak, opinion, mem);
            }
            SsfAdversary::SplitBrain => {
                let mine = if id.is_multiple_of(2) { wrong } else { correct };
                let mut mem = [0u64; 4];
                mem[crate::ssf::encode(true, mine)] = m / 2;
                mem[crate::ssf::encode(false, mine)] = m / 2;
                agent.corrupt_state(mine, mine, mem);
            }
            SsfAdversary::FakeConsensus => {
                let mut mem = [0u64; 4];
                // Coherent history: mostly untagged wrong values with a few
                // tagged ones, sized just under the update threshold.
                let size = m.saturating_sub(1);
                let tagged = size / 16;
                mem[crate::ssf::encode(true, wrong)] = tagged;
                mem[crate::ssf::encode(false, wrong)] = size - tagged;
                agent.corrupt_state(wrong, wrong, mem);
            }
        }
    }
}

impl std::fmt::Display for SsfAdversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SsfParams;
    use crate::ssf::SelfStabilizingSourceFilter;
    use np_engine::population::{PopulationConfig, Role};
    use np_engine::protocol::{AgentState, Protocol};
    use rand::SeedableRng;

    fn fresh_agent(m: u64) -> SsfAgent {
        let config = PopulationConfig::new(64, 0, 1, 8).unwrap();
        let params = SsfParams::derive(&config, 0.1, 1.0)
            .unwrap()
            .with_m(m)
            .unwrap();
        let proto = SelfStabilizingSourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(1);
        proto.init_agent(Role::NonSource, &mut rng)
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let names: std::collections::HashSet<_> =
            SsfAdversary::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), SsfAdversary::ALL.len());
        assert!(names.iter().all(|n| !n.is_empty()));
        assert_eq!(SsfAdversary::AllWrong.to_string(), "all-wrong");
    }

    #[test]
    fn none_leaves_agent_untouched() {
        let mut agent = fresh_agent(100);
        let before_mem = agent.memory();
        let mut rng = StreamRng::seed_from_u64(2);
        SsfAdversary::None.corrupt(&mut agent, Opinion::One, 100, 0, &mut rng);
        assert_eq!(agent.memory(), before_mem);
    }

    #[test]
    fn all_wrong_sets_wrong_opinions() {
        let mut agent = fresh_agent(100);
        let mut rng = StreamRng::seed_from_u64(3);
        SsfAdversary::AllWrong.corrupt(&mut agent, Opinion::One, 100, 0, &mut rng);
        assert_eq!(agent.opinion(), Opinion::Zero);
        assert_eq!(agent.weak_opinion(), Opinion::Zero);
        assert_eq!(agent.memory_size(), 0);
    }

    #[test]
    fn poisoned_memory_fills_with_tagged_wrong() {
        let mut agent = fresh_agent(100);
        let mut rng = StreamRng::seed_from_u64(4);
        SsfAdversary::PoisonedMemory.corrupt(&mut agent, Opinion::One, 100, 0, &mut rng);
        assert_eq!(agent.memory()[crate::ssf::encode(true, Opinion::Zero)], 100);
        assert_eq!(agent.memory_size(), 100);
    }

    #[test]
    fn random_desync_produces_varied_sizes() {
        let mut rng = StreamRng::seed_from_u64(5);
        let mut sizes = std::collections::HashSet::new();
        for id in 0..50 {
            let mut agent = fresh_agent(1000);
            SsfAdversary::RandomDesync.corrupt(&mut agent, Opinion::One, 1000, id, &mut rng);
            assert!(agent.memory_size() <= 1000);
            sizes.insert(agent.memory_size());
        }
        assert!(sizes.len() > 10, "sizes not varied: {sizes:?}");
    }

    #[test]
    fn random_desync_split_is_unbiased_across_slots() {
        // Regression: the old sequential `gen_range(0..=left)` split gave
        // slot 0 half the remaining mass in expectation. Under the uniform
        // composition each slot must carry ~1/4 of the total mass.
        let mut rng = StreamRng::seed_from_u64(8);
        let mut totals = [0u64; 4];
        let mut grand = 0u64;
        for id in 0..2000 {
            let mut agent = fresh_agent(1000);
            SsfAdversary::RandomDesync.corrupt(&mut agent, Opinion::One, 1000, id, &mut rng);
            let mem = agent.memory();
            assert_eq!(mem.iter().sum::<u64>(), agent.memory_size());
            for (total, count) in totals.iter_mut().zip(mem) {
                *total += count;
            }
            grand += agent.memory_size();
        }
        for (slot, &total) in totals.iter().enumerate() {
            let share = total as f64 / grand as f64;
            assert!(
                (0.23..0.27).contains(&share),
                "slot {slot} holds {share:.3} of the mass: {totals:?}"
            );
        }
    }

    #[test]
    fn split_brain_alternates_camps() {
        let mut rng = StreamRng::seed_from_u64(6);
        let mut even = fresh_agent(100);
        SsfAdversary::SplitBrain.corrupt(&mut even, Opinion::One, 100, 0, &mut rng);
        assert_eq!(even.opinion(), Opinion::Zero);
        let mut odd = fresh_agent(100);
        SsfAdversary::SplitBrain.corrupt(&mut odd, Opinion::One, 100, 1, &mut rng);
        assert_eq!(odd.opinion(), Opinion::One);
    }

    #[test]
    fn fake_consensus_sits_below_update_threshold() {
        let mut agent = fresh_agent(64);
        let mut rng = StreamRng::seed_from_u64(7);
        SsfAdversary::FakeConsensus.corrupt(&mut agent, Opinion::One, 64, 0, &mut rng);
        assert_eq!(agent.memory_size(), 63);
        assert_eq!(agent.opinion(), Opinion::Zero);
    }
}
