//! Algorithm SSF — *Self-stabilizing Source Filter* (Algorithm 2 of the
//! paper).
//!
//! SSF removes SF's simultaneous-wake-up assumption at the cost of 2-bit
//! messages. Each message is a pair `(tag, value) ∈ {0,1}²`:
//!
//! * sources always display `(1, preference)`;
//! * non-sources display `(0, weak_opinion)`.
//!
//! Every agent accumulates received messages in a bounded multiset `M`.
//! As soon as `|M|` reaches the capacity `m` — the agent has accumulated
//! `m` messages — it performs an *update round*:
//!
//! * the new **weak opinion** is the majority of the second bits among
//!   messages whose first bit is 1 (ties random) — messages that *claim* to
//!   come from a source;
//! * the new **opinion** is the majority of the second bits of *all*
//!   messages (ties random);
//! * `M` is emptied.
//!
//! Why the source tag is usable even though it is noisy: under δ-uniform
//! noise, a non-source message `(0, x)` whose first bit got flipped to 1
//! has a second bit *independent* of `x` (every corruption is equally
//! likely), so falsely-tagged messages are symmetric noise on the weak
//! opinion, while truly-tagged ones carry the source bias (Lemma 36). The
//! protocol is self-stabilizing because two update cycles flush any
//! adversarially planted memory (see [`crate::adversary`] for the
//! corruption strategies used in experiments).
//!
//! # Message encoding
//!
//! Symbols index the alphabet as `index = 2·tag + value`:
//! `0 = (0,0)`, `1 = (0,1)`, `2 = (1,0)`, `3 = (1,1)`.

use np_engine::opinion::Opinion;
use np_engine::population::Role;
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::StreamRng;
use rand::Rng;

use crate::params::SsfParams;

/// Symbol index of the message `(tag, value)`.
pub fn encode(tag: bool, value: Opinion) -> usize {
    2 * usize::from(tag) + value.as_index()
}

/// Decodes a symbol index into `(tag, value)`.
///
/// # Panics
///
/// Panics if `symbol >= 4`.
pub fn decode(symbol: usize) -> (bool, Opinion) {
    assert!(symbol < 4, "symbol {symbol} outside the 2-bit alphabet");
    (
        symbol >= 2,
        // xtask-allow: unwrap (symbol % 2 is always a valid Opinion index)
        Opinion::from_index(symbol % 2).expect("index in {0,1}"),
    )
}

/// The Self-stabilizing Source Filter protocol (Algorithm 2).
///
/// # Example
///
/// ```
/// use noisy_pull::{params::SsfParams, ssf::SelfStabilizingSourceFilter};
/// use np_engine::{channel::ChannelKind, population::PopulationConfig, world::World};
/// use np_linalg::noise::NoiseMatrix;
///
/// let config = PopulationConfig::new(256, 0, 1, 256)?;
/// let params = SsfParams::derive(&config, 0.1, 4.0)?;
/// let noise = NoiseMatrix::uniform(4, 0.1)?;
/// let mut world = World::new(
///     &SelfStabilizingSourceFilter::new(params),
///     config,
///     &noise,
///     ChannelKind::Aggregated,
///     5,
/// )?;
/// world.run(params.expected_convergence_rounds() + 2);
/// assert!(world.is_consensus());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfStabilizingSourceFilter {
    params: SsfParams,
}

impl SelfStabilizingSourceFilter {
    /// Creates the protocol from derived parameters.
    pub fn new(params: SsfParams) -> Self {
        SelfStabilizingSourceFilter { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &SsfParams {
        &self.params
    }
}

/// Per-agent state of Algorithm SSF.
///
/// All fields the adversary of the self-stabilizing setting may corrupt are
/// reachable through [`SsfAgent::corrupt_state`]; the role and the
/// knowledge of `m` are protected, matching Section 1.3.
#[derive(Debug, Clone)]
pub struct SsfAgent {
    role: Role,
    m: u64,
    /// Message multiset as per-symbol counts (see module docs for the
    /// encoding).
    mem: [u64; 4],
    mem_size: u64,
    weak: Opinion,
    opinion: Opinion,
    /// Completed update rounds (memory flushes) — pure observability
    /// bookkeeping for traces; SSF has no phase schedule, so the flush
    /// count is its stage. Not corruptible (the adversary rewrites
    /// opinions and memory, not the trace clock).
    updates: u64,
}

impl SsfAgent {
    /// The current weak opinion `Ỹ`.
    pub fn weak_opinion(&self) -> Opinion {
        self.weak
    }

    /// Number of completed update rounds (memory flushes) so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The agent's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current memory occupancy `|M|`.
    pub fn memory_size(&self) -> u64 {
        self.mem_size
    }

    /// Current memory contents as per-symbol counts.
    pub fn memory(&self) -> [u64; 4] {
        self.mem
    }

    /// Overwrites the corruptible state — the adversary hook of the
    /// self-stabilizing setting (Section 1.3). The role and the capacity
    /// `m` are not corruptible.
    ///
    /// `memory` may contain arbitrary fake samples; its total may even
    /// exceed `m` (the next update will consume and flush it).
    pub fn corrupt_state(&mut self, weak: Opinion, opinion: Opinion, memory: [u64; 4]) {
        self.weak = weak;
        self.opinion = opinion;
        self.mem = memory;
        self.mem_size = memory.iter().sum();
    }

    fn majority(one_side: u64, zero_side: u64, rng: &mut StreamRng) -> Opinion {
        match one_side.cmp(&zero_side) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
        }
    }
}

impl Protocol for SelfStabilizingSourceFilter {
    type Agent = SsfAgent;

    fn alphabet_size(&self) -> usize {
        4
    }

    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> SsfAgent {
        SsfAgent {
            role,
            m: self.params.m(),
            mem: [0; 4],
            mem_size: 0,
            weak: Opinion::from_bool(rng.gen()),
            opinion: Opinion::from_bool(rng.gen()),
            updates: 0,
        }
    }
}

impl AgentState for SsfAgent {
    fn display(&self, _rng: &mut StreamRng) -> usize {
        match self.role {
            Role::Source(pref) => encode(true, pref),
            Role::NonSource => encode(false, self.weak),
        }
    }

    fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
        debug_assert_eq!(observed.len(), 4);
        for (slot, &c) in self.mem.iter_mut().zip(observed) {
            *slot += c;
        }
        self.mem_size += observed.iter().sum::<u64>();
        np_engine::invariants::check_counter_bounded(
            "SSF memory counters",
            self.mem.iter().sum::<u64>(),
            self.mem_size,
        );
        if self.mem_size >= self.m {
            // Weak opinion: majority of second bits among source-tagged
            // messages — (1,1) vs (1,0).
            self.weak = SsfAgent::majority(self.mem[3], self.mem[2], rng);
            // Opinion: majority of all second bits — (·,1) vs (·,0).
            self.opinion =
                SsfAgent::majority(self.mem[1] + self.mem[3], self.mem[0] + self.mem[2], rng);
            self.mem = [0; 4];
            self.mem_size = 0;
            self.updates = self.updates.saturating_add(1);
        }
    }

    fn opinion(&self) -> Opinion {
        self.opinion
    }

    /// SSF has no phase schedule; the trace stage is the number of
    /// completed update rounds (saturated into `u32`), so stage
    /// transitions show the `m`-sample cadence of Theorem 5.
    fn stage_id(&self) -> u32 {
        u32::try_from(self.updates).unwrap_or(u32::MAX)
    }

    fn weak_opinion(&self) -> Option<Opinion> {
        Some(self.weak)
    }

    /// The role is protected from the *adversary*, but the trend-change
    /// fault is the environment itself revising the ground truth — only
    /// this engine hook may touch the preference.
    fn flip_source_preference(&mut self) -> bool {
        if let Role::Source(pref) = self.role {
            self.role = Role::Source(!pref);
            true
        } else {
            false
        }
    }
}

impl np_engine::snapshot::SnapshotAgent for SsfAgent {
    const SNAP_TAG: &'static str = "ssf-agent/v1";

    fn encode_agent(&self, w: &mut np_engine::snapshot::SnapWriter) {
        w.put_role(self.role);
        w.put_u64(self.m);
        for &count in &self.mem {
            w.put_u64(count);
        }
        w.put_u64(self.mem_size);
        w.put_opinion(self.weak);
        w.put_opinion(self.opinion);
        w.put_u64(self.updates);
    }

    fn decode_agent(r: &mut np_engine::snapshot::SnapReader<'_>) -> np_engine::Result<Self> {
        Ok(SsfAgent {
            role: r.take_role()?,
            m: r.take_u64()?,
            mem: [r.take_u64()?, r.take_u64()?, r.take_u64()?, r.take_u64()?],
            mem_size: r.take_u64()?,
            weak: r.take_opinion()?,
            opinion: r.take_opinion()?,
            updates: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::channel::ChannelKind;
    use np_engine::population::PopulationConfig;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;
    use rand::SeedableRng;

    fn ssf_world(
        n: usize,
        s0: usize,
        s1: usize,
        h: usize,
        delta: f64,
        seed: u64,
    ) -> (World<SelfStabilizingSourceFilter>, SsfParams) {
        let config = PopulationConfig::new(n, s0, s1, h).unwrap();
        let params = SsfParams::derive(&config, delta, 8.0).unwrap();
        let noise = NoiseMatrix::uniform(4, delta).unwrap();
        let world = World::new(
            &SelfStabilizingSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .unwrap();
        (world, params)
    }

    #[test]
    fn encoding_roundtrip() {
        for tag in [false, true] {
            for value in Opinion::ALL {
                let (t, v) = decode(encode(tag, value));
                assert_eq!((t, v), (tag, value));
            }
        }
        assert_eq!(encode(false, Opinion::Zero), 0);
        assert_eq!(encode(false, Opinion::One), 1);
        assert_eq!(encode(true, Opinion::Zero), 2);
        assert_eq!(encode(true, Opinion::One), 3);
    }

    #[test]
    #[should_panic(expected = "outside the 2-bit alphabet")]
    fn decode_out_of_range_panics() {
        let _ = decode(4);
    }

    #[test]
    fn displays_follow_roles() {
        let config = PopulationConfig::new(8, 1, 2, 8).unwrap();
        let params = SsfParams::derive(&config, 0.1, 1.0).unwrap();
        let proto = SelfStabilizingSourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(0);
        let src = proto.init_agent(Role::Source(Opinion::One), &mut rng);
        assert_eq!(src.display(&mut rng), encode(true, Opinion::One));
        let src0 = proto.init_agent(Role::Source(Opinion::Zero), &mut rng);
        assert_eq!(src0.display(&mut rng), encode(true, Opinion::Zero));
        let non = proto.init_agent(Role::NonSource, &mut rng);
        assert_eq!(non.display(&mut rng), encode(false, non.weak_opinion()));
    }

    #[test]
    fn update_round_fires_exactly_at_m() {
        // Regression: the trigger used to be `mem_size > m`, silently
        // making the cadence m+1 per cycle. The paper accumulates exactly
        // `m` messages, then updates.
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SsfParams::derive(&config, 0.0, 1.0)
            .unwrap()
            .with_m(10)
            .unwrap();
        let proto = SelfStabilizingSourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(2);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        // 9 messages: still below m = 10, no update.
        agent.update(&[0, 0, 0, 9], &mut rng);
        assert_eq!(agent.memory_size(), 9);
        assert_eq!(agent.updates(), 0);
        // The m-th message triggers the update: memory flushed, weak from
        // (1,1) vs (1,0).
        agent.update(&[0, 0, 0, 1], &mut rng);
        assert_eq!(agent.memory_size(), 0);
        assert_eq!(agent.updates(), 1);
        assert_eq!(agent.weak_opinion(), Opinion::One);
        assert_eq!(agent.opinion(), Opinion::One);
    }

    #[test]
    fn weak_opinion_uses_only_tagged_messages() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SsfParams::derive(&config, 0.0, 1.0)
            .unwrap()
            .with_m(10)
            .unwrap();
        let proto = SelfStabilizingSourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(3);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        // 9 untagged zeros + 2 tagged ones: weak must follow the tagged
        // ones; opinion follows the overall majority (zeros).
        agent.update(&[9, 0, 0, 2], &mut rng);
        assert_eq!(agent.weak_opinion(), Opinion::One);
        assert_eq!(agent.opinion(), Opinion::Zero);
    }

    #[test]
    fn tie_breaks_are_random() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SsfParams::derive(&config, 0.0, 1.0)
            .unwrap()
            .with_m(3)
            .unwrap();
        let proto = SelfStabilizingSourceFilter::new(params);
        let mut outcomes = [0u32; 2];
        for seed in 0..200 {
            let mut rng = StreamRng::seed_from_u64(seed);
            let mut agent = proto.init_agent(Role::NonSource, &mut rng);
            // (1,0) and (1,1) tied at 2 each.
            agent.update(&[0, 0, 2, 2], &mut rng);
            outcomes[agent.weak_opinion().as_index()] += 1;
        }
        assert!(
            outcomes[0] > 50 && outcomes[1] > 50,
            "biased ties: {outcomes:?}"
        );
    }

    #[test]
    fn converges_from_clean_start() {
        let (mut world, params) = ssf_world(256, 0, 1, 256, 0.1, 7);
        world.run(params.expected_convergence_rounds() + 2);
        assert!(
            world.is_consensus(),
            "correct: {}/256",
            world.correct_count()
        );
    }

    #[test]
    fn converges_to_zero_and_converts_minority_sources() {
        let (mut world, params) = ssf_world(256, 3, 1, 256, 0.1, 9);
        world.run(params.expected_convergence_rounds() + 2);
        assert!(world.is_consensus());
        assert!(world.iter_agents().all(|a| a.opinion() == Opinion::Zero));
    }

    #[test]
    fn converges_from_adversarial_all_wrong() {
        let (mut world, params) = ssf_world(256, 0, 1, 256, 0.1, 11);
        // Adversary: every agent starts convinced of the wrong opinion with
        // a memory stuffed with fake all-wrong source messages.
        world.corrupt_agents(|_, agent, _| {
            let m = agent.m;
            agent.corrupt_state(Opinion::Zero, Opinion::Zero, [0, 0, m, 0]);
        });
        assert_eq!(world.correct_count(), 0);
        world.run(2 * params.expected_convergence_rounds() + 4);
        assert!(
            world.is_consensus(),
            "correct: {}/256",
            world.correct_count()
        );
    }

    #[test]
    fn consensus_persists() {
        let (mut world, params) = ssf_world(128, 0, 1, 128, 0.1, 13);
        world.run(params.expected_convergence_rounds() + 2);
        assert!(world.is_consensus());
        // Run through several more full update cycles: consensus must hold
        // at every round (Definition 2's persistence requirement, spot
        // check).
        for _ in 0..4 * params.update_interval() {
            world.step();
            assert!(
                world.is_consensus(),
                "consensus lost at round {}",
                world.round()
            );
        }
    }

    #[test]
    fn corrupt_state_respects_protected_fields() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SsfParams::derive(&config, 0.1, 1.0).unwrap();
        let proto = SelfStabilizingSourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(0);
        let mut agent = proto.init_agent(Role::Source(Opinion::One), &mut rng);
        agent.corrupt_state(Opinion::Zero, Opinion::Zero, [7, 7, 7, 7]);
        assert_eq!(agent.memory_size(), 28);
        assert_eq!(agent.memory(), [7, 7, 7, 7]);
        assert_eq!(agent.opinion(), Opinion::Zero);
        // The display still reflects the protected role and preference.
        assert_eq!(agent.display(&mut rng), encode(true, Opinion::One));
        assert_eq!(agent.role(), Role::Source(Opinion::One));
    }

    #[test]
    fn protocol_accessors() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SsfParams::derive(&config, 0.1, 1.0).unwrap();
        let proto = SelfStabilizingSourceFilter::new(params);
        assert_eq!(proto.alphabet_size(), 4);
        assert_eq!(proto.params(), &params);
    }
}
