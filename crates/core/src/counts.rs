//! Mean-field class-count ports of SF and SSF (the
//! [`np_engine::counts`] backend).
//!
//! Both protocols are *anonymous* and *phase-synchronous from a clean
//! start*: every agent applies the same update to its own observations,
//! and state changes happen only at phase/sub-phase boundaries (SF) or at
//! the shared `⌈m/h⌉`-round flush cadence (SSF). Conditioned on the
//! display histogram — which is constant between boundaries — the agents'
//! fresh observations are i.i.d. (the aggregated-channel collapse), so at
//! each boundary the population splits among the reachable outcomes by an
//! **exact** binomial/multinomial law whose success probabilities are
//! computable from the collapsed observation law `q`:
//!
//! * SF weak formation: `Counter₁ ~ Binom(T·h, q₁ of Listen₀)` and
//!   `Counter₀ ~ Binom(T·h, q₀ of Listen₁)` independently per agent, so
//!   an agent turns its weak opinion to 1 with probability
//!   `P(C₁ > C₀) + ½P(C₁ = C₀)` ([`np_stats::binomial::exceeds_prob`]),
//!   and the new one-count is `Binom(n, p)`.
//! * SF boosting: over a sub-phase of length `L`, an agent's memory is
//!   `Binom(L·h, q₁)` ones out of `L·h`, so it adopts opinion 1 with
//!   probability `P(2X > Lh) + ½P(2X = Lh)`
//!   ([`np_stats::binomial::majority_prob`]).
//! * SSF flush: with `N = ⌈m/h⌉·h` accumulated samples, the joint law of
//!   `(weak', opinion')` is an explicit function of the multinomial
//!   `(M₀, M₁, M₂, M₃) ~ Mult(N, q)` — evaluated exactly in
//!   [`ssf_flush_law`] by conditioning on the source-tagged count
//!   `S = M₂ + M₃` (given `S`, `M₃ ~ Binom(S, q₃/(q₂+q₃))` and
//!   `M₁ ~ Binom(N−S, q₁/(q₀+q₁))` are independent). Each class count
//!   then splits `Mult(count, law)` over the four `(weak, opinion)`
//!   cells.
//!
//! This is why the backend is exact for the aggregated with-replacement
//! channel and *only* for it: without replacement, observations are
//! drawn from a shrinking pool and the product-law factorization across
//! agents fails. See DESIGN.md §14.

use np_engine::counts::{CountsProtocol, CountsState};
use np_engine::metrics::MetricsSweep;
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::streams::StreamRng;
use np_stats::binomial::{
    exceeds_prob_unchecked, majority_prob_unchecked, sample_unchecked, TailTable,
};
use np_stats::multinomial;

use crate::params::{SfParams, SsfParams};
use crate::sf::SourceFilter;
use crate::ssf::SelfStabilizingSourceFilter;

/// SF phase machine, collapsed to class indices. Mirrors `sf::Stage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SfStage {
    Listen0,
    Listen1,
    Boost(u64),
    Done,
}

/// Mean-field state of Algorithm SF.
///
/// From a clean start every agent sits in the same stage at the same
/// round, so the full class structure is one stage tag plus two counts:
/// how many agents hold opinion 1, and (once formed) how many hold weak
/// opinion 1. Listen-phase counters never need to be tracked per class —
/// their distribution at the boundary is a pure function of the phase's
/// constant observation law, which is recorded as it streams by.
#[derive(Debug, Clone)]
pub struct SfCountsState {
    params: SfParams,
    n: u64,
    s1: u64,
    num_sources: u64,
    stage: SfStage,
    round_in_stage: u64,
    /// Agents whose opinion is 1 (sources included — in SF sources run
    /// the same update rule; only their listen-phase display differs).
    ones: u64,
    /// Agents whose weak opinion is 1; `None` before weak formation.
    weak_ones: Option<u64>,
    /// `q₁` of the Listen₀ phase (constant across the phase).
    listen0_q1: f64,
    /// `q₀` of the Listen₁ phase (constant across the phase).
    listen1_q0: f64,
}

impl SfCountsState {
    /// Agents currently holding opinion 1.
    pub fn ones(&self) -> u64 {
        self.ones
    }

    /// Agents whose weak opinion is 1, once weak opinions exist.
    pub fn weak_ones(&self) -> Option<u64> {
        self.weak_ones
    }

    fn stage_id(&self) -> u32 {
        match self.stage {
            SfStage::Listen0 => 0,
            SfStage::Listen1 => 1,
            SfStage::Boost(k) => u32::try_from(k.saturating_add(2))
                .unwrap_or(u32::MAX)
                .min(u32::MAX - 1),
            SfStage::Done => u32::MAX,
        }
    }
}

impl CountsProtocol for SourceFilter {
    type State = SfCountsState;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_counts(&self, config: &PopulationConfig, rng: &mut StreamRng) -> SfCountsState {
        let n = config.n() as u64;
        // Every agent (sources too) initializes its opinion to a fair
        // coin, so the round-zero one-count is Binom(n, ½).
        let ones = sample_unchecked(rng, n, 0.5);
        SfCountsState {
            params: *self.params(),
            n,
            s1: config.s1() as u64,
            num_sources: config.num_sources() as u64,
            stage: SfStage::Listen0,
            round_in_stage: 0,
            ones,
            weak_ones: None,
            listen0_q1: 0.0,
            listen1_q0: 0.0,
        }
    }
}

impl CountsState for SfCountsState {
    fn display_histogram(&self, out: &mut [u64]) {
        match self.stage {
            // Listen₀: sources display their preference, non-sources 0.
            SfStage::Listen0 => {
                out[1] = self.s1;
                out[0] = self.n - self.s1;
            }
            // Listen₁: sources display their preference, non-sources 1.
            SfStage::Listen1 => {
                out[1] = (self.n - self.num_sources) + self.s1;
                out[0] = self.n - out[1];
            }
            SfStage::Boost(_) | SfStage::Done => {
                out[1] = self.ones;
                out[0] = self.n - self.ones;
            }
        }
    }

    fn advance_round(&mut self, obs_law: &[f64], h: u64, rng: &mut StreamRng) {
        match self.stage {
            SfStage::Listen0 => {
                // The law is constant across the phase; remember it for
                // the boundary computation.
                self.listen0_q1 = obs_law[1];
                self.round_in_stage += 1;
                if self.round_in_stage >= self.params.phase_len() {
                    self.stage = SfStage::Listen1;
                    self.round_in_stage = 0;
                }
            }
            SfStage::Listen1 => {
                self.listen1_q0 = obs_law[0];
                self.round_in_stage += 1;
                if self.round_in_stage >= self.params.phase_len() {
                    // Weak formation: per agent, Counter₁ ~ Binom(T·h, q₁)
                    // from Listen₀ and Counter₀ ~ Binom(T·h, q₀) from
                    // Listen₁, independent; weak = 1 iff C₁ > C₀ with a
                    // fair-coin tie break. Opinion := weak.
                    let trials = self.params.phase_len() * h;
                    let p_one =
                        exceeds_prob_unchecked(trials, self.listen0_q1, trials, self.listen1_q0);
                    self.ones = sample_unchecked(rng, self.n, p_one);
                    self.weak_ones = Some(self.ones);
                    self.stage = SfStage::Boost(0);
                    self.round_in_stage = 0;
                }
            }
            SfStage::Boost(subphase) => {
                self.round_in_stage += 1;
                let len = if subphase < self.params.num_short_subphases() {
                    self.params.subphase_len()
                } else {
                    self.params.final_subphase_len()
                };
                if self.round_in_stage >= len {
                    // Boundary: each agent's memory holds Binom(L·h, q₁)
                    // ones out of L·h samples; it adopts the majority with
                    // a fair-coin tie break. q₁ is constant across the
                    // sub-phase, so reading it at the boundary is exact.
                    let p_one = majority_prob_unchecked(len * h, obs_law[1]);
                    self.ones = sample_unchecked(rng, self.n, p_one);
                    self.round_in_stage = 0;
                    self.stage = if subphase >= self.params.num_short_subphases() {
                        SfStage::Done
                    } else {
                        SfStage::Boost(subphase + 1)
                    };
                }
            }
            SfStage::Done => {}
        }
    }

    fn metrics_sweep(&self, correct: Opinion) -> MetricsSweep {
        let n = self.n as usize;
        let ones = self.ones as usize;
        let correct_count = match correct {
            Opinion::One => ones,
            Opinion::Zero => n - ones,
        };
        let (weak_formed, weak_correct) = match self.weak_ones {
            None => (0, 0),
            Some(w) => (
                n,
                match correct {
                    Opinion::One => w as usize,
                    Opinion::Zero => n - w as usize,
                },
            ),
        };
        MetricsSweep {
            correct: correct_count,
            stages: vec![(self.stage_id(), n)],
            weak_formed,
            weak_correct,
        }
    }
}

/// Mean-field state of Algorithm SSF (clean start).
///
/// Classes are `(group, weak, opinion)` where `group` distinguishes
/// non-sources from the two source preferences: only non-source weak
/// opinions feed the display histogram (sources display `(1, pref)`
/// regardless of state), but sources still carry weak/opinion state that
/// counts toward consensus. From a clean start all memories fill in
/// lockstep and flush together every `⌈m/h⌉` rounds, and at a flush every
/// agent — regardless of class — draws its new `(weak, opinion)` pair
/// from the same joint law [`ssf_flush_law`].
#[derive(Debug, Clone)]
pub struct SsfCountsState {
    params: SsfParams,
    n: u64,
    s0: u64,
    s1: u64,
    /// `counts[group][weak][opinion]`; group 0 = non-source, 1 = sources
    /// preferring 0, 2 = sources preferring 1.
    counts: [[[u64; 2]; 2]; 3],
    round_in_interval: u64,
    /// The collapsed law of the current update interval (constant across
    /// it — displays only change at flushes).
    q_interval: [f64; 4],
    /// Completed flushes (the SSF trace stage).
    updates: u64,
}

impl SsfCountsState {
    /// Agents currently holding opinion 1.
    pub fn ones(&self) -> u64 {
        self.counts.iter().map(|g| g[0][1] + g[1][1]).sum::<u64>()
    }

    /// Non-source agents whose weak opinion is 1 (these drive the
    /// display histogram).
    pub fn non_source_weak_ones(&self) -> u64 {
        self.counts[0][1][0] + self.counts[0][1][1]
    }

    /// Completed memory flushes.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    #[cfg(test)]
    fn group_total(&self, g: usize) -> u64 {
        self.counts[g].iter().flatten().sum()
    }
}

impl CountsProtocol for SelfStabilizingSourceFilter {
    type State = SsfCountsState;

    fn alphabet_size(&self) -> usize {
        4
    }

    fn init_counts(&self, config: &PopulationConfig, rng: &mut StreamRng) -> SsfCountsState {
        let n = config.n() as u64;
        let s0 = config.s0() as u64;
        let s1 = config.s1() as u64;
        // Each agent draws weak and opinion as independent fair coins, so
        // each group splits Mult(count, ¼ per (weak, opinion) cell).
        let quarter = [0.25f64; 4];
        let mut counts = [[[0u64; 2]; 2]; 3];
        for (group, total) in [(0usize, n - s0 - s1), (1, s0), (2, s1)] {
            let mut cells = [0u64; 4];
            multinomial::sample_into(rng, total, &quarter, &mut cells);
            counts[group] = [[cells[0], cells[1]], [cells[2], cells[3]]];
        }
        SsfCountsState {
            params: *self.params(),
            n,
            s0,
            s1,
            counts,
            round_in_interval: 0,
            q_interval: [0.0; 4],
            updates: 0,
        }
    }
}

impl CountsState for SsfCountsState {
    fn display_histogram(&self, out: &mut [u64]) {
        // Symbols encode (tag, value): 0 = (0,0), 1 = (0,1), 2 = (1,0),
        // 3 = (1,1). Non-sources display (0, weak); sources (1, pref).
        out[0] = self.counts[0][0][0] + self.counts[0][0][1];
        out[1] = self.counts[0][1][0] + self.counts[0][1][1];
        out[2] = self.s0;
        out[3] = self.s1;
    }

    fn advance_round(&mut self, obs_law: &[f64], h: u64, rng: &mut StreamRng) {
        if self.round_in_interval == 0 {
            // Displays are frozen until the flush, so the law recorded on
            // the interval's first round is exact for all of it.
            self.q_interval.copy_from_slice(obs_law);
        }
        self.round_in_interval += 1;
        if self.round_in_interval >= self.params.update_interval() {
            // All memories hit |M| ≥ m simultaneously (clean start):
            // every agent has accumulated exactly N = ⌈m/h⌉·h samples.
            let total_samples = self.params.update_interval() * h;
            let law = ssf_flush_law(total_samples, &self.q_interval);
            for group in self.counts.iter_mut() {
                let total: u64 = group.iter().flatten().sum();
                let mut cells = [0u64; 4];
                multinomial::sample_into(rng, total, &law, &mut cells);
                *group = [[cells[0], cells[1]], [cells[2], cells[3]]];
            }
            self.round_in_interval = 0;
            self.updates = self.updates.saturating_add(1);
        }
    }

    fn metrics_sweep(&self, correct: Opinion) -> MetricsSweep {
        let n = self.n as usize;
        let ones = self.ones() as usize;
        let correct_count = match correct {
            Opinion::One => ones,
            Opinion::Zero => n - ones,
        };
        let weak_ones: u64 = self.counts.iter().map(|g| g[1][0] + g[1][1]).sum();
        let weak_correct = match correct {
            Opinion::One => weak_ones as usize,
            Opinion::Zero => n - weak_ones as usize,
        };
        let stage_id = u32::try_from(self.updates).unwrap_or(u32::MAX);
        MetricsSweep {
            correct: correct_count,
            stages: vec![(stage_id, n)],
            // SSF weak opinions exist from round zero.
            weak_formed: n,
            weak_correct,
        }
    }
}

/// The exact joint law of one agent's post-flush `(weak, opinion)` pair,
/// given `n` accumulated samples with single-observation law `q` over the
/// symbols `(0,0), (0,1), (1,0), (1,1)`.
///
/// Returned as cell probabilities in the same `[w0y0, w0y1, w1y0, w1y1]`
/// layout the class counts use. Writing `(M₀, M₁, M₂, M₃) ~ Mult(n, q)`
/// and `S = M₂ + M₃` (source-tagged samples):
///
/// * `weak' = 1` iff `2M₃ > S` (fair coin at `2M₃ = S`),
/// * `opinion' = 1` iff `2(M₁ + M₃) > n` (fair coin at equality),
///
/// and conditioned on `S`, `M₃ ~ Binom(S, q₃/(q₂+q₃))` and
/// `M₁ ~ Binom(n − S, q₁/(q₀+q₁))` are independent. The double sum runs
/// over the truncated effective supports of `S` and `M₃ | S`
/// ([`TailTable`], `1e-12` truncation), with `O(1)` lookups for the
/// `M₁` tails — `O(σ_S · σ_{M₃})` work total.
pub fn ssf_flush_law(n: u64, q: &[f64; 4]) -> [f64; 4] {
    let q_src = (q[2] + q[3]).clamp(0.0, 1.0);
    let q3_given_src = if q_src > 0.0 {
        (q[3] / q_src).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let q_non = (1.0 - q_src).max(0.0);
    let q1_given_non = if q_non > 0.0 {
        (q[1] / q_non).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let s_table = TailTable::new_unchecked(n, q_src);
    let mut p_w1 = 0.0f64; // P(weak' = 1)
    let mut p_y1 = 0.0f64; // P(opinion' = 1)
    let mut p_w1y1 = 0.0f64; // P(weak' = 1, opinion' = 1)
    for s in s_table.lo()..=s_table.hi() {
        let ps = s_table.pmf_at(s);
        if ps <= 0.0 {
            continue;
        }
        let m3_table = TailTable::new_unchecked(s, q3_given_src);
        let m1_table = TailTable::new_unchecked(n - s, q1_given_non);
        // Weak marginal given S: majority of M₃ over M₂ = S − M₃.
        let w1_given_s = m3_table.sf_at(s / 2)
            + if s % 2 == 0 {
                0.5 * m3_table.pmf_at(s / 2)
            } else {
                0.0
            };
        p_w1 += ps * w1_given_s;
        // Opinion marginal and joint: walk M₃'s window, O(1) M₁ tails.
        let mut y1_given_s = 0.0f64;
        let mut w1y1_given_s = 0.0f64;
        for m3 in m3_table.lo()..=m3_table.hi() {
            let pm3 = m3_table.pmf_at(m3);
            if pm3 <= 0.0 {
                continue;
            }
            let y1 = opinion_win_prob(&m1_table, n, m3);
            y1_given_s += pm3 * y1;
            // Weak outcome is a deterministic (or fair-coin) function of
            // (m3, s); combine with the independent M₁ draw for the joint.
            let w_weight = match (2 * m3).cmp(&s) {
                std::cmp::Ordering::Greater => 1.0,
                std::cmp::Ordering::Equal => 0.5,
                std::cmp::Ordering::Less => 0.0,
            };
            if w_weight > 0.0 {
                w1y1_given_s += pm3 * w_weight * y1;
            }
        }
        p_y1 += ps * y1_given_s;
        p_w1y1 += ps * w1y1_given_s;
    }
    // Assemble the four cells; clamp each against truncation drift and
    // renormalize so the multinomial split sees an exact distribution.
    let p11 = p_w1y1.clamp(0.0, 1.0);
    let p10 = (p_w1 - p_w1y1).max(0.0);
    let p01 = (p_y1 - p_w1y1).max(0.0);
    let p00 = (1.0 - p_w1 - p_y1 + p_w1y1).max(0.0);
    let total = p00 + p01 + p10 + p11;
    debug_assert!(total > 0.0);
    [p00 / total, p01 / total, p10 / total, p11 / total]
}

/// `P(2(M₁ + m₃) > n) + ½·P(2(M₁ + m₃) = n)` for the tabulated `M₁`.
fn opinion_win_prob(m1_table: &TailTable, n: u64, m3: u64) -> f64 {
    if 2 * m3 > n {
        // Every M₁ ≥ 0 already wins; no tie is reachable.
        return 1.0;
    }
    let threshold = n - 2 * m3; // win iff 2M₁ > threshold
    let win = m1_table.sf_at(threshold / 2);
    if threshold.is_multiple_of(2) {
        win + 0.5 * m1_table.pmf_at(threshold / 2)
    } else {
        // Odd threshold: 2M₁ > t ⟺ M₁ > ⌊t/2⌋, and no tie exists.
        win
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::counts::CountsWorld;
    use np_linalg::noise::NoiseMatrix;
    use np_stats::binomial::pmf;

    fn sf_world(n: usize, delta: f64, seed: u64) -> CountsWorld<SourceFilter> {
        let config = PopulationConfig::new(n, 0, 1, n).unwrap();
        let params = SfParams::derive(&config, delta, 1.0).unwrap();
        let protocol = SourceFilter::new(params);
        let noise = NoiseMatrix::uniform(2, delta).unwrap();
        CountsWorld::new(&protocol, config, &noise, seed).unwrap()
    }

    fn ssf_world(n: usize, delta: f64, seed: u64) -> CountsWorld<SelfStabilizingSourceFilter> {
        let config = PopulationConfig::new(n, 0, 1, n).unwrap();
        let params = SsfParams::derive(&config, delta, 8.0).unwrap();
        let protocol = SelfStabilizingSourceFilter::new(params);
        let noise = NoiseMatrix::uniform(4, delta).unwrap();
        CountsWorld::new(&protocol, config, &noise, seed).unwrap()
    }

    #[test]
    fn sf_counts_walks_the_phase_script() {
        let mut w = sf_world(256, 0.2, 5);
        let params = w.state().params;
        let total = params.total_rounds();
        w.record_trace();
        w.run(total);
        let trace = w.trace().unwrap();
        // First phase_len rounds are Listen₀ (stage 0), next phase_len
        // Listen₁ (stage 1), then boosting, ending at Done.
        let t = params.phase_len() as usize;
        assert_eq!(trace[0].stages, vec![(0, 256)]);
        assert_eq!(trace[t - 1].stages, vec![(1, 256)]);
        assert_eq!(trace[2 * t - 1].stages, vec![(2, 256)]);
        assert_eq!(trace.last().unwrap().stages, vec![(u32::MAX, 256)]);
        // Weak opinions form exactly at the Listen₁ boundary.
        assert_eq!(trace[2 * t - 2].weak_formed, 0);
        assert_eq!(trace[2 * t - 1].weak_formed, 256);
    }

    #[test]
    fn sf_counts_converges_single_source() {
        // Mirror of sf.rs's per-agent convergence test: n = 256, h = n,
        // δ = 0.2, single one-source.
        let mut w = sf_world(256, 0.2, 11);
        let budget = 4 * 256;
        let outcome = w.run_until_consensus(budget);
        assert!(outcome.converged(), "got {outcome:?}");
        assert_eq!(w.correct_count(), 256);
    }

    #[test]
    fn ssf_counts_converges_single_source() {
        let mut w = ssf_world(256, 0.1, 3);
        let interval = w.state().params.update_interval();
        let outcome = w.run_until_consensus(8 * interval);
        assert!(outcome.converged(), "got {outcome:?}");
    }

    #[test]
    fn ssf_flush_cadence_matches_interval() {
        let mut w = ssf_world(256, 0.1, 9);
        let interval = w.state().params.update_interval();
        w.run(interval - 1);
        assert_eq!(w.state().updates(), 0);
        w.run(1);
        assert_eq!(w.state().updates(), 1);
        w.run(interval);
        assert_eq!(w.state().updates(), 2);
    }

    #[test]
    fn ssf_class_counts_conserve_population() {
        let mut w = ssf_world(500, 0.1, 13);
        for _ in 0..3 {
            let interval = w.state().params.update_interval();
            w.run(interval);
            let total: u64 = (0..3).map(|g| w.state().group_total(g)).sum();
            assert_eq!(total, 500);
            assert_eq!(w.state().group_total(1), 0);
            assert_eq!(w.state().group_total(2), 1);
        }
    }

    #[test]
    fn ssf_flush_law_is_a_distribution() {
        for q in [
            [0.25, 0.25, 0.25, 0.25],
            [0.45, 0.45, 0.04, 0.06],
            [0.05, 0.9, 0.02, 0.03],
            [0.0, 0.0, 0.3, 0.7],
            [0.5, 0.5, 0.0, 0.0],
        ] {
            for n in [0u64, 1, 7, 64, 1000] {
                let law = ssf_flush_law(n, &q);
                let total: f64 = law.iter().sum();
                assert!((total - 1.0).abs() < 1e-12, "q={q:?} n={n}: sum {total}");
                assert!(law.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn ssf_flush_law_matches_brute_force() {
        // Exhaustive check against the raw multinomial sum at small n.
        let n = 12u64;
        let q = [0.3f64, 0.4, 0.1, 0.2];
        let mut want = [0.0f64; 4];
        for m0 in 0..=n {
            for m1 in 0..=(n - m0) {
                for m2 in 0..=(n - m0 - m1) {
                    let m3 = n - m0 - m1 - m2;
                    // Multinomial pmf via iterated binomials.
                    let p = pmf(n, q[0], m0).unwrap()
                        * pmf(n - m0, q[1] / (1.0 - q[0]), m1).unwrap()
                        * pmf(n - m0 - m1, q[2] / (1.0 - q[0] - q[1]), m2).unwrap();
                    let s = m2 + m3;
                    let w1 = match (2 * m3).cmp(&s) {
                        std::cmp::Ordering::Greater => 1.0,
                        std::cmp::Ordering::Equal => 0.5,
                        std::cmp::Ordering::Less => 0.0,
                    };
                    let y1 = match (2 * (m1 + m3)).cmp(&n) {
                        std::cmp::Ordering::Greater => 1.0,
                        std::cmp::Ordering::Equal => 0.5,
                        std::cmp::Ordering::Less => 0.0,
                    };
                    want[0] += p * (1.0 - w1) * (1.0 - y1);
                    want[1] += p * (1.0 - w1) * y1;
                    want[2] += p * w1 * (1.0 - y1);
                    want[3] += p * w1 * y1;
                }
            }
        }
        let got = ssf_flush_law(n, &q);
        for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-9, "cell {i}: got {g}, want {w}");
        }
    }
}
