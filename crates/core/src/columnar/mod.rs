//! Hand-written columnar (struct-of-arrays) ports of the paper's
//! protocols.
//!
//! Every scalar protocol already runs on the parallel world through the
//! blanket adapter in [`np_engine::protocol`]; these ports exist for the
//! hot paths. A struct-of-arrays layout keeps each update touching a few
//! contiguous `Vec<u64>` lanes instead of striding over a `Vec<Agent>` of
//! fat structs, and lets the ports skip creating per-agent RNGs on rounds
//! where the protocol provably draws nothing (most rounds: SF only draws
//! at phase boundaries, SSF only on ties during an update round).
//!
//! # The equivalence contract
//!
//! Each port replicates its scalar counterpart's draw sequence against the
//! same `(seed, round, agent, stage)` streams, so a
//! `World<ColumnarSourceFilter>` and a `World<SourceFilter>` built from
//! the same arguments produce **bit-identical trajectories** — not merely
//! equal in distribution. Every module here carries a test pinning that
//! equality round-by-round (including SSF's adversarially corrupted
//! start). Since per-agent streams are independent, skipping the creation
//! of an RNG that is never drawn from cannot shift any other draw.
//!
//! The ports:
//!
//! * [`sf::ColumnarSourceFilter`] ↔ [`crate::sf::SourceFilter`]
//! * [`ssf::ColumnarSsf`] ↔ [`crate::ssf::SelfStabilizingSourceFilter`]
//! * [`sf_alt::ColumnarAltSf`] ↔ [`crate::sf_alternating::AlternatingSourceFilter`]

use np_engine::opinion::Opinion;
use np_engine::streams::StreamRng;
use np_engine::streams::{RoundStreams, StreamStage};
use rand::Rng;

pub mod sf;
pub mod sf_alt;
pub mod ssf;

/// A per-agent RNG created only if a draw actually happens. The scalar
/// adapter hands every agent a fresh stream RNG per round; since streams
/// are independent and the first draw from a fresh RNG is deterministic,
/// deferring creation until the first draw is observationally identical.
pub(crate) struct LazyRng<'a> {
    streams: &'a RoundStreams,
    agent: usize,
    stage: StreamStage,
    rng: Option<StreamRng>,
}

impl<'a> LazyRng<'a> {
    pub(crate) fn new(streams: &'a RoundStreams, agent: usize, stage: StreamStage) -> Self {
        LazyRng {
            streams,
            agent,
            stage,
            rng: None,
        }
    }

    /// A fair coin, drawn from the underlying stream (created on first
    /// use). Matches `rng.gen::<bool>()` on the scalar side.
    pub(crate) fn coin(&mut self) -> bool {
        let (streams, agent, stage) = (self.streams, self.agent, self.stage);
        self.rng
            .get_or_insert_with(|| streams.rng(agent, stage))
            .gen()
    }
}

/// `1{ones > zeros}`, ties broken by a fair coin — the shared majority
/// rule of SF/SSF and the baselines, drawing only on an actual tie.
pub(crate) fn majority(ones: u64, zeros: u64, rng: &mut LazyRng<'_>) -> Opinion {
    match ones.cmp(&zeros) {
        std::cmp::Ordering::Greater => Opinion::One,
        std::cmp::Ordering::Less => Opinion::Zero,
        std::cmp::Ordering::Equal => Opinion::from_bool(rng.coin()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_rng_matches_eager_stream_rng() {
        let streams = RoundStreams::new(11, 3);
        let mut eager = streams.rng(5, StreamStage::Update);
        let mut lazy = LazyRng::new(&streams, 5, StreamStage::Update);
        for _ in 0..8 {
            assert_eq!(lazy.coin(), eager.gen::<bool>());
        }
    }

    #[test]
    fn majority_breaks_ties_only() {
        let streams = RoundStreams::new(0, 0);
        let mut rng = LazyRng::new(&streams, 0, StreamStage::Update);
        assert_eq!(majority(3, 1, &mut rng), Opinion::One);
        assert_eq!(majority(1, 3, &mut rng), Opinion::Zero);
        assert!(rng.rng.is_none(), "no draw happened on clear majorities");
        let _ = majority(2, 2, &mut rng);
        assert!(rng.rng.is_some(), "tie forces a draw");
    }
}
