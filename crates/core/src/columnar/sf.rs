//! Columnar port of Algorithm SF ([`crate::sf::SourceFilter`]).
//!
//! Same schedule, same draws, struct-of-arrays state: each of the agent
//! fields of [`crate::sf::SfAgent`] becomes one `Vec` lane in
//! [`SfColumns`]. See [`crate::columnar`] for the equivalence contract.

use std::ops::Range;

use np_engine::opinion::Opinion;
use np_engine::population::{PopulationConfig, Role};
use np_engine::protocol::{ColumnarProtocol, ColumnarState};
use np_engine::streams::{RoundStreams, StreamStage};
use rand::Rng;

use super::{majority, LazyRng};
use crate::params::SfParams;

/// Execution stage of one SF agent (mirrors the scalar `Stage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Listen0,
    Listen1,
    Boost(u64),
    Done,
}

/// Columnar Source Filter: bit-identical to
/// [`crate::sf::SourceFilter`] on the same world arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnarSourceFilter {
    params: SfParams,
}

impl ColumnarSourceFilter {
    /// Creates the protocol from a derived schedule.
    pub fn new(params: SfParams) -> Self {
        ColumnarSourceFilter { params }
    }

    /// The schedule in use.
    pub fn params(&self) -> &SfParams {
        &self.params
    }
}

/// Struct-of-arrays population state of columnar SF.
#[derive(Debug, Clone)]
pub struct SfColumns {
    params: SfParams,
    role: Vec<Role>,
    stage: Vec<Stage>,
    round_in_stage: Vec<u64>,
    counter1: Vec<u64>,
    counter0: Vec<u64>,
    weak: Vec<Option<Opinion>>,
    opinion: Vec<Opinion>,
    mem0: Vec<u64>,
    mem1: Vec<u64>,
    gathered: Vec<u64>,
}

impl SfColumns {
    /// The weak opinion of agent `id`, once Phases 0 and 1 completed.
    pub fn weak_opinion(&self, id: usize) -> Option<Opinion> {
        self.weak[id]
    }

    /// Returns `true` once agent `id` has completed the schedule.
    pub fn is_done(&self, id: usize) -> bool {
        self.stage[id] == Stage::Done
    }
}

/// Disjoint mutable chunk view over the update-phase lanes of
/// [`SfColumns`].
#[derive(Debug)]
pub struct SfChunkMut<'a> {
    params: SfParams,
    stage: &'a mut [Stage],
    round_in_stage: &'a mut [u64],
    counter1: &'a mut [u64],
    counter0: &'a mut [u64],
    weak: &'a mut [Option<Opinion>],
    opinion: &'a mut [Opinion],
    mem0: &'a mut [u64],
    mem1: &'a mut [u64],
    gathered: &'a mut [u64],
}

impl ColumnarProtocol for ColumnarSourceFilter {
    type State = SfColumns;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_state(&self, config: &PopulationConfig, streams: &RoundStreams) -> SfColumns {
        let n = config.n();
        let mut cols = SfColumns {
            params: self.params,
            role: Vec::with_capacity(n),
            stage: vec![Stage::Listen0; n],
            round_in_stage: vec![0; n],
            counter1: vec![0; n],
            counter0: vec![0; n],
            weak: vec![None; n],
            opinion: Vec::with_capacity(n),
            mem0: vec![0; n],
            mem1: vec![0; n],
            gathered: vec![0; n],
        };
        for (id, role) in config.iter_roles().enumerate() {
            // Same single draw as the scalar init: an undefined-opinion
            // placeholder coin.
            let mut rng = streams.rng(id, StreamStage::Init);
            cols.role.push(role);
            cols.opinion.push(Opinion::from_bool(rng.gen()));
        }
        cols
    }
}

impl ColumnarState for SfColumns {
    type ChunkMut<'a>
        = SfChunkMut<'a>
    where
        Self: 'a;

    fn len(&self) -> usize {
        self.role.len()
    }

    fn display_chunk(&self, range: Range<usize>, out: &mut [usize], _streams: &RoundStreams) {
        // SF displays are deterministic given the state: no draws.
        for (slot, id) in out.iter_mut().zip(range) {
            *slot = match self.stage[id] {
                Stage::Listen0 => match self.role[id] {
                    Role::Source(pref) => pref.as_index(),
                    Role::NonSource => 0,
                },
                Stage::Listen1 => match self.role[id] {
                    Role::Source(pref) => pref.as_index(),
                    Role::NonSource => 1,
                },
                Stage::Boost(_) | Stage::Done => self.opinion[id].as_index(),
            };
        }
    }

    fn display_chunk_packed(
        &self,
        range: Range<usize>,
        chunk: &mut np_engine::packed::PackedChunkMut<'_>,
        _streams: &RoundStreams,
    ) {
        debug_assert_eq!(chunk.start(), range.start);
        debug_assert_eq!(chunk.len(), range.len());
        // One plane (d = 2): build each 64-agent word with bit ops
        // straight from the lanes — the same deterministic rule as
        // `display_chunk`, one store per word.
        let stage = &self.stage[range.clone()];
        let role = &self.role[range.clone()];
        let opinion = &self.opinion[range];
        for (w, ((stages, roles), opinions)) in stage
            .chunks(64)
            .zip(role.chunks(64))
            .zip(opinion.chunks(64))
            .enumerate()
        {
            let mut bits = 0u64;
            for (b, ((&st, &ro), &op)) in stages.iter().zip(roles).zip(opinions).enumerate() {
                let sym = match st {
                    Stage::Listen0 => match ro {
                        Role::Source(pref) => pref.as_index(),
                        Role::NonSource => 0,
                    },
                    Stage::Listen1 => match ro {
                        Role::Source(pref) => pref.as_index(),
                        Role::NonSource => 1,
                    },
                    Stage::Boost(_) | Stage::Done => op.as_index(),
                };
                bits |= (sym as u64) << b;
            }
            chunk.set_plane_word(0, w, bits);
        }
    }

    fn chunks_mut(&mut self, chunk_len: usize) -> Vec<SfChunkMut<'_>> {
        let chunk_len = chunk_len.max(1);
        let params = self.params;
        let mut out = Vec::with_capacity(self.role.len().div_ceil(chunk_len));
        let mut stage = self.stage.as_mut_slice();
        let mut round_in_stage = self.round_in_stage.as_mut_slice();
        let mut counter1 = self.counter1.as_mut_slice();
        let mut counter0 = self.counter0.as_mut_slice();
        let mut weak = self.weak.as_mut_slice();
        let mut opinion = self.opinion.as_mut_slice();
        let mut mem0 = self.mem0.as_mut_slice();
        let mut mem1 = self.mem1.as_mut_slice();
        let mut gathered = self.gathered.as_mut_slice();
        while !stage.is_empty() {
            let take = chunk_len.min(stage.len());
            macro_rules! split {
                ($lane:ident) => {{
                    let (head, tail) = std::mem::take(&mut $lane).split_at_mut(take);
                    $lane = tail;
                    head
                }};
            }
            out.push(SfChunkMut {
                params,
                stage: split!(stage),
                round_in_stage: split!(round_in_stage),
                counter1: split!(counter1),
                counter0: split!(counter0),
                weak: split!(weak),
                opinion: split!(opinion),
                mem0: split!(mem0),
                mem1: split!(mem1),
                gathered: split!(gathered),
            });
        }
        out
    }

    fn step_chunk(
        chunk: &mut SfChunkMut<'_>,
        range: Range<usize>,
        observed: &[u64],
        d: usize,
        streams: &RoundStreams,
        awake: Option<&[bool]>,
    ) {
        debug_assert_eq!(d, 2);
        let params = chunk.params;
        for ((i, id), obs) in (0..chunk.stage.len())
            .zip(range)
            .zip(observed.chunks_exact(d))
        {
            if awake.is_some_and(|mask| !mask[i]) {
                continue;
            }
            let mut rng = LazyRng::new(streams, id, StreamStage::Update);
            match chunk.stage[i] {
                Stage::Listen0 => {
                    chunk.counter1[i] += obs[1];
                    chunk.round_in_stage[i] += 1;
                    chunk.gathered[i] += obs.iter().sum::<u64>();
                    np_engine::invariants::check_counter_bounded(
                        "SF Counter₁",
                        chunk.counter1[i],
                        chunk.gathered[i],
                    );
                    if chunk.round_in_stage[i] >= params.phase_len() {
                        chunk.stage[i] = Stage::Listen1;
                        chunk.round_in_stage[i] = 0;
                        chunk.gathered[i] = 0;
                    }
                }
                Stage::Listen1 => {
                    chunk.counter0[i] += obs[0];
                    chunk.round_in_stage[i] += 1;
                    chunk.gathered[i] += obs.iter().sum::<u64>();
                    np_engine::invariants::check_counter_bounded(
                        "SF Counter₀",
                        chunk.counter0[i],
                        chunk.gathered[i],
                    );
                    if chunk.round_in_stage[i] >= params.phase_len() {
                        let weak = majority(chunk.counter1[i], chunk.counter0[i], &mut rng);
                        chunk.weak[i] = Some(weak);
                        chunk.opinion[i] = weak;
                        chunk.stage[i] = Stage::Boost(0);
                        chunk.round_in_stage[i] = 0;
                        chunk.mem0[i] = 0;
                        chunk.mem1[i] = 0;
                        chunk.gathered[i] = 0;
                    }
                }
                Stage::Boost(subphase) => {
                    chunk.mem0[i] += obs[0];
                    chunk.mem1[i] += obs[1];
                    chunk.round_in_stage[i] += 1;
                    chunk.gathered[i] += obs.iter().sum::<u64>();
                    np_engine::invariants::check_counter_bounded(
                        "SF boosting memory",
                        chunk.mem0[i] + chunk.mem1[i],
                        chunk.gathered[i],
                    );
                    let len = if subphase < params.num_short_subphases() {
                        params.subphase_len()
                    } else {
                        params.final_subphase_len()
                    };
                    if chunk.round_in_stage[i] >= len {
                        chunk.opinion[i] = majority(chunk.mem1[i], chunk.mem0[i], &mut rng);
                        chunk.mem0[i] = 0;
                        chunk.mem1[i] = 0;
                        chunk.round_in_stage[i] = 0;
                        chunk.gathered[i] = 0;
                        chunk.stage[i] = if subphase >= params.num_short_subphases() {
                            Stage::Done
                        } else {
                            Stage::Boost(subphase + 1)
                        };
                    }
                }
                Stage::Done => {}
            }
        }
    }

    fn opinion(&self, id: usize) -> Opinion {
        self.opinion[id]
    }

    fn count_opinion(&self, opinion: Opinion) -> usize {
        self.opinion.iter().filter(|&&o| o == opinion).count()
    }

    /// Same numbering as scalar SF: Listen₀ = 0, Listen₁ = 1,
    /// Boost(k) = 2 + k, Done = `u32::MAX`.
    fn stage_id(&self, id: usize) -> u32 {
        stage_code(self.stage[id])
    }

    fn weak_opinion(&self, id: usize) -> Option<Opinion> {
        self.weak[id]
    }

    /// Fused lane sweep: one zipped pass over the opinion, stage and weak
    /// lanes — value-identical to the default per-agent walk (the
    /// `BTreeMap` keeps the stage list in the same ascending order).
    fn metrics_sweep(&self, correct: Opinion) -> np_engine::metrics::MetricsSweep {
        let mut sweep = np_engine::metrics::MetricsSweep::default();
        let mut stages: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for ((&op, &st), &weak) in self.opinion.iter().zip(&self.stage).zip(&self.weak) {
            if op == correct {
                sweep.correct += 1;
            }
            *stages.entry(stage_code(st)).or_insert(0) += 1;
            if let Some(weak) = weak {
                sweep.weak_formed += 1;
                if weak == correct {
                    sweep.weak_correct += 1;
                }
            }
        }
        sweep.stages = stages.into_iter().collect();
        sweep
    }

    /// Mirrors the scalar trend-change hook
    /// ([`crate::sf::SfAgent`]'s `flip_source_preference`).
    fn flip_source_preferences(&mut self) -> usize {
        let mut flipped = 0;
        for role in self.role.iter_mut() {
            if let Role::Source(pref) = *role {
                *role = Role::Source(!pref);
                flipped += 1;
            }
        }
        flipped
    }
}

/// The scalar stage numbering shared by [`ColumnarState::stage_id`] and
/// the fused metrics sweep.
fn stage_code(stage: Stage) -> u32 {
    match stage {
        Stage::Listen0 => 0,
        Stage::Listen1 => 1,
        Stage::Boost(k) => u32::try_from(k.saturating_add(2))
            .unwrap_or(u32::MAX)
            .min(u32::MAX - 1),
        Stage::Done => u32::MAX,
    }
}

impl np_engine::snapshot::SnapshotState for SfColumns {
    const SNAP_TAG: &'static str = "sf-columns/v1";

    fn encode_state(&self, w: &mut np_engine::snapshot::SnapWriter) {
        let n = self.role.len();
        w.put_usize(n);
        self.params.encode_snap(w);
        for &role in &self.role {
            w.put_role(role);
        }
        for &stage in &self.stage {
            match stage {
                Stage::Listen0 => w.put_u8(0),
                Stage::Listen1 => w.put_u8(1),
                Stage::Boost(k) => {
                    w.put_u8(2);
                    w.put_u64(k);
                }
                Stage::Done => w.put_u8(3),
            }
        }
        for lane in [
            &self.round_in_stage,
            &self.counter1,
            &self.counter0,
            &self.mem0,
            &self.mem1,
            &self.gathered,
        ] {
            for &x in lane {
                w.put_u64(x);
            }
        }
        for &weak in &self.weak {
            w.put_opt_opinion(weak);
        }
        for &opinion in &self.opinion {
            w.put_opinion(opinion);
        }
    }

    fn decode_state(r: &mut np_engine::snapshot::SnapReader<'_>) -> np_engine::Result<Self> {
        let n = r.take_usize()?;
        let params = SfParams::decode_snap(r)?;
        let cap = n.min(r.remaining());
        let mut role = Vec::with_capacity(cap);
        for _ in 0..n {
            role.push(r.take_role()?);
        }
        let mut stage = Vec::with_capacity(cap);
        for _ in 0..n {
            stage.push(match r.take_u8()? {
                0 => Stage::Listen0,
                1 => Stage::Listen1,
                2 => Stage::Boost(r.take_u64()?),
                3 => Stage::Done,
                x => {
                    return Err(np_engine::EngineError::BadSnapshot {
                        detail: format!("invalid SF stage byte {x}"),
                    })
                }
            });
        }
        let mut u64_lane = || -> np_engine::Result<Vec<u64>> {
            let mut lane = Vec::with_capacity(cap);
            for _ in 0..n {
                lane.push(r.take_u64()?);
            }
            Ok(lane)
        };
        let round_in_stage = u64_lane()?;
        let counter1 = u64_lane()?;
        let counter0 = u64_lane()?;
        let mem0 = u64_lane()?;
        let mem1 = u64_lane()?;
        let gathered = u64_lane()?;
        let mut weak = Vec::with_capacity(cap);
        for _ in 0..n {
            weak.push(r.take_opt_opinion()?);
        }
        let mut opinion = Vec::with_capacity(cap);
        for _ in 0..n {
            opinion.push(r.take_opinion()?);
        }
        Ok(SfColumns {
            params,
            role,
            stage,
            round_in_stage,
            counter1,
            counter0,
            weak,
            opinion,
            mem0,
            mem1,
            gathered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sf::SourceFilter;
    use np_engine::channel::ChannelKind;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;

    fn worlds(seed: u64) -> (World<SourceFilter>, World<ColumnarSourceFilter>, SfParams) {
        let config = PopulationConfig::new(96, 1, 2, 96).unwrap();
        let params = SfParams::derive(&config, 0.15, 1.0).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
        let scalar = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .unwrap();
        let columnar = World::new(
            &ColumnarSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .unwrap();
        (scalar, columnar, params)
    }

    #[test]
    fn matches_scalar_sf_round_by_round() {
        let (mut scalar, mut columnar, params) = worlds(31);
        assert_eq!(scalar.opinions(), columnar.opinions(), "init");
        for round in 0..params.total_rounds() {
            scalar.step();
            columnar.step();
            assert_eq!(scalar.opinions(), columnar.opinions(), "round {round}");
        }
        for id in 0..scalar.config().n() {
            assert_eq!(
                scalar.agent(id).weak_opinion(),
                columnar.state().weak_opinion(id),
                "weak opinion of agent {id}"
            );
            assert!(columnar.state().is_done(id));
        }
    }

    #[test]
    fn matches_scalar_under_many_thread_counts() {
        let (mut scalar, _, params) = worlds(47);
        scalar.set_threads(1);
        scalar.run(params.total_rounds());
        for threads in [2, 5, 13] {
            let (_, mut columnar, _) = worlds(47);
            columnar.set_threads(threads);
            columnar.run(params.total_rounds());
            assert_eq!(scalar.opinions(), columnar.opinions(), "threads {threads}");
        }
    }

    #[test]
    fn accessors() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0).unwrap();
        let proto = ColumnarSourceFilter::new(params);
        assert_eq!(proto.alphabet_size(), 2);
        assert_eq!(proto.params(), &params);
        let state = proto.init_state(&config, &RoundStreams::new(0, 0));
        assert_eq!(state.len(), 8);
        assert!(!state.is_empty());
        assert!(!state.is_done(0));
        assert_eq!(state.weak_opinion(0), None);
    }
}
