//! Columnar port of SF-ALT
//! ([`crate::sf_alternating::AlternatingSourceFilter`]).
//!
//! Same schedule, same draws, struct-of-arrays state. See
//! [`crate::columnar`] for the equivalence contract.

use std::ops::Range;

use np_engine::opinion::Opinion;
use np_engine::population::{PopulationConfig, Role};
use np_engine::protocol::{ColumnarProtocol, ColumnarState};
use np_engine::streams::{RoundStreams, StreamStage};
use rand::Rng;

use super::{majority, LazyRng};
use crate::params::SfParams;

/// Execution stage of one SF-ALT agent (mirrors the scalar `Stage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Listening,
    Boost(u64),
    Done,
}

/// Columnar alternating Source Filter: bit-identical to
/// [`crate::sf_alternating::AlternatingSourceFilter`] on the same world
/// arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnarAltSf {
    params: SfParams,
}

impl ColumnarAltSf {
    /// Creates the protocol from a derived schedule.
    pub fn new(params: SfParams) -> Self {
        ColumnarAltSf { params }
    }

    /// The schedule in use.
    pub fn params(&self) -> &SfParams {
        &self.params
    }
}

/// Struct-of-arrays population state of columnar SF-ALT.
#[derive(Debug, Clone)]
pub struct AltSfColumns {
    params: SfParams,
    role: Vec<Role>,
    stage: Vec<Stage>,
    round_in_stage: Vec<u64>,
    base_display: Vec<Opinion>,
    diff: Vec<i64>,
    weak: Vec<Option<Opinion>>,
    opinion: Vec<Opinion>,
    mem0: Vec<u64>,
    mem1: Vec<u64>,
}

impl AltSfColumns {
    /// The weak opinion of agent `id`, once the listening stage completed.
    pub fn weak_opinion(&self, id: usize) -> Option<Opinion> {
        self.weak[id]
    }

    /// The running signed evidence `#1s − #0s` of agent `id`.
    pub fn evidence(&self, id: usize) -> i64 {
        self.diff[id]
    }

    /// Returns `true` once agent `id` has completed the schedule.
    pub fn is_done(&self, id: usize) -> bool {
        self.stage[id] == Stage::Done
    }
}

/// Disjoint mutable chunk view over the update-phase lanes of
/// [`AltSfColumns`].
#[derive(Debug)]
pub struct AltSfChunkMut<'a> {
    params: SfParams,
    stage: &'a mut [Stage],
    round_in_stage: &'a mut [u64],
    diff: &'a mut [i64],
    weak: &'a mut [Option<Opinion>],
    opinion: &'a mut [Opinion],
    mem0: &'a mut [u64],
    mem1: &'a mut [u64],
}

impl ColumnarProtocol for ColumnarAltSf {
    type State = AltSfColumns;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_state(&self, config: &PopulationConfig, streams: &RoundStreams) -> AltSfColumns {
        let n = config.n();
        let mut cols = AltSfColumns {
            params: self.params,
            role: Vec::with_capacity(n),
            stage: vec![Stage::Listening; n],
            round_in_stage: vec![0; n],
            base_display: Vec::with_capacity(n),
            diff: vec![0; n],
            weak: vec![None; n],
            opinion: Vec::with_capacity(n),
            mem0: vec![0; n],
            mem1: vec![0; n],
        };
        for (id, role) in config.iter_roles().enumerate() {
            // Same two draws, same order, as the scalar init: the display
            // coin first, then the placeholder opinion.
            let mut rng = streams.rng(id, StreamStage::Init);
            cols.role.push(role);
            cols.base_display.push(Opinion::from_bool(rng.gen()));
            cols.opinion.push(Opinion::from_bool(rng.gen()));
        }
        cols
    }
}

impl ColumnarState for AltSfColumns {
    type ChunkMut<'a>
        = AltSfChunkMut<'a>
    where
        Self: 'a;

    fn len(&self) -> usize {
        self.role.len()
    }

    fn display_chunk(&self, range: Range<usize>, out: &mut [usize], _streams: &RoundStreams) {
        for (slot, id) in out.iter_mut().zip(range) {
            *slot = match self.stage[id] {
                Stage::Listening => match self.role[id] {
                    Role::Source(pref) => pref.as_index(),
                    Role::NonSource => {
                        // b on even rounds, 1−b on odd rounds.
                        if self.round_in_stage[id].is_multiple_of(2) {
                            self.base_display[id].as_index()
                        } else {
                            (!self.base_display[id]).as_index()
                        }
                    }
                },
                Stage::Boost(_) | Stage::Done => self.opinion[id].as_index(),
            };
        }
    }

    fn display_chunk_packed(
        &self,
        range: Range<usize>,
        chunk: &mut np_engine::packed::PackedChunkMut<'_>,
        _streams: &RoundStreams,
    ) {
        debug_assert_eq!(chunk.start(), range.start);
        debug_assert_eq!(chunk.len(), range.len());
        // One plane (d = 2), same alternating rule as `display_chunk`,
        // built one 64-agent word per store.
        let stage = &self.stage[range.clone()];
        let role = &self.role[range.clone()];
        let round_in_stage = &self.round_in_stage[range.clone()];
        let base = &self.base_display[range.clone()];
        let opinion = &self.opinion[range];
        for (w, ((((stages, roles), rounds), bases), opinions)) in stage
            .chunks(64)
            .zip(role.chunks(64))
            .zip(round_in_stage.chunks(64))
            .zip(base.chunks(64))
            .zip(opinion.chunks(64))
            .enumerate()
        {
            let mut bits = 0u64;
            for (b, ((((&st, &ro), &r), &bd), &op)) in stages
                .iter()
                .zip(roles)
                .zip(rounds)
                .zip(bases)
                .zip(opinions)
                .enumerate()
            {
                let sym = match st {
                    Stage::Listening => match ro {
                        Role::Source(pref) => pref.as_index(),
                        Role::NonSource => {
                            // b on even rounds, 1−b on odd rounds.
                            if r.is_multiple_of(2) {
                                bd.as_index()
                            } else {
                                (!bd).as_index()
                            }
                        }
                    },
                    Stage::Boost(_) | Stage::Done => op.as_index(),
                };
                bits |= (sym as u64) << b;
            }
            chunk.set_plane_word(0, w, bits);
        }
    }

    fn chunks_mut(&mut self, chunk_len: usize) -> Vec<AltSfChunkMut<'_>> {
        let chunk_len = chunk_len.max(1);
        let params = self.params;
        let mut out = Vec::with_capacity(self.role.len().div_ceil(chunk_len));
        let mut stage = self.stage.as_mut_slice();
        let mut round_in_stage = self.round_in_stage.as_mut_slice();
        let mut diff = self.diff.as_mut_slice();
        let mut weak = self.weak.as_mut_slice();
        let mut opinion = self.opinion.as_mut_slice();
        let mut mem0 = self.mem0.as_mut_slice();
        let mut mem1 = self.mem1.as_mut_slice();
        while !stage.is_empty() {
            let take = chunk_len.min(stage.len());
            macro_rules! split {
                ($lane:ident) => {{
                    let (head, tail) = std::mem::take(&mut $lane).split_at_mut(take);
                    $lane = tail;
                    head
                }};
            }
            out.push(AltSfChunkMut {
                params,
                stage: split!(stage),
                round_in_stage: split!(round_in_stage),
                diff: split!(diff),
                weak: split!(weak),
                opinion: split!(opinion),
                mem0: split!(mem0),
                mem1: split!(mem1),
            });
        }
        out
    }

    fn step_chunk(
        chunk: &mut AltSfChunkMut<'_>,
        range: Range<usize>,
        observed: &[u64],
        d: usize,
        streams: &RoundStreams,
        awake: Option<&[bool]>,
    ) {
        debug_assert_eq!(d, 2);
        let params = chunk.params;
        for ((i, id), obs) in (0..chunk.stage.len())
            .zip(range)
            .zip(observed.chunks_exact(d))
        {
            if awake.is_some_and(|mask| !mask[i]) {
                continue;
            }
            let mut rng = LazyRng::new(streams, id, StreamStage::Update);
            match chunk.stage[i] {
                Stage::Listening => {
                    chunk.diff[i] += obs[1] as i64 - obs[0] as i64;
                    chunk.round_in_stage[i] += 1;
                    if chunk.round_in_stage[i] >= 2 * params.phase_len() {
                        let weak = match chunk.diff[i].cmp(&0) {
                            std::cmp::Ordering::Greater => Opinion::One,
                            std::cmp::Ordering::Less => Opinion::Zero,
                            std::cmp::Ordering::Equal => Opinion::from_bool(rng.coin()),
                        };
                        chunk.weak[i] = Some(weak);
                        chunk.opinion[i] = weak;
                        chunk.stage[i] = Stage::Boost(0);
                        chunk.round_in_stage[i] = 0;
                        chunk.mem0[i] = 0;
                        chunk.mem1[i] = 0;
                    }
                }
                Stage::Boost(subphase) => {
                    chunk.mem0[i] += obs[0];
                    chunk.mem1[i] += obs[1];
                    chunk.round_in_stage[i] += 1;
                    let len = if subphase < params.num_short_subphases() {
                        params.subphase_len()
                    } else {
                        params.final_subphase_len()
                    };
                    if chunk.round_in_stage[i] >= len {
                        chunk.opinion[i] = majority(chunk.mem1[i], chunk.mem0[i], &mut rng);
                        chunk.mem0[i] = 0;
                        chunk.mem1[i] = 0;
                        chunk.round_in_stage[i] = 0;
                        chunk.stage[i] = if subphase >= params.num_short_subphases() {
                            Stage::Done
                        } else {
                            Stage::Boost(subphase + 1)
                        };
                    }
                }
                Stage::Done => {}
            }
        }
    }

    fn opinion(&self, id: usize) -> Opinion {
        self.opinion[id]
    }

    fn count_opinion(&self, opinion: Opinion) -> usize {
        self.opinion.iter().filter(|&&o| o == opinion).count()
    }

    /// Same numbering as scalar SF-ALT: Listening = 0, Boost(k) = 2 + k,
    /// Done = `u32::MAX` (stage 1 unused, mirroring plain SF's boosts).
    fn stage_id(&self, id: usize) -> u32 {
        stage_code(self.stage[id])
    }

    fn weak_opinion(&self, id: usize) -> Option<Opinion> {
        self.weak[id]
    }

    /// Fused lane sweep: one zipped pass over the opinion, stage and weak
    /// lanes — value-identical to the default per-agent walk.
    fn metrics_sweep(&self, correct: Opinion) -> np_engine::metrics::MetricsSweep {
        let mut sweep = np_engine::metrics::MetricsSweep::default();
        let mut stages: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for ((&op, &st), &weak) in self.opinion.iter().zip(&self.stage).zip(&self.weak) {
            if op == correct {
                sweep.correct += 1;
            }
            *stages.entry(stage_code(st)).or_insert(0) += 1;
            if let Some(weak) = weak {
                sweep.weak_formed += 1;
                if weak == correct {
                    sweep.weak_correct += 1;
                }
            }
        }
        sweep.stages = stages.into_iter().collect();
        sweep
    }

    /// Mirrors the scalar trend-change hook
    /// ([`crate::sf_alternating::AltSfAgent`]'s `flip_source_preference`).
    fn flip_source_preferences(&mut self) -> usize {
        let mut flipped = 0;
        for role in self.role.iter_mut() {
            if let Role::Source(pref) = *role {
                *role = Role::Source(!pref);
                flipped += 1;
            }
        }
        flipped
    }
}

/// The scalar stage numbering shared by [`ColumnarState::stage_id`] and
/// the fused metrics sweep: Listening = 0, Boost(k) = 2 + k,
/// Done = `u32::MAX`.
fn stage_code(stage: Stage) -> u32 {
    match stage {
        Stage::Listening => 0,
        Stage::Boost(k) => u32::try_from(k.saturating_add(2))
            .unwrap_or(u32::MAX)
            .min(u32::MAX - 1),
        Stage::Done => u32::MAX,
    }
}

impl np_engine::snapshot::SnapshotState for AltSfColumns {
    const SNAP_TAG: &'static str = "sf-alt-columns/v1";

    fn encode_state(&self, w: &mut np_engine::snapshot::SnapWriter) {
        let n = self.role.len();
        w.put_usize(n);
        self.params.encode_snap(w);
        for &role in &self.role {
            w.put_role(role);
        }
        for &stage in &self.stage {
            match stage {
                Stage::Listening => w.put_u8(0),
                Stage::Boost(k) => {
                    w.put_u8(1);
                    w.put_u64(k);
                }
                Stage::Done => w.put_u8(2),
            }
        }
        for lane in [&self.round_in_stage, &self.mem0, &self.mem1] {
            for &x in lane {
                w.put_u64(x);
            }
        }
        for &base in &self.base_display {
            w.put_opinion(base);
        }
        for &d in &self.diff {
            w.put_i64(d);
        }
        for &weak in &self.weak {
            w.put_opt_opinion(weak);
        }
        for &opinion in &self.opinion {
            w.put_opinion(opinion);
        }
    }

    fn decode_state(r: &mut np_engine::snapshot::SnapReader<'_>) -> np_engine::Result<Self> {
        let n = r.take_usize()?;
        let params = SfParams::decode_snap(r)?;
        let cap = n.min(r.remaining());
        let mut role = Vec::with_capacity(cap);
        for _ in 0..n {
            role.push(r.take_role()?);
        }
        let mut stage = Vec::with_capacity(cap);
        for _ in 0..n {
            stage.push(match r.take_u8()? {
                0 => Stage::Listening,
                1 => Stage::Boost(r.take_u64()?),
                2 => Stage::Done,
                x => {
                    return Err(np_engine::EngineError::BadSnapshot {
                        detail: format!("invalid SF-ALT stage byte {x}"),
                    })
                }
            });
        }
        let mut u64_lane = || -> np_engine::Result<Vec<u64>> {
            let mut lane = Vec::with_capacity(cap);
            for _ in 0..n {
                lane.push(r.take_u64()?);
            }
            Ok(lane)
        };
        let round_in_stage = u64_lane()?;
        let mem0 = u64_lane()?;
        let mem1 = u64_lane()?;
        let mut base_display = Vec::with_capacity(cap);
        for _ in 0..n {
            base_display.push(r.take_opinion()?);
        }
        let mut diff = Vec::with_capacity(cap);
        for _ in 0..n {
            diff.push(r.take_i64()?);
        }
        let mut weak = Vec::with_capacity(cap);
        for _ in 0..n {
            weak.push(r.take_opt_opinion()?);
        }
        let mut opinion = Vec::with_capacity(cap);
        for _ in 0..n {
            opinion.push(r.take_opinion()?);
        }
        Ok(AltSfColumns {
            params,
            role,
            stage,
            round_in_stage,
            base_display,
            diff,
            weak,
            opinion,
            mem0,
            mem1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sf_alternating::AlternatingSourceFilter;
    use np_engine::channel::ChannelKind;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;

    #[test]
    fn matches_scalar_sf_alt_round_by_round() {
        let config = PopulationConfig::new(96, 0, 1, 96).unwrap();
        let params = SfParams::derive(&config, 0.2, 1.0).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
        let mut scalar = World::new(
            &AlternatingSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            41,
        )
        .unwrap();
        let mut columnar = World::new(
            &ColumnarAltSf::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            41,
        )
        .unwrap();
        assert_eq!(scalar.opinions(), columnar.opinions(), "init");
        for round in 0..params.total_rounds() {
            scalar.step();
            columnar.step();
            assert_eq!(scalar.opinions(), columnar.opinions(), "round {round}");
        }
        for id in 0..scalar.config().n() {
            assert_eq!(
                scalar.agent(id).weak_opinion(),
                columnar.state().weak_opinion(id)
            );
            assert_eq!(scalar.agent(id).evidence(), columnar.state().evidence(id));
            assert!(columnar.state().is_done(id));
        }
    }

    #[test]
    fn accessors() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0).unwrap();
        let proto = ColumnarAltSf::new(params);
        assert_eq!(proto.alphabet_size(), 2);
        assert_eq!(proto.params(), &params);
        let state = proto.init_state(&config, &RoundStreams::new(0, 0));
        assert_eq!(state.len(), 8);
        assert!(!state.is_done(3));
        assert_eq!(state.evidence(3), 0);
    }
}
