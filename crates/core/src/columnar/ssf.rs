//! Columnar port of Algorithm SSF
//! ([`crate::ssf::SelfStabilizingSourceFilter`]).
//!
//! Same update rule, same draws, struct-of-arrays state: the four-counter
//! memory of [`crate::ssf::SsfAgent`] becomes four `Vec<u64>` lanes. See
//! [`crate::columnar`] for the equivalence contract.

use std::ops::Range;

use np_engine::opinion::Opinion;
use np_engine::population::{PopulationConfig, Role};
use np_engine::protocol::{ColumnarProtocol, ColumnarState};
use np_engine::streams::{RoundStreams, StreamStage};
use rand::Rng;

use super::{majority, LazyRng};
use crate::params::SsfParams;
use crate::ssf::encode;

/// Columnar Self-stabilizing Source Filter: bit-identical to
/// [`crate::ssf::SelfStabilizingSourceFilter`] on the same world
/// arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnarSsf {
    params: SsfParams,
}

impl ColumnarSsf {
    /// Creates the protocol from derived parameters.
    pub fn new(params: SsfParams) -> Self {
        ColumnarSsf { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &SsfParams {
        &self.params
    }
}

/// Struct-of-arrays population state of columnar SSF.
#[derive(Debug, Clone)]
pub struct SsfColumns {
    m: u64,
    role: Vec<Role>,
    /// One lane per symbol of the 2-bit alphabet (see
    /// [`crate::ssf::encode`]).
    mem: [Vec<u64>; 4],
    mem_size: Vec<u64>,
    weak: Vec<Opinion>,
    opinion: Vec<Opinion>,
    /// Completed update rounds per agent — observability bookkeeping only
    /// (the trace stage), mirroring [`crate::ssf::SsfAgent::updates`]. Not
    /// corruptible.
    updates: Vec<u64>,
}

impl SsfColumns {
    /// The current weak opinion of agent `id`.
    pub fn weak_opinion(&self, id: usize) -> Opinion {
        self.weak[id]
    }

    /// Number of completed update rounds (memory flushes) of agent `id`.
    pub fn updates(&self, id: usize) -> u64 {
        self.updates[id]
    }

    /// Current memory occupancy `|M|` of agent `id`.
    pub fn memory_size(&self, id: usize) -> u64 {
        self.mem_size[id]
    }

    /// The memory capacity `m` (protected from the adversary).
    pub fn capacity(&self) -> u64 {
        self.m
    }

    /// Overwrites agent `id`'s corruptible state — the columnar form of
    /// [`crate::ssf::SsfAgent::corrupt_state`]. The role and the capacity
    /// `m` are not corruptible.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn corrupt(&mut self, id: usize, weak: Opinion, opinion: Opinion, memory: [u64; 4]) {
        self.weak[id] = weak;
        self.opinion[id] = opinion;
        for (lane, count) in self.mem.iter_mut().zip(memory) {
            lane[id] = count;
        }
        self.mem_size[id] = memory.iter().sum();
    }
}

/// Disjoint mutable chunk view over the update-phase lanes of
/// [`SsfColumns`].
#[derive(Debug)]
pub struct SsfChunkMut<'a> {
    m: u64,
    mem: [&'a mut [u64]; 4],
    mem_size: &'a mut [u64],
    weak: &'a mut [Opinion],
    opinion: &'a mut [Opinion],
    updates: &'a mut [u64],
}

impl ColumnarProtocol for ColumnarSsf {
    type State = SsfColumns;

    fn alphabet_size(&self) -> usize {
        4
    }

    fn init_state(&self, config: &PopulationConfig, streams: &RoundStreams) -> SsfColumns {
        let n = config.n();
        let mut cols = SsfColumns {
            m: self.params.m(),
            role: Vec::with_capacity(n),
            mem: std::array::from_fn(|_| vec![0; n]),
            mem_size: vec![0; n],
            weak: Vec::with_capacity(n),
            opinion: Vec::with_capacity(n),
            updates: vec![0; n],
        };
        for (id, role) in config.iter_roles().enumerate() {
            // Same two draws, same order, as the scalar init: weak first,
            // then opinion.
            let mut rng = streams.rng(id, StreamStage::Init);
            cols.role.push(role);
            cols.weak.push(Opinion::from_bool(rng.gen()));
            cols.opinion.push(Opinion::from_bool(rng.gen()));
        }
        cols
    }
}

impl ColumnarState for SsfColumns {
    type ChunkMut<'a>
        = SsfChunkMut<'a>
    where
        Self: 'a;

    fn len(&self) -> usize {
        self.role.len()
    }

    fn display_chunk(&self, range: Range<usize>, out: &mut [usize], _streams: &RoundStreams) {
        // SSF displays are deterministic given the state: no draws.
        for (slot, id) in out.iter_mut().zip(range) {
            *slot = match self.role[id] {
                Role::Source(pref) => encode(true, pref),
                Role::NonSource => encode(false, self.weak[id]),
            };
        }
    }

    fn display_chunk_packed(
        &self,
        range: Range<usize>,
        chunk: &mut np_engine::packed::PackedChunkMut<'_>,
        _streams: &RoundStreams,
    ) {
        debug_assert_eq!(chunk.start(), range.start);
        debug_assert_eq!(chunk.len(), range.len());
        // Two planes (d = 4): plane 1 carries the source tag, plane 0 the
        // displayed value — the bit layout of [`encode`] — built one
        // 64-agent word per store.
        let role = &self.role[range.clone()];
        let weak = &self.weak[range];
        for (w, (roles, weaks)) in role.chunks(64).zip(weak.chunks(64)).enumerate() {
            let mut low = 0u64;
            let mut high = 0u64;
            for (b, (&ro, &wk)) in roles.iter().zip(weaks).enumerate() {
                let sym = match ro {
                    Role::Source(pref) => encode(true, pref),
                    Role::NonSource => encode(false, wk),
                };
                low |= ((sym & 1) as u64) << b;
                high |= ((sym >> 1) as u64) << b;
            }
            chunk.set_plane_word(0, w, low);
            chunk.set_plane_word(1, w, high);
        }
    }

    fn chunks_mut(&mut self, chunk_len: usize) -> Vec<SsfChunkMut<'_>> {
        let chunk_len = chunk_len.max(1);
        let m = self.m;
        let mut out = Vec::with_capacity(self.role.len().div_ceil(chunk_len));
        let [m0, m1, m2, m3] = &mut self.mem;
        let mut mem0 = m0.as_mut_slice();
        let mut mem1 = m1.as_mut_slice();
        let mut mem2 = m2.as_mut_slice();
        let mut mem3 = m3.as_mut_slice();
        let mut mem_size = self.mem_size.as_mut_slice();
        let mut weak = self.weak.as_mut_slice();
        let mut opinion = self.opinion.as_mut_slice();
        let mut updates = self.updates.as_mut_slice();
        while !mem_size.is_empty() {
            let take = chunk_len.min(mem_size.len());
            macro_rules! split {
                ($lane:ident) => {{
                    let (head, tail) = std::mem::take(&mut $lane).split_at_mut(take);
                    $lane = tail;
                    head
                }};
            }
            out.push(SsfChunkMut {
                m,
                mem: [split!(mem0), split!(mem1), split!(mem2), split!(mem3)],
                mem_size: split!(mem_size),
                weak: split!(weak),
                opinion: split!(opinion),
                updates: split!(updates),
            });
        }
        out
    }

    fn step_chunk(
        chunk: &mut SsfChunkMut<'_>,
        range: Range<usize>,
        observed: &[u64],
        d: usize,
        streams: &RoundStreams,
        awake: Option<&[bool]>,
    ) {
        debug_assert_eq!(d, 4);
        for ((i, id), obs) in (0..chunk.mem_size.len())
            .zip(range)
            .zip(observed.chunks_exact(d))
        {
            if awake.is_some_and(|mask| !mask[i]) {
                continue;
            }
            for (lane, &c) in chunk.mem.iter_mut().zip(obs) {
                lane[i] += c;
            }
            chunk.mem_size[i] += obs.iter().sum::<u64>();
            np_engine::invariants::check_counter_bounded(
                "SSF memory counters",
                chunk.mem.iter().map(|lane| lane[i]).sum::<u64>(),
                chunk.mem_size[i],
            );
            if chunk.mem_size[i] >= chunk.m {
                // One RNG per update round, weak tie first then opinion
                // tie — the scalar draw order.
                let mut rng = LazyRng::new(streams, id, StreamStage::Update);
                chunk.weak[i] = majority(chunk.mem[3][i], chunk.mem[2][i], &mut rng);
                chunk.opinion[i] = majority(
                    chunk.mem[1][i] + chunk.mem[3][i],
                    chunk.mem[0][i] + chunk.mem[2][i],
                    &mut rng,
                );
                for lane in chunk.mem.iter_mut() {
                    lane[i] = 0;
                }
                chunk.mem_size[i] = 0;
                chunk.updates[i] = chunk.updates[i].saturating_add(1);
            }
        }
    }

    fn opinion(&self, id: usize) -> Opinion {
        self.opinion[id]
    }

    fn count_opinion(&self, opinion: Opinion) -> usize {
        self.opinion.iter().filter(|&&o| o == opinion).count()
    }

    /// Same stage notion as scalar SSF: the completed-update count.
    fn stage_id(&self, id: usize) -> u32 {
        u32::try_from(self.updates[id]).unwrap_or(u32::MAX)
    }

    fn weak_opinion(&self, id: usize) -> Option<Opinion> {
        Some(self.weak[id])
    }

    /// Fused lane sweep: one zipped pass over the opinion, updates and
    /// weak lanes — value-identical to the default per-agent walk (every
    /// SSF agent always has a weak opinion).
    fn metrics_sweep(&self, correct: Opinion) -> np_engine::metrics::MetricsSweep {
        let mut sweep = np_engine::metrics::MetricsSweep::default();
        let mut stages: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for ((&op, &updates), &weak) in self.opinion.iter().zip(&self.updates).zip(&self.weak) {
            if op == correct {
                sweep.correct += 1;
            }
            *stages
                .entry(u32::try_from(updates).unwrap_or(u32::MAX))
                .or_insert(0) += 1;
            sweep.weak_formed += 1;
            if weak == correct {
                sweep.weak_correct += 1;
            }
        }
        sweep.stages = stages.into_iter().collect();
        sweep
    }

    /// Mirrors the scalar trend-change hook
    /// ([`crate::ssf::SsfAgent`]'s `flip_source_preference`).
    fn flip_source_preferences(&mut self) -> usize {
        let mut flipped = 0;
        for role in self.role.iter_mut() {
            if let Role::Source(pref) = *role {
                *role = Role::Source(!pref);
                flipped += 1;
            }
        }
        flipped
    }
}

impl np_engine::snapshot::SnapshotState for SsfColumns {
    const SNAP_TAG: &'static str = "ssf-columns/v1";

    fn encode_state(&self, w: &mut np_engine::snapshot::SnapWriter) {
        let n = self.role.len();
        w.put_usize(n);
        w.put_u64(self.m);
        for &role in &self.role {
            w.put_role(role);
        }
        for lane in &self.mem {
            for &x in lane {
                w.put_u64(x);
            }
        }
        for lane in [&self.mem_size, &self.updates] {
            for &x in lane {
                w.put_u64(x);
            }
        }
        for &weak in &self.weak {
            w.put_opinion(weak);
        }
        for &opinion in &self.opinion {
            w.put_opinion(opinion);
        }
    }

    fn decode_state(r: &mut np_engine::snapshot::SnapReader<'_>) -> np_engine::Result<Self> {
        let n = r.take_usize()?;
        let m = r.take_u64()?;
        let cap = n.min(r.remaining());
        let mut role = Vec::with_capacity(cap);
        for _ in 0..n {
            role.push(r.take_role()?);
        }
        let mut u64_lane = || -> np_engine::Result<Vec<u64>> {
            let mut lane = Vec::with_capacity(cap);
            for _ in 0..n {
                lane.push(r.take_u64()?);
            }
            Ok(lane)
        };
        let mem = [u64_lane()?, u64_lane()?, u64_lane()?, u64_lane()?];
        let mem_size = u64_lane()?;
        let updates = u64_lane()?;
        let mut weak = Vec::with_capacity(cap);
        for _ in 0..n {
            weak.push(r.take_opinion()?);
        }
        let mut opinion = Vec::with_capacity(cap);
        for _ in 0..n {
            opinion.push(r.take_opinion()?);
        }
        Ok(SsfColumns {
            m,
            role,
            mem,
            mem_size,
            weak,
            opinion,
            updates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssf::SelfStabilizingSourceFilter;
    use np_engine::channel::ChannelKind;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;

    fn worlds(
        seed: u64,
    ) -> (
        World<SelfStabilizingSourceFilter>,
        World<ColumnarSsf>,
        SsfParams,
    ) {
        let config = PopulationConfig::new(96, 0, 1, 96).unwrap();
        let params = SsfParams::derive(&config, 0.1, 8.0).unwrap();
        let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
        let scalar = World::new(
            &SelfStabilizingSourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .unwrap();
        let columnar = World::new(
            &ColumnarSsf::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .unwrap();
        (scalar, columnar, params)
    }

    #[test]
    fn matches_scalar_ssf_round_by_round() {
        let (mut scalar, mut columnar, params) = worlds(19);
        assert_eq!(scalar.opinions(), columnar.opinions(), "init");
        for round in 0..params.expected_convergence_rounds() + 2 {
            scalar.step();
            columnar.step();
            assert_eq!(scalar.opinions(), columnar.opinions(), "round {round}");
        }
        for id in 0..scalar.config().n() {
            assert_eq!(
                scalar.agent(id).weak_opinion(),
                columnar.state().weak_opinion(id),
                "weak opinion of agent {id}"
            );
            assert_eq!(
                scalar.agent(id).memory_size(),
                columnar.state().memory_size(id),
                "memory size of agent {id}"
            );
            assert_eq!(
                scalar.agent(id).updates(),
                columnar.state().updates(id),
                "update count of agent {id}"
            );
        }
    }

    #[test]
    fn matches_scalar_from_adversarial_corrupted_start() {
        let (mut scalar, mut columnar, params) = worlds(23);
        let m = params.m();
        // Adversary: every agent starts convinced of the wrong opinion
        // with a memory stuffed with fake all-wrong source messages —
        // the same corruption applied on both sides.
        scalar.corrupt_agents(|_, agent, _| {
            agent.corrupt_state(Opinion::Zero, Opinion::Zero, [0, 0, m, 0]);
        });
        let n = columnar.config().n();
        for id in 0..n {
            columnar
                .state_mut()
                .corrupt(id, Opinion::Zero, Opinion::Zero, [0, 0, m, 0]);
        }
        assert_eq!(scalar.correct_count(), 0);
        assert_eq!(columnar.correct_count(), 0);
        for round in 0..2 * params.expected_convergence_rounds() + 4 {
            scalar.step();
            columnar.step();
            assert_eq!(scalar.opinions(), columnar.opinions(), "round {round}");
        }
        assert!(scalar.is_consensus());
        assert!(columnar.is_consensus());
    }

    #[test]
    fn accessors_and_corrupt() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SsfParams::derive(&config, 0.1, 1.0).unwrap();
        let proto = ColumnarSsf::new(params);
        assert_eq!(proto.alphabet_size(), 4);
        assert_eq!(proto.params(), &params);
        let mut state = proto.init_state(&config, &RoundStreams::new(3, 0));
        assert_eq!(state.len(), 8);
        assert_eq!(state.capacity(), params.m());
        state.corrupt(2, Opinion::One, Opinion::Zero, [1, 2, 3, 4]);
        assert_eq!(state.memory_size(2), 10);
        assert_eq!(state.weak_opinion(2), Opinion::One);
        assert_eq!(ColumnarState::opinion(&state, 2), Opinion::Zero);
    }
}
