//! Closed-form theory bounds from the paper, used by experiments to overlay
//! predicted curves on measured data.
//!
//! All functions return *round counts up to the theorem's hidden constant*
//! (the Ω/O constants are not specified by the paper); experiments compare
//! shapes and ratios, never absolute values.

use crate::{CoreError, Result};

/// Theorem 3 (Boczkowski et al.): any protocol under δ-lower-bounded noise
/// with alphabet size `sigma` needs
///
/// `Ω( n·δ / (h·s²·(1 − δ·|Σ|)²) )`
///
/// rounds to give one agent the correct opinion with probability ⅔. This
/// returns the formula's value with constant 1.
///
/// # Errors
///
/// Returns [`CoreError::BadParameter`] if any argument is zero, or if
/// `δ·|Σ| ≥ 1` (the bound degenerates: the channel may carry no
/// information).
pub fn lower_bound_rounds(n: usize, h: usize, s: usize, delta: f64, sigma: usize) -> Result<f64> {
    if n == 0 || h == 0 || s == 0 || sigma == 0 {
        return Err(CoreError::BadParameter {
            name: "n/h/s/sigma",
            detail: "all must be positive".into(),
        });
    }
    if !(0.0..=1.0).contains(&delta) {
        return Err(CoreError::BadParameter {
            name: "delta",
            detail: format!("{delta} outside [0, 1]"),
        });
    }
    let gap = 1.0 - delta * sigma as f64;
    if gap <= 0.0 {
        return Err(CoreError::BadParameter {
            name: "delta",
            detail: format!(
                "δ·|Σ| = {} ≥ 1: lower bound degenerates",
                delta * sigma as f64
            ),
        });
    }
    Ok(n as f64 * delta / (h as f64 * (s * s) as f64 * gap * gap))
}

/// Theorem 4's upper bound on SF's convergence time (constant 1, natural
/// logs):
///
/// `T = (1/h)·( n·δ / (min{s², n}·(1−2δ)²) + √n/s + (s0+s1)/s² )·ln n + ln n`.
///
/// # Errors
///
/// Returns [`CoreError::NoiseTooHigh`] unless `0 ≤ δ < ½`, and
/// [`CoreError::BadParameter`] for zero sizes or `s0 == s1`.
pub fn sf_upper_bound_rounds(n: usize, h: usize, s0: usize, s1: usize, delta: f64) -> Result<f64> {
    if !(0.0..0.5).contains(&delta) {
        return Err(CoreError::NoiseTooHigh { delta, limit: 0.5 });
    }
    if n == 0 || h == 0 {
        return Err(CoreError::BadParameter {
            name: "n/h",
            detail: "must be positive".into(),
        });
    }
    let s = s0.abs_diff(s1);
    if s == 0 {
        return Err(CoreError::BadParameter {
            name: "s",
            detail: "bias must be at least 1 (s0 ≠ s1)".into(),
        });
    }
    let nf = n as f64;
    let log_n = nf.ln().max(1.0);
    let gap = 1.0 - 2.0 * delta;
    let s2 = (s * s) as f64;
    let core = nf * delta / (s2.min(nf) * gap * gap) + nf.sqrt() / s as f64 + (s0 + s1) as f64 / s2;
    Ok(core * log_n / h as f64 + log_n)
}

/// Theorem 5's upper bound on SSF's convergence time (constant 1, natural
/// logs):
///
/// `T = δ·n·ln n / (h·(1−4δ)²) + n/h`.
///
/// # Errors
///
/// Returns [`CoreError::NoiseTooHigh`] unless `0 ≤ δ < ¼`, and
/// [`CoreError::BadParameter`] for zero sizes.
pub fn ssf_upper_bound_rounds(n: usize, h: usize, delta: f64) -> Result<f64> {
    if !(0.0..0.25).contains(&delta) {
        return Err(CoreError::NoiseTooHigh { delta, limit: 0.25 });
    }
    if n == 0 || h == 0 {
        return Err(CoreError::BadParameter {
            name: "n/h",
            detail: "must be positive".into(),
        });
    }
    let nf = n as f64;
    let log_n = nf.ln().max(1.0);
    let gap = 1.0 - 4.0 * delta;
    Ok(delta * nf * log_n / (h as f64 * gap * gap) + nf / h as f64)
}

/// The regime boundary of Section 2.3: noise dominates source observations
/// when `δ > (s0+s1)/(2n) · (1 − |Σ|δ)`.
///
/// Returns `true` in the noise-dominated regime. In the other regime each
/// non-zero evidence variable is most likely a direct, uncorrupted source
/// observation.
pub fn is_noise_dominated(n: usize, s0: usize, s1: usize, delta: f64, sigma: usize) -> bool {
    delta > (s0 + s1) as f64 / (2.0 * n as f64) * (1.0 - sigma as f64 * delta)
}

/// Model prediction for SF's weak-opinion accuracy (Lemma 28 via the
/// evidence-variable construction of Claim 29).
///
/// Each of the `m` message *pairs* (one Phase-0, one Phase-1 message)
/// yields an evidence variable `X ∈ {−1, 0, +1}`:
///
/// * `P(A = 1) = (s1/n)(1−δ) + (1 − s1/n)·δ` (a 1 observed in Phase 0),
/// * `P(B = 1) = (s0/n)·δ + (1 − s0/n)(1−δ)` (a 1 observed in Phase 1),
/// * `X = +1` iff both are 1, `X = −1` iff both are 0.
///
/// The weak opinion is the sign of `ΣX`. We evaluate
/// `P(correct) = ½ + ½·(P(X>0) − P(X<0))` with the number of non-zero
/// evidence variables fixed at its expectation (its fluctuation is
/// second-order; the agreement with simulation is validated in
/// `exp_weak_opinion` and the test suite).
///
/// Assumes w.l.o.g. notation `s1 > s0` is *not* required — the returned
/// probability is for the *majority* preference.
///
/// # Errors
///
/// Returns [`CoreError::BadParameter`] for invalid sizes or `δ ∉ [0, ½)`.
pub fn sf_weak_opinion_model(n: usize, s0: usize, s1: usize, delta: f64, m: u64) -> Result<f64> {
    if n == 0 || s0 + s1 > n || s0 == s1 || m == 0 {
        return Err(CoreError::BadParameter {
            name: "n/s0/s1/m",
            detail: "need n > 0, s0+s1 ≤ n, s0 ≠ s1, m > 0".into(),
        });
    }
    if !(0.0..0.5).contains(&delta) {
        return Err(CoreError::NoiseTooHigh { delta, limit: 0.5 });
    }
    // Orient so that opinion 1 is correct.
    let (lo, hi) = if s1 > s0 { (s0, s1) } else { (s1, s0) };
    let nf = n as f64;
    let p_a1 = (hi as f64 / nf) * (1.0 - delta) + (1.0 - hi as f64 / nf) * delta;
    let p_b1 = (lo as f64 / nf) * delta + (1.0 - lo as f64 / nf) * (1.0 - delta);
    let p_plus = p_a1 * p_b1;
    let p_minus = (1.0 - p_a1) * (1.0 - p_b1);
    evidence_sign_probability(m, p_plus, p_minus)
}

/// Model prediction for SSF's weak-opinion accuracy (Lemma 36 via
/// Claim 37): each of the `m` messages in memory is evidence
/// `X = +1` with probability `(s1/n)(1−3δ) + (1 − s1/n)·δ` (it arrived as
/// `(1,1)`), `X = −1` symmetrically with `s0`.
///
/// # Errors
///
/// Returns [`CoreError::BadParameter`] for invalid sizes or
/// `δ ∉ [0, ¼)`.
pub fn ssf_weak_opinion_model(n: usize, s0: usize, s1: usize, delta: f64, m: u64) -> Result<f64> {
    if n == 0 || s0 + s1 > n || s0 == s1 || m == 0 {
        return Err(CoreError::BadParameter {
            name: "n/s0/s1/m",
            detail: "need n > 0, s0+s1 ≤ n, s0 ≠ s1, m > 0".into(),
        });
    }
    if !(0.0..0.25).contains(&delta) {
        return Err(CoreError::NoiseTooHigh { delta, limit: 0.25 });
    }
    let (lo, hi) = if s1 > s0 { (s0, s1) } else { (s1, s0) };
    let nf = n as f64;
    let p_plus = (hi as f64 / nf) * (1.0 - 3.0 * delta) + (1.0 - hi as f64 / nf) * delta;
    let p_minus = (lo as f64 / nf) * (1.0 - 3.0 * delta) + (1.0 - lo as f64 / nf) * delta;
    evidence_sign_probability(m, p_plus, p_minus)
}

/// `P(sign(ΣX) favors +) = ½ + ½·(P(ΣX > 0) − P(ΣX < 0))` for `m` i.i.d.
/// evidence variables with the given `±1` probabilities, evaluating the
/// conditional Rademacher sum at the expected number of non-zeros
/// (Lemma 20's decomposition).
fn evidence_sign_probability(m: u64, p_plus: f64, p_minus: f64) -> Result<f64> {
    let p_nonzero = p_plus + p_minus;
    if p_nonzero <= 0.0 {
        // No evidence ever: pure tie-break.
        return Ok(0.5);
    }
    let k = ((m as f64) * p_nonzero).round().max(1.0) as u64;
    let theta = p_plus / p_nonzero - 0.5;
    let advantage = np_stats::rademacher::exact_sign_advantage(k, theta).map_err(|e| {
        CoreError::BadParameter {
            name: "theta",
            detail: e.to_string(),
        }
    })?;
    Ok(0.5 + advantage / 2.0)
}

/// Re-export of the noise-level map `f(δ)` of Definition 7 (see
/// [`np_linalg::noise::f_delta`]), reproduced here so theory consumers
/// need only this module.
///
/// # Errors
///
/// See [`np_linalg::noise::f_delta`].
pub fn f_delta(d: usize, delta: f64) -> std::result::Result<f64, np_linalg::LinalgError> {
    np_linalg::noise::f_delta(d, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_scales_inversely_with_h_and_s_squared() {
        let base = lower_bound_rounds(1000, 1, 1, 0.2, 2).unwrap();
        let h10 = lower_bound_rounds(1000, 10, 1, 0.2, 2).unwrap();
        assert!((base / h10 - 10.0).abs() < 1e-9);
        let s4 = lower_bound_rounds(1000, 1, 4, 0.2, 2).unwrap();
        assert!((base / s4 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_validation() {
        assert!(lower_bound_rounds(0, 1, 1, 0.2, 2).is_err());
        assert!(lower_bound_rounds(10, 0, 1, 0.2, 2).is_err());
        assert!(lower_bound_rounds(10, 1, 0, 0.2, 2).is_err());
        assert!(lower_bound_rounds(10, 1, 1, 0.5, 2).is_err()); // δ|Σ| = 1
        assert!(lower_bound_rounds(10, 1, 1, 1.5, 2).is_err());
        assert!(lower_bound_rounds(10, 1, 1, 0.0, 2).unwrap() == 0.0);
    }

    #[test]
    fn sf_bound_linear_speedup_in_h() {
        // Claim C1: for the h-dominated part, doubling h halves the bound
        // (modulo the additive log n term).
        let n = 1 << 20;
        let t1 = sf_upper_bound_rounds(n, 1, 0, 1, 0.2).unwrap();
        let t2 = sf_upper_bound_rounds(n, 2, 0, 1, 0.2).unwrap();
        let log_n = (n as f64).ln();
        assert!(((t1 - log_n) / (t2 - log_n) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sf_bound_logarithmic_at_h_equals_n() {
        // Claim C2: at h = n, δ and s constant, the bound is O(log n).
        for exp in [10usize, 14, 18] {
            let n = 1usize << exp;
            let t = sf_upper_bound_rounds(n, n, 0, 1, 0.2).unwrap();
            let log_n = (n as f64).ln();
            // Bound / log n must stay bounded (here: < 8 for all sizes).
            assert!(t / log_n < 8.0, "n=2^{exp}: T/ln n = {}", t / log_n);
        }
    }

    #[test]
    fn sf_bound_validation() {
        assert!(sf_upper_bound_rounds(10, 1, 1, 1, 0.2).is_err()); // tie
        assert!(sf_upper_bound_rounds(10, 1, 0, 1, 0.5).is_err());
        assert!(sf_upper_bound_rounds(0, 1, 0, 1, 0.2).is_err());
        assert!(sf_upper_bound_rounds(10, 0, 0, 1, 0.2).is_err());
    }

    #[test]
    fn sf_bound_min_caps_bias_gain() {
        // Beyond s = √n the min{s², n} clamp stops the s-gain on the noise
        // term.
        let n = 10_000;
        let t_s100 = sf_upper_bound_rounds(n, 1, 0, 100, 0.2).unwrap();
        let t_s200 = sf_upper_bound_rounds(n, 1, 0, 200, 0.2).unwrap();
        // Both are past the cap: the dominant noise term is equal; only the
        // smaller terms shrink.
        assert!(t_s200 <= t_s100);
        assert!(t_s100 / t_s200 < 2.0);
    }

    #[test]
    fn ssf_bound_shape() {
        let t = ssf_upper_bound_rounds(1024, 1024, 0.1).unwrap();
        assert!(t > 0.0);
        // Linear speedup in h.
        let t1 = ssf_upper_bound_rounds(1024, 1, 0.1).unwrap();
        let t2 = ssf_upper_bound_rounds(1024, 2, 0.1).unwrap();
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
        assert!(ssf_upper_bound_rounds(1024, 1, 0.25).is_err());
        assert!(ssf_upper_bound_rounds(0, 1, 0.1).is_err());
        assert!(ssf_upper_bound_rounds(1024, 0, 0.1).is_err());
    }

    #[test]
    fn ssf_bound_diverges_near_quarter() {
        let mild = ssf_upper_bound_rounds(1024, 1, 0.1).unwrap();
        let harsh = ssf_upper_bound_rounds(1024, 1, 0.249).unwrap();
        assert!(harsh > 100.0 * mild);
    }

    #[test]
    fn regime_boundary() {
        // Constant δ with few sources: noise-dominated.
        assert!(is_noise_dominated(10_000, 0, 1, 0.2, 2));
        // Tiny δ with many sources: source-dominated.
        assert!(!is_noise_dominated(100, 0, 40, 0.001, 2));
    }

    #[test]
    fn f_delta_reexport_matches() {
        assert_eq!(
            f_delta(2, 0.2).unwrap(),
            np_linalg::noise::f_delta(2, 0.2).unwrap()
        );
    }

    #[test]
    fn weak_opinion_models_validate() {
        // Sanity: accuracy strictly above 1/2, increasing in m and bias.
        let p1 = sf_weak_opinion_model(1024, 0, 1, 0.2, 5_000).unwrap();
        let p2 = sf_weak_opinion_model(1024, 0, 1, 0.2, 20_000).unwrap();
        let p3 = sf_weak_opinion_model(1024, 0, 4, 0.2, 5_000).unwrap();
        assert!(p1 > 0.5 && p2 > p1 && p3 > p1, "{p1} {p2} {p3}");
        // Symmetric under majority flip: predicting the majority side.
        let q = sf_weak_opinion_model(1024, 1, 0, 0.2, 5_000).unwrap();
        assert!((q - p1).abs() < 1e-12);
        // Errors on bad input.
        assert!(sf_weak_opinion_model(0, 0, 1, 0.2, 100).is_err());
        assert!(sf_weak_opinion_model(10, 1, 1, 0.2, 100).is_err());
        assert!(sf_weak_opinion_model(10, 0, 1, 0.5, 100).is_err());
        assert!(sf_weak_opinion_model(10, 0, 1, 0.2, 0).is_err());

        let s1 = ssf_weak_opinion_model(1024, 0, 1, 0.1, 5_000).unwrap();
        let s2 = ssf_weak_opinion_model(1024, 0, 1, 0.1, 20_000).unwrap();
        assert!(s1 > 0.5 && s2 > s1);
        assert!(ssf_weak_opinion_model(10, 0, 1, 0.25, 100).is_err());
    }

    #[test]
    fn sf_weak_model_matches_known_regime() {
        // n = 1024, δ = 0.2, m = 11270 (the c₁ = 1 budget): the measured
        // accuracy in EXPERIMENTS.md is ≈ 0.544; the model must land in
        // that neighborhood.
        let p = sf_weak_opinion_model(1024, 0, 1, 0.2, 11_270).unwrap();
        assert!((p - 0.544).abs() < 0.02, "model predicts {p}");
    }

    #[test]
    fn sf_bound_matches_lower_bound_shape_in_target_regime() {
        // Second remark under Theorem 4: for δ ≥ (s0+s1)/√n and
        // s0, s1 ≤ √n, upper/lower ratio is O(log n) — check the ratio
        // stays within c·ln n across a sweep.
        for exp in [10usize, 12, 14, 16] {
            let n = 1usize << exp;
            let h = 16;
            let (s0, s1) = (0, 1);
            let delta = 0.2;
            let upper = sf_upper_bound_rounds(n, h, s0, s1, delta).unwrap();
            let lower = lower_bound_rounds(n, h, 1, delta, 2).unwrap();
            let ratio = upper / lower.max(1.0);
            let log_n = (n as f64).ln();
            assert!(
                ratio < 10.0 * log_n,
                "n=2^{exp}: ratio {ratio} vs ln n {log_n}"
            );
        }
    }
}
