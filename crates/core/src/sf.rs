//! Algorithm SF — *Source Filter* (Algorithm 1 of the paper).
//!
//! The fastest protocol: binary messages, synchronous start. Three phases:
//!
//! * **Phase 0** (`T = ⌈m/h⌉` rounds): sources display their preference,
//!   non-sources display `0`; every agent counts observed `1`s
//!   (`Counter₁`).
//! * **Phase 1** (`T` rounds): sources display their preference,
//!   non-sources display `1`; every agent counts observed `0`s
//!   (`Counter₀`).
//! * **Weak opinion**: `Ỹ = 1{Counter₁ > Counter₀}`, ties broken by a fair
//!   coin. The two-phase construction makes the counting *symmetric*:
//!   noise-corrupted non-source messages contribute equally to both
//!   counters in expectation, so the source bias "stands out".
//! * **Majority Boosting** (`⌈10·ln n⌉` sub-phases of `⌈w/h⌉` rounds each
//!   plus one final sub-phase of `T` rounds): everyone displays their
//!   current opinion and replaces it with the majority of the messages
//!   gathered during each sub-phase.
//!
//! The weak opinions are mutually independent across agents (they depend
//! only on the agent's own samples, noise, and tie-breaking coin — Lemma
//! 28), each correct with probability `≥ ½ + 4√(ln n / n)`, and boosting
//! amplifies that margin to consensus w.h.p.

use np_engine::opinion::Opinion;
use np_engine::population::Role;
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::StreamRng;
use rand::Rng;

use crate::params::SfParams;

/// The Source Filter protocol (Algorithm 1). Construct with derived
/// [`SfParams`] and run on an [`np_engine::world::World`].
///
/// # Example
///
/// ```
/// use noisy_pull::{params::SfParams, sf::SourceFilter};
/// use np_engine::{channel::ChannelKind, population::PopulationConfig, world::World};
/// use np_linalg::noise::NoiseMatrix;
///
/// let config = PopulationConfig::new(256, 0, 1, 256)?; // single source, h = n
/// let params = SfParams::derive(&config, 0.2, 1.0)?;
/// let noise = NoiseMatrix::uniform(2, 0.2)?;
/// let mut world = World::new(
///     &SourceFilter::new(params),
///     config,
///     &noise,
///     ChannelKind::Aggregated,
///     7,
/// )?;
/// world.run(params.total_rounds());
/// assert!(world.is_consensus());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceFilter {
    params: SfParams,
}

impl SourceFilter {
    /// Creates the protocol from a derived schedule.
    pub fn new(params: SfParams) -> Self {
        SourceFilter { params }
    }

    /// The schedule in use.
    pub fn params(&self) -> &SfParams {
        &self.params
    }
}

/// Execution stage of an SF agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Phase 0: neutral agents display 0, everyone counts observed 1s.
    Listen0,
    /// Phase 1: neutral agents display 1, everyone counts observed 0s.
    Listen1,
    /// Majority boosting; the payload is the current sub-phase index
    /// (`0..=num_short_subphases`, the last being the long one).
    Boost(u64),
    /// Schedule complete; the opinion is final.
    Done,
}

/// Per-agent state of Algorithm SF.
///
/// Inspect [`SfAgent::weak_opinion`] after the listening phases for the
/// weak-opinion experiments (Lemma 28).
#[derive(Debug, Clone)]
pub struct SfAgent {
    role: Role,
    params: SfParams,
    stage: Stage,
    /// Rounds completed within the current stage.
    round_in_stage: u64,
    /// 1-messages observed during Phase 0.
    counter1: u64,
    /// 0-messages observed during Phase 1.
    counter0: u64,
    weak: Option<Opinion>,
    opinion: Opinion,
    /// Boosting memory: messages observed in the current sub-phase,
    /// as (zeros, ones).
    mem: [u64; 2],
    /// Total messages observed in the current stage — invariant
    /// bookkeeping: every counter is bounded by it (see
    /// [`np_engine::invariants::check_counter_bounded`]).
    gathered: u64,
}

impl SfAgent {
    /// The weak opinion `Ỹ`, available once Phases 0 and 1 are complete.
    pub fn weak_opinion(&self) -> Option<Opinion> {
        self.weak
    }

    /// The agent's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// `Counter₁` (1s observed in Phase 0) — exposed for analysis
    /// experiments.
    pub fn counter1(&self) -> u64 {
        self.counter1
    }

    /// `Counter₀` (0s observed in Phase 1) — exposed for analysis
    /// experiments.
    pub fn counter0(&self) -> u64 {
        self.counter0
    }

    /// Returns `true` once the schedule has completed.
    pub fn is_done(&self) -> bool {
        self.stage == Stage::Done
    }

    /// Jumps the agent straight to the start of the Majority Boosting
    /// phase with the given opinion, skipping the listening phases.
    ///
    /// This exists for the Lemma 33 experiment, which measures how
    /// boosting amplifies a *controlled* initial margin; it is not part of
    /// the protocol itself.
    pub fn force_boost_stage(&mut self, opinion: Opinion) {
        self.stage = Stage::Boost(0);
        self.round_in_stage = 0;
        self.weak = Some(opinion);
        self.opinion = opinion;
        self.mem = [0, 0];
        self.gathered = 0;
    }

    fn majority_of_mem(&self, rng: &mut StreamRng) -> Opinion {
        match self.mem[1].cmp(&self.mem[0]) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
        }
    }
}

impl Protocol for SourceFilter {
    type Agent = SfAgent;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> SfAgent {
        SfAgent {
            role,
            params: self.params,
            stage: Stage::Listen0,
            round_in_stage: 0,
            counter1: 0,
            counter0: 0,
            weak: None,
            // The opinion is undefined until the weak opinion exists; a
            // fair coin avoids a spurious all-correct configuration at
            // round zero.
            opinion: Opinion::from_bool(rng.gen()),
            mem: [0, 0],
            gathered: 0,
        }
    }
}

impl AgentState for SfAgent {
    fn display(&self, _rng: &mut StreamRng) -> usize {
        match self.stage {
            Stage::Listen0 => match self.role {
                Role::Source(pref) => pref.as_index(),
                Role::NonSource => 0,
            },
            Stage::Listen1 => match self.role {
                Role::Source(pref) => pref.as_index(),
                Role::NonSource => 1,
            },
            Stage::Boost(_) | Stage::Done => self.opinion.as_index(),
        }
    }

    fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
        debug_assert_eq!(observed.len(), 2);
        match self.stage {
            Stage::Listen0 => {
                self.counter1 += observed[1];
                self.round_in_stage += 1;
                self.gathered += observed.iter().sum::<u64>();
                np_engine::invariants::check_counter_bounded(
                    "SF Counter₁",
                    self.counter1,
                    self.gathered,
                );
                if self.round_in_stage >= self.params.phase_len() {
                    self.stage = Stage::Listen1;
                    self.round_in_stage = 0;
                    self.gathered = 0;
                }
            }
            Stage::Listen1 => {
                self.counter0 += observed[0];
                self.round_in_stage += 1;
                self.gathered += observed.iter().sum::<u64>();
                np_engine::invariants::check_counter_bounded(
                    "SF Counter₀",
                    self.counter0,
                    self.gathered,
                );
                if self.round_in_stage >= self.params.phase_len() {
                    // Ỹ := 1{Counter₁ > Counter₀}, ties broken randomly.
                    let weak = match self.counter1.cmp(&self.counter0) {
                        std::cmp::Ordering::Greater => Opinion::One,
                        std::cmp::Ordering::Less => Opinion::Zero,
                        std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
                    };
                    self.weak = Some(weak);
                    self.opinion = weak;
                    self.stage = Stage::Boost(0);
                    self.round_in_stage = 0;
                    self.mem = [0, 0];
                    self.gathered = 0;
                }
            }
            Stage::Boost(subphase) => {
                self.mem[0] += observed[0];
                self.mem[1] += observed[1];
                self.round_in_stage += 1;
                self.gathered += observed.iter().sum::<u64>();
                np_engine::invariants::check_counter_bounded(
                    "SF boosting memory",
                    self.mem[0] + self.mem[1],
                    self.gathered,
                );
                let len = if subphase < self.params.num_short_subphases() {
                    self.params.subphase_len()
                } else {
                    self.params.final_subphase_len()
                };
                if self.round_in_stage >= len {
                    self.opinion = self.majority_of_mem(rng);
                    self.mem = [0, 0];
                    self.round_in_stage = 0;
                    self.gathered = 0;
                    if subphase >= self.params.num_short_subphases() {
                        self.stage = Stage::Done;
                    } else {
                        self.stage = Stage::Boost(subphase + 1);
                    }
                }
            }
            Stage::Done => {}
        }
    }

    fn opinion(&self) -> Opinion {
        self.opinion
    }

    /// Stage numbering for traces: Listen₀ = 0, Listen₁ = 1,
    /// Boost(k) = 2 + k, Done = `u32::MAX`.
    fn stage_id(&self) -> u32 {
        match self.stage {
            Stage::Listen0 => 0,
            Stage::Listen1 => 1,
            // Saturates below Done so an (impossibly) deep boost index can
            // never masquerade as completion.
            Stage::Boost(k) => u32::try_from(k.saturating_add(2))
                .unwrap_or(u32::MAX)
                .min(u32::MAX - 1),
            Stage::Done => u32::MAX,
        }
    }

    fn weak_opinion(&self) -> Option<Opinion> {
        self.weak
    }

    /// Trend-change fault hook: the environment revises the ground truth
    /// (only sources carry a preference to flip).
    fn flip_source_preference(&mut self) -> bool {
        if let Role::Source(pref) = self.role {
            self.role = Role::Source(!pref);
            true
        } else {
            false
        }
    }
}

impl np_engine::snapshot::SnapshotAgent for SfAgent {
    const SNAP_TAG: &'static str = "sf-agent/v1";

    fn encode_agent(&self, w: &mut np_engine::snapshot::SnapWriter) {
        w.put_role(self.role);
        self.params.encode_snap(w);
        match self.stage {
            Stage::Listen0 => w.put_u8(0),
            Stage::Listen1 => w.put_u8(1),
            Stage::Boost(k) => {
                w.put_u8(2);
                w.put_u64(k);
            }
            Stage::Done => w.put_u8(3),
        }
        w.put_u64(self.round_in_stage);
        w.put_u64(self.counter1);
        w.put_u64(self.counter0);
        w.put_opt_opinion(self.weak);
        w.put_opinion(self.opinion);
        w.put_u64(self.mem[0]);
        w.put_u64(self.mem[1]);
        w.put_u64(self.gathered);
    }

    fn decode_agent(r: &mut np_engine::snapshot::SnapReader<'_>) -> np_engine::Result<Self> {
        let role = r.take_role()?;
        let params = SfParams::decode_snap(r)?;
        let stage = match r.take_u8()? {
            0 => Stage::Listen0,
            1 => Stage::Listen1,
            2 => Stage::Boost(r.take_u64()?),
            3 => Stage::Done,
            x => {
                return Err(np_engine::EngineError::BadSnapshot {
                    detail: format!("invalid SF stage byte {x}"),
                })
            }
        };
        Ok(SfAgent {
            role,
            params,
            stage,
            round_in_stage: r.take_u64()?,
            counter1: r.take_u64()?,
            counter0: r.take_u64()?,
            weak: r.take_opt_opinion()?,
            opinion: r.take_opinion()?,
            mem: [r.take_u64()?, r.take_u64()?],
            gathered: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::channel::ChannelKind;
    use np_engine::population::PopulationConfig;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;
    use rand::SeedableRng;

    fn sf_world(
        n: usize,
        s0: usize,
        s1: usize,
        h: usize,
        delta: f64,
        seed: u64,
    ) -> (World<SourceFilter>, SfParams) {
        let config = PopulationConfig::new(n, s0, s1, h).unwrap();
        let params = SfParams::derive(&config, delta, 1.0).unwrap();
        let noise = NoiseMatrix::uniform(2, delta).unwrap();
        let world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            seed,
        )
        .unwrap();
        (world, params)
    }

    #[test]
    fn displays_follow_phase_script() {
        let config = PopulationConfig::new(8, 1, 2, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0).unwrap();
        let proto = SourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(0);
        let src1 = proto.init_agent(Role::Source(Opinion::One), &mut rng);
        let src0 = proto.init_agent(Role::Source(Opinion::Zero), &mut rng);
        let non = proto.init_agent(Role::NonSource, &mut rng);
        // Phase 0: sources display preference, non-sources display 0.
        assert_eq!(src1.display(&mut rng), 1);
        assert_eq!(src0.display(&mut rng), 0);
        assert_eq!(non.display(&mut rng), 0);
        // Advance a non-source into Phase 1 by feeding phase_len updates.
        let mut non1 = non.clone();
        for _ in 0..params.phase_len() {
            non1.update(&[8, 0], &mut rng);
        }
        assert_eq!(non1.display(&mut rng), 1);
        assert!(non1.weak_opinion().is_none());
    }

    #[test]
    fn counters_accumulate_per_phase() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0)
            .unwrap()
            .with_m(16)
            .unwrap();
        let proto = SourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(1);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        // Phase 0 lasts 2 rounds (m=16, h=8): counts only 1s.
        agent.update(&[5, 3], &mut rng);
        agent.update(&[6, 2], &mut rng);
        assert_eq!(agent.counter1(), 5);
        assert_eq!(agent.counter0(), 0);
        // Phase 1: counts only 0s.
        agent.update(&[7, 1], &mut rng);
        agent.update(&[8, 0], &mut rng);
        assert_eq!(agent.counter0(), 15);
        // Weak opinion: counter1 (5) < counter0 (15) ⇒ Zero.
        assert_eq!(agent.weak_opinion(), Some(Opinion::Zero));
        assert_eq!(agent.opinion(), Opinion::Zero);
    }

    #[test]
    fn weak_opinion_tie_breaks_randomly() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0)
            .unwrap()
            .with_m(8)
            .unwrap();
        let proto = SourceFilter::new(params);
        let mut outcomes = [0u32; 2];
        for seed in 0..200 {
            let mut rng = StreamRng::seed_from_u64(seed);
            let mut agent = proto.init_agent(Role::NonSource, &mut rng);
            agent.update(&[4, 4], &mut rng); // counter1 = 4
            agent.update(&[4, 4], &mut rng); // counter0 = 4 → tie
            outcomes[agent.weak_opinion().unwrap().as_index()] += 1;
        }
        assert!(
            outcomes[0] > 50 && outcomes[1] > 50,
            "tie-break biased: {outcomes:?}"
        );
    }

    #[test]
    fn boosting_takes_majority_each_subphase() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0)
            .unwrap()
            .with_m(8)
            .unwrap();
        let proto = SourceFilter::new(params);
        let mut rng = StreamRng::seed_from_u64(3);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        agent.update(&[0, 8], &mut rng); // phase 0: counter1 = 8
        agent.update(&[8, 0], &mut rng); // phase 1: counter0 = 8... tie
                                         // (counter1 = 8 vs counter0 = 8 → coin; force by re-running until
                                         // set, then drive boosting deterministically).
        let w_rounds = params.subphase_len();
        // Feed all-ones for one sub-phase: opinion must become One.
        for _ in 0..w_rounds {
            agent.update(&[0, 8], &mut rng);
        }
        assert_eq!(agent.opinion(), Opinion::One);
        // Feed all-zeros for the next sub-phase: opinion must flip.
        for _ in 0..w_rounds {
            agent.update(&[8, 0], &mut rng);
        }
        assert_eq!(agent.opinion(), Opinion::Zero);
    }

    #[test]
    fn agent_reaches_done_after_total_rounds() {
        let (mut world, params) = sf_world(32, 0, 1, 32, 0.1, 5);
        world.run(params.total_rounds());
        assert!(world.iter_agents().all(|a| a.is_done()));
        // One more round is a no-op for state.
        let before: Vec<Opinion> = world.iter_agents().map(|a| a.opinion()).collect();
        world.run(1);
        let after: Vec<Opinion> = world.iter_agents().map(|a| a.opinion()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn converges_single_source_h_equals_n() {
        let (mut world, params) = sf_world(256, 0, 1, 256, 0.2, 11);
        world.run(params.total_rounds());
        assert!(
            world.is_consensus(),
            "correct: {}/256",
            world.correct_count()
        );
    }

    #[test]
    fn converges_to_zero_majority() {
        // Correct opinion 0 must also win (symmetry).
        let (mut world, params) = sf_world(256, 3, 1, 256, 0.2, 13);
        world.run(params.total_rounds());
        assert!(world.is_consensus());
        assert!(world.iter_agents().all(|a| a.opinion() == Opinion::Zero));
    }

    #[test]
    fn converges_with_conflicting_sources() {
        // 5 vs 4 sources: plurality (One) must win and convert the four
        // 0-preferring sources too.
        let (mut world, params) = sf_world(256, 4, 5, 256, 0.15, 17);
        world.run(params.total_rounds());
        assert!(world.is_consensus());
    }

    #[test]
    fn converges_under_exact_channel_too() {
        let config = PopulationConfig::new(128, 0, 1, 64).unwrap();
        let params = SfParams::derive(&config, 0.15, 1.0).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
        let mut world = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Exact,
            19,
        )
        .unwrap();
        world.run(params.total_rounds());
        assert!(world.is_consensus());
    }

    #[test]
    fn converges_noiseless() {
        let (mut world, params) = sf_world(64, 0, 1, 64, 0.0, 23);
        world.run(params.total_rounds());
        assert!(world.is_consensus());
    }

    #[test]
    fn weak_opinions_beat_a_half_on_average() {
        // Lemma 28 (shape check): across seeds, the fraction of correct
        // weak opinions exceeds 1/2.
        let mut correct = 0u64;
        let mut total = 0u64;
        for seed in 0..20 {
            let (mut world, params) = sf_world(128, 0, 1, 128, 0.2, 100 + seed);
            world.run(2 * params.phase_len());
            for agent in world.iter_agents() {
                if agent.weak_opinion() == Some(Opinion::One) {
                    correct += 1;
                }
                total += 1;
            }
        }
        let frac = correct as f64 / total as f64;
        assert!(frac > 0.5, "weak-opinion accuracy {frac} ≤ 1/2");
    }

    #[test]
    fn protocol_accessors() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0).unwrap();
        let proto = SourceFilter::new(params);
        assert_eq!(proto.alphabet_size(), 2);
        assert_eq!(proto.params(), &params);
        let mut rng = StreamRng::seed_from_u64(0);
        let agent = proto.init_agent(Role::Source(Opinion::One), &mut rng);
        assert_eq!(agent.role(), Role::Source(Opinion::One));
        assert!(!agent.is_done());
    }
}
